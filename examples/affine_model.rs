//! The fully executed `R_A^*` stack: iterate the *real* Algorithm 1
//! (two Borowsky–Gafni immediate snapshots + the waiting phase, under
//! random adversarial interleavings) to produce genuine affine-model
//! runs, then solve α-adaptive set consensus on them with `µ_Q` — and
//! compare against the object-based α-set-consensus model of
//! Definition 4.
//!
//! Run with: `cargo run --release --example affine_model`

use std::collections::HashMap;

use fact::adversary::{Adversary, AgreementFunction};
use fact::affine::fair_affine_task;
use fact::runtime::Trace;
use fact::topology::{ColorSet, ProcessId};
use fact::{execute_affine_iterations, executed_set_consensus, object_model_set_consensus};
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xACE);
    let adversary = Adversary::t_resilient(3, 1);
    let alpha = AgreementFunction::of_adversary(&adversary);
    let r_a = fair_affine_task(&alpha);
    let full = ColorSet::full(3);

    println!(
        "model: 1-resilience over 3 processes (α(Π) = {})",
        alpha.alpha(full)
    );
    println!("R_A  : {} facets\n", r_a.complex().facet_count());

    // Execute 50 affine-model iterations with the real algorithm.
    let iterations = execute_affine_iterations(&r_a, &alpha, full, 50, &mut rng);
    let distinct: std::collections::BTreeSet<_> =
        iterations.iter().map(|it| it.facet.clone()).collect();
    println!(
        "executed {} iterations of Algorithm 1; {} distinct R_A facets realized",
        iterations.len(),
        distinct.len()
    );

    // µ_Q set consensus on each executed iteration.
    let proposals: HashMap<ProcessId, u64> =
        full.iter().map(|p| (p, 10 + p.index() as u64)).collect();
    let mut worst = 0usize;
    for it in &iterations {
        let decisions = executed_set_consensus(&r_a, &alpha, it, full, &proposals);
        let mut values: Vec<u64> = decisions.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        values.dedup();
        assert!(values.len() <= alpha.alpha(full));
        worst = worst.max(values.len());
    }
    println!(
        "µ_Q set consensus on executed runs: worst-case {} distinct decisions (bound {})",
        worst,
        alpha.alpha(full)
    );

    // The object model (Definition 4) satisfies the same specification.
    let order: Vec<ProcessId> = full.iter().collect();
    let object_decisions = object_model_set_consensus(&alpha, &order, &proposals);
    println!("object model decisions     : {object_decisions:?}");

    // Traces make any of these runs reproducible.
    let trace = Trace {
        participants: full,
        steps: vec![0, 1, 2, 0, 1, 2],
        correct: None,
        crash_budgets: None,
        fault_plan: None,
    };
    println!(
        "\ntraces serialize for regression replay, e.g. {}",
        serde_json::to_string(&trace).expect("serializable")
    );
}
