//! The FACT as a decision procedure: for a menu of fair 3-process models,
//! decide which levels of set consensus are solvable by searching for
//! carried maps from iterations of `R_A` — and check the verdicts against
//! the models' agreement power `setcon(A)`.
//!
//! Run with: `cargo run --release --example solvability`

use fact::adversary::{zoo, Adversary, AgreementFunction};
use fact::affine::fair_affine_task;
use fact::tasks::SetConsensus;
use fact::{set_consensus_verdict, Solvability};

fn main() {
    let models: Vec<(String, AgreementFunction, usize)> = vec![
        named(Adversary::wait_free(3)),
        named(Adversary::t_resilient(3, 1)),
        named(Adversary::t_resilient(3, 0)),
        named(zoo::figure_5b_adversary()),
        (
            "1-obstruction-free".into(),
            AgreementFunction::k_concurrency(3, 1),
            Adversary::k_obstruction_free(3, 1).setcon(),
        ),
        (
            "2-obstruction-free".into(),
            AgreementFunction::k_concurrency(3, 2),
            Adversary::k_obstruction_free(3, 2).setcon(),
        ),
    ];

    println!(
        "{:<22} {:>7} {:>12} {:>12}",
        "model", "setcon", "k=1", "k=2"
    );
    for (name, alpha, power) in models {
        let r_a = fair_affine_task(&alpha);
        let mut verdicts = Vec::new();
        for k in 1..=2 {
            let t = SetConsensus::new(3, k, &[0, 1, 2]);
            let result = set_consensus_verdict(&t, &r_a, 1, 3_000_000);
            let verdict = match &result {
                Solvability::Solvable { .. } => "solvable",
                Solvability::NoMapUpTo { .. } => "no 1-rd map",
                Solvability::Exhausted { .. } => "gave up",
                Solvability::TimedOut { .. } => "timed out",
            };
            // FACT: k-set consensus is solvable iff k ≥ setcon(A); at
            // k = setcon a single iteration suffices (the µ_Q map).
            if k >= power {
                assert!(result.is_solvable(), "{name}: k = {k} must be solvable");
            } else {
                assert!(
                    matches!(result, Solvability::NoMapUpTo { .. }),
                    "{name}: k = {k} must have no 1-round map"
                );
            }
            verdicts.push(verdict);
        }
        println!(
            "{:<22} {:>7} {:>12} {:>12}",
            name, power, verdicts[0], verdicts[1]
        );
    }
    println!("\nevery verdict matches setcon — Theorem 16 exercised");
}

fn named(a: Adversary) -> (String, AgreementFunction, usize) {
    let name = if a.is_symmetric() && a.is_superset_closed() {
        format!("symmetric+ssc ({} live sets)", a.len())
    } else if a.is_superset_closed() {
        format!("superset-closed ({} live sets)", a.len())
    } else {
        format!("adversary ({} live sets)", a.len())
    };
    let alpha = AgreementFunction::of_adversary(&a);
    let power = a.setcon();
    (name, alpha, power)
}
