//! Quickstart: from an adversary to its affine task and a solvability
//! verdict, in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use fact::adversary::{Adversary, AgreementFunction};
use fact::affine::fair_affine_task;
use fact::affine_domain;
use fact::tasks::{find_carried_map, verify_carried_map, SetConsensus};
use fact::topology::ColorSet;

fn main() {
    // 1. A fair adversary: 1-resilience over 3 processes.
    let adversary = Adversary::t_resilient(3, 1);
    println!("adversary      : {adversary}");
    println!("fair           : {}", adversary.is_fair());
    println!("setcon         : {}", adversary.setcon());

    // 2. Its agreement function α(P) = setcon(A|P).
    let alpha = AgreementFunction::of_adversary(&adversary);
    for p in ColorSet::full(3).non_empty_subsets() {
        println!("alpha({p}) = {}", alpha.alpha(p));
    }

    // 3. The affine task R_A ⊆ Chr² s (Definition 9).
    let r_a = fair_affine_task(&alpha);
    println!(
        "R_A            : {} facets out of 169 in Chr² s",
        r_a.complex().facet_count(),
    );

    // 4. FACT in action: 2-set consensus is solvable (setcon = 2) with a
    //    single iteration of R_A, consensus is not.
    let two_set = SetConsensus::new(3, 2, &[0, 1, 2]);
    let inputs = two_set.rainbow_inputs();
    let domain = affine_domain(&r_a, &inputs, 1);
    let verdict = find_carried_map(&two_set, &domain, 3_000_000);
    let map = verdict
        .into_map()
        .expect("2-set consensus is solvable at setcon");
    assert!(verify_carried_map(&two_set, &domain, &map));
    println!("2-set consensus: solvable with 1 iteration of R_A (map verified)");

    let consensus = SetConsensus::new(3, 1, &[0, 1, 2]);
    let domain = affine_domain(&r_a, &consensus.rainbow_inputs(), 1);
    let verdict = find_carried_map(&consensus, &domain, 3_000_000);
    assert!(verdict.is_unsolvable());
    println!("consensus      : no map exists at depth 1 (as FACT predicts)");
}
