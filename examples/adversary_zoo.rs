//! A tour of the adversary classes of Figure 2: build adversaries of every
//! flavor, compute their agreement functions, check fairness, and exhibit
//! the strictness of every inclusion — all machine-checked.
//!
//! Run with: `cargo run --release --example adversary_zoo`

use fact::adversary::{zoo, Adversary, AgreementFunction};
use fact::topology::ColorSet;

fn describe(name: &str, a: &Adversary) {
    let alpha = AgreementFunction::of_adversary(a);
    alpha
        .validate()
        .expect("agreement functions are monotone of bounded growth");
    println!(
        "{name:<28} live sets {:>3}  setcon {}  superset-closed {:<5} symmetric {:<5} fair {}",
        a.len(),
        a.setcon(),
        a.is_superset_closed(),
        a.is_symmetric(),
        a.is_fair()
    );
}

fn main() {
    println!("-- the named models of the paper (n = 3) --");
    describe("wait-free", &Adversary::wait_free(3));
    describe("1-resilient", &Adversary::t_resilient(3, 1));
    describe("0-resilient", &Adversary::t_resilient(3, 0));
    describe("1-obstruction-free", &Adversary::k_obstruction_free(3, 1));
    describe("2-obstruction-free", &Adversary::k_obstruction_free(3, 2));
    describe("figure 5b ({p2},{p1,p3}+ssc)", &zoo::figure_5b_adversary());
    describe("unfair example", &zoo::unfair_example());

    println!("\n-- the class diagram of Figure 2, checked exhaustively --");
    let all = zoo::all_adversaries(3);
    let mut fair_not_sym_not_ssc = None;
    let mut sym_not_ssc = None;
    let mut ssc_not_sym = None;
    let mut unfair = None;
    for a in &all {
        let (f, s, c) = (a.is_fair(), a.is_symmetric(), a.is_superset_closed());
        assert!(!s || f, "symmetric ⊆ fair");
        assert!(!c || f, "superset-closed ⊆ fair");
        if f && !s && !c && !a.is_empty() && fair_not_sym_not_ssc.is_none() {
            fair_not_sym_not_ssc = Some(a.clone());
        }
        if s && !c && sym_not_ssc.is_none() {
            sym_not_ssc = Some(a.clone());
        }
        if c && !s && ssc_not_sym.is_none() {
            ssc_not_sym = Some(a.clone());
        }
        if !f && unfair.is_none() {
            unfair = Some(a.clone());
        }
    }
    println!("all {} adversaries over 3 processes enumerated", all.len());
    println!(
        "fair \\ (symmetric ∪ ssc) : e.g. {}",
        fair_not_sym_not_ssc.unwrap()
    );
    println!("symmetric \\ ssc          : e.g. {}", sym_not_ssc.unwrap());
    println!("ssc \\ symmetric          : e.g. {}", ssc_not_sym.unwrap());
    println!("not fair                 : e.g. {}", unfair.unwrap());

    println!("\n-- agreement functions adapt to participation --");
    let a = zoo::figure_5b_adversary();
    let alpha = AgreementFunction::of_adversary(&a);
    for p in ColorSet::full(3).non_empty_subsets() {
        println!("alpha({p}) = {}", alpha.alpha(p));
    }

    println!("\n-- why the unfair example is unfair --");
    let u = zoo::unfair_example();
    let w = u.fairness_witness().expect("the example is unfair");
    println!(
        "A = {u}: setcon(A|{},{}) = {} but min(|Q|, setcon(A|P)) = {}",
        w.p, w.q, w.restricted_power, w.expected_power
    );
}
