//! Regenerates every figure of the paper as computed combinatorial data
//! (counts, structures, and planar coordinates for the 3-process
//! complexes), printed as text and exported as JSON next to the binary's
//! working directory (`figures/*.json`).
//!
//! Run with: `cargo run --release --example figures`

use std::collections::BTreeMap;
use std::fs;

use fact::adversary::{zoo, Adversary, AgreementFunction};
use fact::affine::{
    contention_complex, fair_affine_task, k_obstruction_free_task, t_resilient_task,
    CriticalAnalysis,
};
use fact::topology::{barycentric_to_plane, realization_coordinates, ColorSet, Complex, VertexId};
use serde::Serialize;

#[derive(Serialize)]
struct FigureComplex {
    name: String,
    facet_count: usize,
    f_vector: Vec<usize>,
    /// Planar coordinates of every vertex (3-process complexes only).
    vertices: Vec<VertexPoint>,
    /// Facets as vertex-index lists.
    facets: Vec<Vec<usize>>,
}

#[derive(Serialize)]
struct VertexPoint {
    index: usize,
    color: usize,
    x: f64,
    y: f64,
}

fn export(complex: &Complex, name: &str) -> FigureComplex {
    let coords = realization_coordinates(complex);
    let vertices = (0..complex.num_vertices())
        .map(|i| {
            let (x, y) = barycentric_to_plane(&coords[i]);
            VertexPoint {
                index: i,
                color: complex.color(VertexId::from_index(i)).index(),
                x,
                y,
            }
        })
        .collect();
    let facets = complex
        .facets()
        .iter()
        .map(|f| f.vertices().iter().map(|v| v.index()).collect())
        .collect();
    FigureComplex {
        name: name.to_string(),
        facet_count: complex.facet_count(),
        f_vector: complex.f_vector(),
        vertices,
        facets,
    }
}

fn main() {
    fs::create_dir_all("figures").expect("create figures dir");
    let mut summary: BTreeMap<String, usize> = BTreeMap::new();

    // Figure 1a: Chr s for n = 3.
    let chr = Complex::standard(3).chromatic_subdivision();
    let fig = export(&chr, "fig1a_chr_s");
    println!("Figure 1a  Chr s        : f-vector {:?}", fig.f_vector);
    summary.insert("fig1a_facets".into(), fig.facet_count);
    write_json("figures/fig1a_chr_s.json", &fig);

    // Figure 1b: R_{1-res} for n = 3.
    let r1res = t_resilient_task(3, 1);
    let fig = export(r1res.complex(), "fig1b_r_1res");
    println!("Figure 1b  R_1-res      : {} facets", fig.facet_count);
    summary.insert("fig1b_facets".into(), fig.facet_count);
    write_json("figures/fig1b_r_1res.json", &fig);

    // Figure 2: adversary classes over 3 processes, counted exhaustively.
    let all = zoo::all_adversaries(3);
    let fair = all.iter().filter(|a| a.is_fair()).count();
    let sym = all.iter().filter(|a| a.is_symmetric()).count();
    let ssc = all.iter().filter(|a| a.is_superset_closed()).count();
    println!(
        "Figure 2   classes      : {} adversaries, {fair} fair, {sym} symmetric, {ssc} superset-closed",
        all.len()
    );
    summary.insert("fig2_total".into(), all.len());
    summary.insert("fig2_fair".into(), fair);
    summary.insert("fig2_symmetric".into(), sym);
    summary.insert("fig2_superset_closed".into(), ssc);

    // Figure 3: the two example IS runs and their views.
    use fact::topology::Osp;
    let ordered = Osp::new(vec![
        ColorSet::from_indices([1]),
        ColorSet::from_indices([0]),
        ColorSet::from_indices([2]),
    ])
    .unwrap();
    let sync = Osp::synchronous(ColorSet::full(3));
    println!(
        "Figure 3a  ordered run  : {ordered} -> views {:?}",
        ordered.views()
    );
    println!(
        "Figure 3b  sync run     : {sync} -> views {:?}",
        sync.views()
    );

    // Figure 4: the 2-contention complex of Chr² s.
    let chr2 = Complex::standard(3).iterated_subdivision(2);
    let cont = contention_complex(&chr2);
    println!(
        "Figure 4c  Cont²        : {} maximal contention simplices, dim {}",
        cont.facet_count(),
        cont.dim()
    );
    summary.insert("fig4_cont2_facets".into(), cont.facet_count());

    // Figures 5 and 6: critical simplices and concurrency maps for the
    // two example models.
    let models: Vec<(&str, AgreementFunction)> = vec![
        ("5a/6a (1-OF)", AgreementFunction::k_concurrency(3, 1)),
        (
            "5b/6b ({p2},{p1,p3}+ssc)",
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
        ),
    ];
    for (name, alpha) in &models {
        let crit = CriticalAnalysis::new(&chr, alpha);
        let mut distinct = std::collections::BTreeSet::new();
        for facet in chr.facets() {
            for face in facet.non_empty_faces() {
                if crit.is_critical(&face) {
                    distinct.insert(face);
                }
            }
        }
        let mut conc_histogram: BTreeMap<usize, usize> = BTreeMap::new();
        let mut crit2 = CriticalAnalysis::new(&chr, alpha);
        for facet in chr.facets() {
            for face in facet.non_empty_faces() {
                *conc_histogram.entry(crit2.concurrency(&face)).or_insert(0) += 1;
            }
        }
        println!(
            "Figure {name}: {} critical simplices; concurrency histogram {conc_histogram:?}",
            distinct.len()
        );
    }

    // Figure 7: the affine tasks R_A for both models, plus the Def-6
    // cross-checks.
    for (name, alpha) in &models {
        let r = fair_affine_task(alpha);
        println!(
            "Figure 7 {name}: R_A has {} facets",
            r.complex().facet_count()
        );
        let tag = format!("fig7_{}", name.chars().take(2).collect::<String>());
        summary.insert(tag, r.complex().facet_count());
    }
    let r_of = k_obstruction_free_task(3, 1);
    println!(
        "           R_1-OF (Def 6): {} facets (equals R_A of 1-OF)",
        r_of.complex().facet_count()
    );
    let _ = Adversary::wait_free(3);

    write_json("figures/summary.json", &summary);
    println!("\nJSON exports written to figures/");
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    fs::write(
        path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
    .expect("write figure JSON");
}
