//! Running the paper's algorithms end to end:
//!
//! 1. **Algorithm 1** — solve the affine task `R_A` in the α-model under
//!    adversarial schedules, and check the outputs land in `R_A`
//!    (Theorem 7);
//! 2. **`µ_Q` set consensus in `R_A^*`** — iterate the affine task and
//!    solve α-adaptive set consensus among arbitrary coalitions
//!    (Lemmas 13–14).
//!
//! Run with: `cargo run --release --example set_consensus`

use std::collections::HashMap;

use fact::adversary::{zoo, AgreementFunction};
use fact::affine::fair_affine_task;
use fact::runtime::run_adversarial;
use fact::topology::{ColorSet, ProcessId};
use fact::{outputs_to_simplex, AdaptiveSetConsensus, AlgorithmOneSystem};
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xFAC7);

    // The model: the Figure-5b adversary ({p2}, {p1,p3} + supersets),
    // a fair, superset-closed, non-symmetric adversary of power 2.
    let adversary = zoo::figure_5b_adversary();
    let alpha = AgreementFunction::of_adversary(&adversary);
    let r_a = fair_affine_task(&alpha);
    println!("model: {adversary}  (setcon = {})", adversary.setcon());
    println!("R_A  : {} facets\n", r_a.complex().facet_count());

    // --- Part 1: Algorithm 1 under adversarial schedules ---------------
    let full = ColorSet::full(3);
    let power = alpha.alpha(full);
    let mut runs = 0;
    let mut facets_seen = std::collections::BTreeSet::new();
    for trial in 0..200 {
        // Any fault pattern with fewer than α(P) failures is admissible.
        let faulty = match trial % 4 {
            0 => ColorSet::EMPTY,
            1 => ColorSet::from_indices([0]),
            2 => ColorSet::from_indices([1]),
            _ => ColorSet::from_indices([2]),
        };
        if faulty.len() > power - 1 {
            continue;
        }
        let correct = full.minus(faulty);
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        let outcome = run_adversarial(
            &mut sys,
            full,
            correct,
            &mut rng,
            |_| (trial % 7) * 2,
            200_000,
        );
        assert!(outcome.all_correct_terminated, "Lemma 5: liveness");
        let simplex =
            outputs_to_simplex(r_a.complex(), &sys.outputs()).expect("outputs are Chr² vertices");
        assert!(
            r_a.complex().contains_simplex(&simplex),
            "Lemma 6: outputs form a simplex of R_A"
        );
        facets_seen.insert(simplex);
        runs += 1;
    }
    println!(
        "Algorithm 1: {runs} adversarial runs, all live and safe; \
         {} distinct output simplices observed",
        facets_seen.len()
    );

    // --- Part 2: adaptive set consensus in R_A^* -----------------------
    let solver = AdaptiveSetConsensus::new(&r_a, &alpha);
    for q in full.non_empty_subsets() {
        let proposals: HashMap<ProcessId, u64> =
            q.iter().map(|p| (p, 1000 + p.index() as u64)).collect();
        let decisions = solver.solve(full, q, &proposals, &mut rng, 64);
        let mut values: Vec<u64> = decisions.iter().map(|d| d.value).collect();
        values.sort_unstable();
        values.dedup();
        println!(
            "coalition {q}: {} decision value(s) (α-agreement bound {})",
            values.len(),
            alpha.alpha(full).min(q.len())
        );
        assert!(values.len() <= alpha.alpha(full));
    }
    println!("\nall assertions passed — Theorems 7 and 15 exercised");
}
