//! Compact models (Section 1, "Compact models"): affine models contain
//! their limit points, adversarial models generally do not.
//!
//! * In the **1-resilient** 3-process model, every finite prefix of the
//!   solo run of `p1` complies with the model, yet the infinite solo run
//!   does not — the model is not compact. We exhibit this on the runtime:
//!   the prefixes are all extendable to admissible runs, but `p1` alone
//!   can never decide 2-set consensus safely at participation `{p1}`
//!   (`α({p1}) = 0`: Algorithm 1 makes it wait).
//! * The **affine model `R_A^*`** is compact by construction: every task
//!   it solves is solved in a bounded number of iterations (König) — the
//!   solver exhibits the explicit bound `ℓ` for set consensus.
//!
//! Run with: `cargo run --release --example compactness`

use fact::adversary::{Adversary, AgreementFunction};
use fact::affine::fair_affine_task;
use fact::affine_domain;
use fact::runtime::System;
use fact::tasks::{find_carried_map, SetConsensus};
use fact::topology::{ColorSet, ProcessId};
use fact::AlgorithmOneSystem;

fn main() {
    let adversary = Adversary::t_resilient(3, 1);
    let alpha = AgreementFunction::of_adversary(&adversary);

    // --- Non-compactness of the adversarial model -----------------------
    // All finite solo prefixes comply with 1-resilience (p2, p3 may just
    // be slow), but the solo run is not in the model: α({p1}) = 0.
    assert_eq!(alpha.alpha(ColorSet::from_indices([0])), 0);
    let mut sys = AlgorithmOneSystem::new(&alpha, ColorSet::full(3));
    let p1 = ProcessId::new(0);
    for steps in [10usize, 100, 1000] {
        let mut s = 0;
        while s < steps {
            sys.step(p1);
            s += 1;
        }
        assert!(
            !sys.has_terminated(p1),
            "p1 running solo must keep waiting — every prefix is extendable, \
             the limit run is excluded"
        );
        println!("solo prefix of {steps} steps: p1 still (correctly) undecided");
    }
    println!("the 1-resilient model is not compact: its limit solo run is excluded\n");

    // --- Compactness of the affine model -------------------------------
    // R_A^* solves 2-set consensus in a *bounded* number of iterations;
    // the solver finds the explicit bound (ℓ = 1).
    let r_a = fair_affine_task(&alpha);
    let t = SetConsensus::new(3, 2, &[0, 1, 2]);
    let domain = affine_domain(&r_a, &t.rainbow_inputs(), 1);
    let result = find_carried_map(&t, &domain, 3_000_000);
    assert!(result.is_found());
    println!(
        "R_A^* solves 2-set consensus within ℓ = 1 iteration ({} domain facets): \
         solvability is witnessed by finitely many finite runs",
        domain.facet_count()
    );
    println!("the affine model is compact by construction");
}
