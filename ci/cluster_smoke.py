"""CI chaos smoke for the replicated fact-serve cluster.

Stands up a 2-peer cluster as real ``fact-cli serve`` processes, then
walks it through the full self-healing story under an injected fault
plan:

1. **Torn write** — peer B runs under a chaos plan that truncates its
   2nd store write mid-entry (committed *without* the atomic rename, so
   the corruption is really on disk). B's background scrub must detect
   it against the Merkle index and repair it from the memory tier
   (``scrub_repaired`` >= 1, and the corruption never surfaces to a
   client).
2. **Kill a replica mid-workload** — the same plan kills B (exit code
   42) at a request sequence number reached while the workload is still
   running. Every client request — issued through the resilient
   ``fact-cli query`` client with both peers listed — must still
   succeed by failing over to A. Zero failed requests is the bar.
3. **Restart + convergence** — B restarts on its old address against
   its old store. After its anti-entropy round, A and B must report an
   identical Merkle root covering every verdict the workload produced.

Usage: python3 ci/cluster_smoke.py [FACT_CLI_PATH]
"""

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time

KILL_EXIT_CODE = 42
# High enough that phase 1 plus the scrub-wait stats polling (<= ~170
# requests worst case) can never fire it early; the poke loop after the
# scrub check drives the sequence the rest of the way deliberately.
KILL_AT_REQUEST = 250
# (model, k): phase 1 runs the first three before the kill, phase 2 the
# rest (plus re-asks of phase 1) after it.
PHASE1 = [("t-res:3:1", 2), ("t-res:3:2", 2), ("k-of:3:2", 2)]
PHASE2 = [("k-of:3:1", 1), ("wait-free:3", 2), ("t-res:3:1", 2), ("k-of:3:2", 2)]


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_listening(port, deadline_s=30):
    start = time.time()
    while time.time() - start < deadline_s:
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1):
                return
        except OSError:
            time.sleep(0.05)
    raise AssertionError(f"port {port} never started accepting")


def rpc(port, request, timeout=30):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        line = sock.makefile("r", encoding="utf-8").readline()
    assert line, f"peer :{port} closed the connection before answering {request}"
    response = json.loads(line)
    assert response["id"] == request["id"], (request, response)
    return response


class Cluster:
    def __init__(self, fact_cli):
        self.fact_cli = fact_cli
        self.root = tempfile.mkdtemp(prefix="fact-cluster-smoke-")
        self.ports = [free_port(), free_port()]
        self.peers = ",".join(f"127.0.0.1:{p}" for p in self.ports)
        self.procs = [None, None]

    def store_dir(self, i):
        return os.path.join(self.root, f"store-{i}")

    def start_peer(self, i, fault_plan=None):
        cmd = [
            self.fact_cli, "serve",
            "--addr", f"127.0.0.1:{self.ports[i]}",
            "--store", self.store_dir(i),
            "--peers", self.peers,
            "--self-index", str(i),
            "--scrub-interval-ms", "200",
        ]
        if fault_plan is not None:
            plan_path = os.path.join(self.root, f"fault-plan-{i}.json")
            with open(plan_path, "w") as f:
                json.dump(fault_plan, f)
            cmd += ["--fault-plan", plan_path]
        self.procs[i] = subprocess.Popen(
            cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        wait_listening(self.ports[i])

    def query(self, model, k, proof=False):
        """One request through the resilient client; returns its stdout."""
        cmd = [
            self.fact_cli, "query", model, str(k),
            "--peers", self.peers,
            "--deadline-ms", "60000",
        ]
        if proof:
            cmd.append("--proof")
        done = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        assert done.returncode == 0, (
            f"client request {model}/{k} failed (exit {done.returncode}): "
            f"{done.stderr.strip()}"
        )
        return done.stdout

    def shutdown_peer(self, i):
        if self.procs[i] is None:
            return
        try:
            rpc(self.ports[i], {"op": "shutdown", "id": 999})
        except (OSError, AssertionError):
            pass
        self.procs[i].wait(timeout=30)

    def cleanup(self):
        for p in self.procs:
            if p is not None and p.poll() is None:
                p.kill()
                p.wait()
        shutil.rmtree(self.root, ignore_errors=True)


def main():
    fact_cli = sys.argv[1] if len(sys.argv) > 1 else "target/release/fact-cli"
    cluster = Cluster(fact_cli)
    try:
        # Peer B carries the whole chaos plan: one torn store write early,
        # one kill at a request sequence the post-scrub poking will reach.
        plan = {
            "seed": 7,
            "events": [
                {"kind": "torn-write", "at_put": 2, "keep_bytes": 17},
                {"kind": "kill-peer", "at_request": KILL_AT_REQUEST},
            ],
        }
        cluster.start_peer(0)
        cluster.start_peer(1, fault_plan=plan)

        # Phase 1: warm the cluster. Replication factor 2 over 2 peers
        # means every verdict lands on both — so B takes at least three
        # store writes and the torn one is among them.
        for model, k in PHASE1:
            out = cluster.query(model, k)
            assert "verdict" in out, out

        # One proof-carrying request: the client verifies the Merkle
        # inclusion proof itself and fails hard on a bad one.
        out = cluster.query("t-res:3:1", 2, proof=True)
        assert "VERIFIED" in out, out

        # B's background scrub (200 ms period) must find the torn entry
        # and repair it from the memory tier.
        deadline = time.time() + 15
        while True:
            stats = rpc(cluster.ports[1], {"op": "stats", "id": 1})["stats"]
            if stats["scrub_repaired"] >= 1:
                break
            assert time.time() < deadline, f"scrub never repaired the torn write: {stats}"
            time.sleep(0.1)
        assert stats["scrub_quarantined"] == 0, stats

        # Kill B mid-workload: poke it until the plan's kill-peer event
        # fires (every handled request advances the sequence), while the
        # client workload keeps running against the cluster.
        for poke in range(KILL_AT_REQUEST + 50):
            if cluster.procs[1].poll() is not None:
                break
            try:
                rpc(cluster.ports[1], {"op": "stats", "id": 100 + poke}, timeout=5)
            except (OSError, AssertionError):
                pass  # the killed process closes the socket without replying
        rc = cluster.procs[1].wait(timeout=30)
        assert rc == KILL_EXIT_CODE, f"expected chaos kill exit {KILL_EXIT_CODE}, got {rc}"

        # Phase 2: B is dead and still listed — every request must
        # succeed anyway via failover to A.
        for model, k in PHASE2:
            out = cluster.query(model, k)
            assert "verdict" in out, out

        # Restart B on its old address/store; its startup anti-entropy
        # plus one explicit sync round must converge it to A's root.
        cluster.start_peer(1)
        sync = rpc(cluster.ports[1], {"op": "sync", "id": 2})
        assert sync["ok"], sync
        root_a = rpc(cluster.ports[0], {"op": "root", "id": 3})
        root_b = rpc(cluster.ports[1], {"op": "root", "id": 4})
        assert root_a["ok"] and root_b["ok"], (root_a, root_b)
        assert root_a["merkle_root"] == root_b["merkle_root"], (root_a, root_b)
        assert root_a["entry_count"] == root_b["entry_count"] == 5, (root_a, root_b)

        # cluster-stats agrees: both peers reachable, roots converged.
        done = subprocess.run(
            [fact_cli, "cluster-stats", "--peers", cluster.peers],
            capture_output=True, text=True, timeout=60,
        )
        assert done.returncode == 0, done.stderr
        assert "roots converged" in done.stdout, done.stdout

        cluster.shutdown_peer(0)
        cluster.shutdown_peer(1)
        print(
            "cluster smoke OK: torn write repaired, replica killed (exit 42) with "
            "zero failed client requests, roots converged on "
            f"{root_a['merkle_root'][:12]}… with {root_a['entry_count']} entries"
        )
    finally:
        cluster.cleanup()


if __name__ == "__main__":
    main()
