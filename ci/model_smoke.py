"""CI smoke client for the model-family namespaces of `fact-cli serve`.

Runs against a freshly started server with an empty store, so every
counter assert below is *exact*:

* ``alpha:`` — an agreement-function query runs the engine once, then
  answers from the verdict store, including under a different spelling
  of the same α-model (canonicalization means one store key);
* ``fpc:`` — a finalization-statistics query computes once and then
  answers from the summary cache, again across spellings, with
  bit-identical statistics;
* ``stats`` — the counters account for exactly the traffic above
  (hits/misses/engine runs and the fpc hit/miss/corrupt tiers).

Usage: python3 ci/model_smoke.py HOST:PORT
"""

import json
import socket
import sys

# alpha-kconc:3:2 spelled out: table[P] = min(|P|, 2) over the 3-process
# subset lattice in bitmask order.
ALPHA_SHORT = "alpha-kconc:3:2"
ALPHA_LONG = "alpha:3:01121222"

FPC_SHORT = "fpc:16:4:berserk"
FPC_LONG = "fpc:16:4:berserk:10:500"  # the defaults, spelled out


def connect(host, port):
    sock = socket.create_connection((host, port), timeout=60)
    return sock, sock.makefile("r", encoding="utf-8")


def rpc(sock, reader, request):
    sock.sendall((json.dumps(request) + "\n").encode())
    line = reader.readline()
    assert line, "server closed the connection before answering"
    response = json.loads(line)
    assert response["id"] == request["id"], (request, response)
    return response


def main():
    addr = sys.argv[1]
    host, port = addr.rsplit(":", 1)
    sock, reader = connect(host, int(port))

    # --- the α namespace -------------------------------------------------
    cold = rpc(sock, reader, {"op": "solve", "id": 1, "model": ALPHA_SHORT, "k": 2})
    assert cold["ok"] and cold["authoritative"], cold
    assert cold["source"] == "engine", cold
    warm = rpc(sock, reader, {"op": "solve", "id": 2, "model": ALPHA_SHORT, "k": 2})
    assert warm["ok"] and warm["source"] == "store", warm
    assert warm["verdict"] == cold["verdict"], (cold, warm)
    # A different spelling of the same α-model is the same store entry.
    spelled = rpc(sock, reader, {"op": "solve", "id": 3, "model": ALPHA_LONG, "k": 2})
    assert spelled["ok"] and spelled["source"] == "store", spelled
    assert spelled["verdict"] == cold["verdict"], (cold, spelled)
    # A malformed α table answers usage code 2 without killing anything.
    bad = rpc(sock, reader, {"op": "solve", "id": 4, "model": "alpha:3:0110", "k": 1})
    assert not bad["ok"] and bad["code"] == 2, bad

    # --- the fpc namespace -----------------------------------------------
    fpc_cold = rpc(
        sock, reader, {"op": "fpc", "id": 5, "spec": FPC_SHORT, "runs": 400, "seed": 7}
    )
    assert fpc_cold["ok"] and fpc_cold["source"] == "engine", fpc_cold
    stats_cold = fpc_cold["fpc"]
    assert stats_cold["runs"] == 400 and stats_cold["seed"] == 7, stats_cold
    assert stats_cold["spec"] == FPC_LONG, stats_cold
    assert 0 < stats_cold["rounds_p50"] <= stats_cold["rounds_p99"], stats_cold
    fpc_warm = rpc(
        sock, reader, {"op": "fpc", "id": 6, "spec": FPC_LONG, "runs": 400, "seed": 7}
    )
    assert fpc_warm["ok"] and fpc_warm["source"] == "store", fpc_warm
    assert fpc_warm["fpc"] == stats_cold, (stats_cold, fpc_warm["fpc"])
    bad_fpc = rpc(sock, reader, {"op": "fpc", "id": 7, "spec": "fpc:2:9:berserk"})
    assert not bad_fpc["ok"] and bad_fpc["code"] == 2, bad_fpc

    # --- exact counter accounting ----------------------------------------
    stats = rpc(sock, reader, {"op": "stats", "id": 8})["stats"]
    assert stats["hits"] == 2, stats        # ids 2 and 3
    assert stats["misses"] == 1, stats      # id 1
    assert stats["engine_runs"] == 1, stats
    assert stats["fpc_hits"] == 1, stats    # id 6
    assert stats["fpc_misses"] == 1, stats  # id 5
    assert stats["fpc_corrupt"] == 0, stats

    shutdown = rpc(sock, reader, {"op": "shutdown", "id": 9})
    assert shutdown["ok"], shutdown
    sock.close()
    print("model smoke OK:", {k: stats[k] for k in
                              ("hits", "misses", "engine_runs",
                               "fpc_hits", "fpc_misses", "fpc_corrupt")})


if __name__ == "__main__":
    main()
