"""CI smoke client for `fact-cli serve`.

Fires a mixed concurrent workload at a freshly started server — several
client threads issuing the same small query portfolio plus a malformed
spec each — then checks the serving counters add up: every distinct
query runs the engine exactly once (the rest are store hits or
coalesced joins), errors answer with the usage code without killing the
connection, and a wire shutdown drains the server.

Besides the default mixed workload, two phases exercise the persistent
tower store across a server restart:

* ``cold``  — a fresh store: every query is an engine run, and the
  domain towers it builds are persisted alongside the verdicts;
* ``restart`` — the same store, a new server process: previously seen
  queries answer from the verdict store, a *new* query (same model,
  deeper ``iters``) must run the engine but load its tower levels from
  the store instead of rebuilding them (``tower_hits`` > 0).

Usage: python3 ci/serve_smoke.py HOST:PORT EXPECTED_WORKERS [PHASE]
"""

import json
import os
import socket
import sys
import threading

THREADS = 6
# (model, k, iters or None) per phase. The restart phase re-asks one
# cold-phase query (a verdict-store hit across the restart) and asks one
# new query at a deeper level (an engine run that finds its lower tower
# levels already persisted).
WORKLOADS = {
    "mixed": [
        ("t-res:3:1", 1, None),
        ("t-res:3:1", 2, None),
        ("k-of:3:2", 2, None),
        ("t-res:3:2", 2, None),
    ],
    "cold": [
        ("t-res:3:1", 2, 1),
        ("t-res:3:1", 2, 2),
        ("k-of:3:2", 2, 1),
    ],
    "restart": [
        ("t-res:3:1", 2, 2),
        ("k-of:3:2", 2, 2),
    ],
}


def connect(host, port):
    sock = socket.create_connection((host, port), timeout=60)
    return sock, sock.makefile("r", encoding="utf-8")


def rpc(sock, reader, request):
    sock.sendall((json.dumps(request) + "\n").encode())
    line = reader.readline()
    assert line, "server closed the connection before answering"
    response = json.loads(line)
    assert response["id"] == request["id"], (request, response)
    return response


def client(host, port, tid, queries, solved, errored):
    sock, reader = connect(host, port)
    try:
        for i, (model, k, iters) in enumerate(queries):
            request = {"op": "solve", "id": tid * 100 + i, "model": model, "k": k}
            if iters is not None:
                request["iters"] = iters
            solved.append(rpc(sock, reader, request))
        bad = rpc(
            sock, reader, {"op": "solve", "id": tid * 100 + 99, "model": "bogus:9", "k": 1}
        )
        errored.append(bad)
    finally:
        sock.close()


def main():
    addr, expected_workers = sys.argv[1], int(sys.argv[2])
    phase = sys.argv[3] if len(sys.argv) > 3 else "mixed"
    queries = WORKLOADS[phase]
    host, port = addr.rsplit(":", 1)
    port = int(port)

    solved, errored = [], []
    threads = [
        threading.Thread(target=client, args=(host, port, tid, queries, solved, errored))
        for tid in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(solved) == THREADS * len(queries), len(solved)
    for r in solved:
        assert r["ok"], r
        assert r["authoritative"], r
        assert r["verdict"] in ("solvable", "no-map"), r
        assert r["source"] in ("engine", "store", "coalesced"), r
    # Identical queries must agree wherever they were answered from.
    by_query = {}
    for r in solved:
        key = r["id"] % 100
        by_query.setdefault(key, set()).add((r["verdict"], r["iterations"], r["witness_len"]))
    for key, distinct in by_query.items():
        assert len(distinct) == 1, (key, distinct)
    for r in errored:
        assert not r["ok"] and r["code"] == 2, r

    sock, reader = connect(host, port)
    stats = rpc(sock, reader, {"op": "stats", "id": 1})["stats"]
    distinct, total = len(queries), len(solved)
    assert stats["workers"] == expected_workers, stats
    if phase == "restart":
        # One query is a verdict-store hit from the previous lifetime;
        # the other is new and runs the engine exactly once — but its
        # lower tower levels come from the store, not from subdivision.
        assert stats["engine_runs"] == 1, stats
        assert stats["misses"] == 1, stats
        assert stats["hits"] + stats["coalesced"] == total - 1, stats
        assert stats["hits"] >= THREADS, stats
        assert stats["tower_hits"] >= 1, stats
    else:
        # Single flight: one engine run per distinct query, never more.
        assert stats["engine_runs"] == distinct, stats
        assert stats["misses"] == distinct, stats
        assert stats["hits"] + stats["coalesced"] == total - distinct, stats
    assert stats["store_corrupt"] == 0, stats
    assert stats["tower_corrupt"] == 0, stats
    assert stats["rejected"] == 0, stats
    assert stats["queue_depth"] == 0 and stats["inflight"] == 0, stats

    # Every authoritative verdict is on disk, one entry per distinct
    # query — tower levels live under towers/, never at the top level.
    entries = [f for f in os.listdir("serve-store") if f.endswith(".json")]
    expected_entries = {"mixed": 4, "cold": 3, "restart": 4}[phase]
    assert len(entries) == expected_entries, entries

    bye = rpc(sock, reader, {"op": "shutdown", "id": 2})
    assert bye["ok"] and bye["op"] == "shutdown", bye
    sock.close()
    print(f"serve smoke OK ({phase}, {expected_workers} worker(s)): {stats}")


if __name__ == "__main__":
    main()
