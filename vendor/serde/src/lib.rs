//! Offline vendored stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization framework under the `serde` name. It implements
//! exactly the API surface this repository uses: `#[derive(Serialize,
//! Deserialize)]` on non-generic structs, and value-tree (de)serialization
//! consumed by the vendored `serde_json`. It is *not* API-compatible with
//! the real serde beyond that surface.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the data model shared with `serde_json`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact up to `u64::MAX`).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

/// Error type shared by serialization and deserialization.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            _ => Err(Error::msg(format!("expected object with field `{name}`"))),
        }
    }

    /// Looks up an element of an array value.
    pub fn element(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Seq(items) => items
                .get(index)
                .ok_or_else(|| Error::msg(format!("missing element {index}"))),
            _ => Err(Error::msg(format!("expected array with element {index}"))),
        }
    }

    fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::UInt(v) => Ok(v),
            Value::Int(v) if v >= 0 => Ok(v as u64),
            _ => Err(Error::msg("expected unsigned integer")),
        }
    }

    fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::Int(v) => Ok(v),
            Value::UInt(v) => i64::try_from(v).map_err(|_| Error::msg("integer out of range")),
            _ => Err(Error::msg("expected integer")),
        }
    }

    fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::Float(v) => Ok(v),
            Value::UInt(v) => Ok(v as f64),
            Value::Int(v) => Ok(v as f64),
            _ => Err(Error::msg("expected number")),
        }
    }
}

/// Serialization to the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                <$t>::try_from(v.as_u64()?).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                <$t>::try_from(v.as_i64()?).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(v.as_f64()? as $t)
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, item)| Ok((k.clone(), V::from_value(item)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}
