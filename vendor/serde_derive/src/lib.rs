//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled over `proc_macro`'s token API (no `syn`/`quote` — the build
//! container has no registry access). Supports non-generic structs with
//! named fields, tuple structs, and unit structs, which covers every
//! `#[derive(Serialize, Deserialize)]` in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct StructInfo {
    name: String,
    fields: Fields,
}

fn parse_struct(item: TokenStream) -> StructInfo {
    let mut iter = item.into_iter();
    // Skip outer attributes and visibility until the `struct` keyword.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let _attr_body = iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("the vendored serde derive supports structs only")
            }
            Some(_) => continue,
            None => panic!("derive input ended before a `struct` keyword"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };
    let fields = match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("the vendored serde derive does not support generic structs")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(tuple_field_count(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        None => Fields::Unit,
        other => panic!("unsupported struct shape at {other:?}"),
    };
    StructInfo { name, fields }
}

/// Extracts the field names of a named-field struct body.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _attr_body = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other:?}"),
                None => return names,
            }
        };
        names.push(name);
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type up to the next top-level comma, tracking angle
        // brackets (generic arguments contain commas).
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => continue,
                None => return names,
            }
        }
    }
}

/// Counts the fields of a tuple-struct body.
fn tuple_field_count(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_token {
                    count += 1;
                    saw_token = false;
                }
            }
            _ => saw_token = true,
        }
    }
    if saw_token {
        count += 1;
    }
    count
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let info = parse_struct(item);
    let name = &info.name;
    let body = match &info.fields {
        Fields::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", pairs.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(k) => {
            let items: Vec<String> = (0..*k)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let info = parse_struct(item);
    let name = &info.name;
    let body = match &info.fields {
        Fields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(k) => {
            let items: Vec<String> = (0..*k)
                .map(|i| format!("::serde::Deserialize::from_value(v.element({i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
