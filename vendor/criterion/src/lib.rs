//! Offline vendored micro-benchmark harness under the `criterion` name.
//!
//! Implements the entry points this workspace's benches use:
//! `bench_function`, `benchmark_group`/`bench_with_input`, `BenchmarkId`,
//! the `criterion_group!`/`criterion_main!` macros, and `black_box`. It
//! times each routine over a fixed number of samples and prints a
//! mean/min/max summary line per benchmark — there is no statistical
//! analysis, HTML report, or baseline comparison.
//!
//! On top of the real criterion's surface, every result (and any metric
//! recorded with [`record_metric`]) is kept in a process-global registry;
//! `criterion_main!` flushes it as `BENCH_<crate>.json` at exit (into
//! `ACT_BENCH_JSON_DIR`, or the current directory), which is how CI
//! collects machine-readable benchmark output.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier combining a function name and a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Times one routine.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once per sample, recording each duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up run outside the measurement.
        black_box(routine());
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

struct BenchRecord {
    id: String,
    samples: usize,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    /// Per-result numeric fields ([`record_result_metric`]) flattened
    /// into the result's JSON row (throughputs, worker counts, …).
    extra: Vec<(String, f64)>,
}

/// The result registry is keyed by benchmark id: re-running an id
/// overwrites its record in place (first-appearance order preserved),
/// so a report can never contain duplicate ids.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());
static METRICS: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());
/// Per-result metrics recorded before their benchmark has run; merged
/// into the record when [`report`] creates it.
static PENDING_RESULT_METRICS: Mutex<Vec<(String, String, f64)>> = Mutex::new(Vec::new());

/// Records a named scalar alongside the timing results (figure counts,
/// problem sizes, …); it lands in the `metrics` object of the JSON
/// report written by [`write_json_report`].
pub fn record_metric(key: &str, value: u64) {
    METRICS.lock().unwrap().push((key.to_string(), value));
}

/// Attaches a numeric field to the result row of benchmark `id` (the
/// full id as reported, e.g. `"group/name/param"`). Works in either
/// order: if the result already exists the field is set (overwriting a
/// previous value for the same key); otherwise it is held until the
/// benchmark reports. This is how benches publish derived quantities —
/// `runs_per_sec`, `workers` — as first-class columns of their row
/// rather than as detached global metrics.
pub fn record_result_metric(id: &str, key: &str, value: f64) {
    let mut results = RESULTS.lock().unwrap();
    if let Some(record) = results.iter_mut().find(|r| r.id == id) {
        set_extra(&mut record.extra, key, value);
        return;
    }
    drop(results);
    PENDING_RESULT_METRICS
        .lock()
        .unwrap()
        .push((id.to_string(), key.to_string(), value));
}

/// Reads back the mean of an already-reported benchmark, in
/// nanoseconds. This is how benches derive metrics (speedups, ratios)
/// from *the same run* that produced the result rows — computing a
/// metric from a separate ad-hoc timing loop makes the `metrics` block
/// disagree with the rows it claims to summarize.
pub fn result_mean_ns(id: &str) -> Option<u64> {
    RESULTS
        .lock()
        .unwrap()
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.mean_ns as u64)
}

fn set_extra(extra: &mut Vec<(String, f64)>, key: &str, value: f64) {
    if let Some(slot) = extra.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value;
    } else {
        extra.push((key.to_string(), value));
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the accumulated results and metrics as `BENCH_<name>.json`,
/// into `ACT_BENCH_JSON_DIR` (created if needed) or the current
/// directory. Called by `criterion_main!` with the bench target's crate
/// name; calling it again after more benchmarks re-writes the file.
pub fn write_json_report(name: &str) {
    let results = RESULTS.lock().unwrap();
    let metrics = METRICS.lock().unwrap();
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(name)));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mut row = format!(
            "    {{\"id\": \"{}\", \"samples\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}",
            json_escape(&r.id),
            r.samples,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
        );
        for (key, value) in &r.extra {
            let value = if value.is_finite() { *value } else { 0.0 };
            row.push_str(&format!(", \"{}\": {}", json_escape(key), value));
        }
        row.push_str(&format!(
            "}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
        json.push_str(&row);
    }
    json.push_str("  ],\n  \"metrics\": {");
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\"{}\": {}", json_escape(k), v));
    }
    json.push_str("}\n}\n");
    let dir = std::env::var("ACT_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("benchmark report written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn report(id: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{id:<50} no samples");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    let mut extra = Vec::new();
    {
        let mut pending = PENDING_RESULT_METRICS.lock().unwrap();
        pending.retain(|(pid, key, value)| {
            if pid == id {
                set_extra(&mut extra, key, *value);
                false
            } else {
                true
            }
        });
    }
    let record = BenchRecord {
        id: id.to_string(),
        samples: durations.len(),
        mean_ns: mean.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
        extra,
    };
    let mut results = RESULTS.lock().unwrap();
    if let Some(existing) = results.iter_mut().find(|r| r.id == id) {
        // A re-run supersedes its earlier timing in place, so the
        // registry (and the JSON report) never holds duplicate ids.
        // Previously-attached result metrics survive unless the re-run
        // recorded new ones.
        let mut merged = record;
        for (key, value) in existing.extra.drain(..) {
            if !merged.extra.iter().any(|(k, _)| *k == key) {
                merged.extra.push((key, value));
            }
        }
        *existing = merged;
    } else {
        results.push(record);
    }
    drop(results);
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        durations.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        report(id, &b.durations);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            durations: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.durations);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`. After all groups run, the
/// accumulated results are flushed as `BENCH_<crate>.json` (the bench
/// target name, since each bench target compiles as its own crate).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report(::core::env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests touching it share one lock
    /// so the harness's parallelism cannot interleave them.
    fn registry_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn reset_registry() {
        RESULTS.lock().unwrap().clear();
        PENDING_RESULT_METRICS.lock().unwrap().clear();
    }

    #[test]
    fn rerun_overwrites_its_record_in_place() {
        let _guard = registry_guard();
        reset_registry();
        report("a/1", &[Duration::from_nanos(10)]);
        report("b/1", &[Duration::from_nanos(20)]);
        report("a/1", &[Duration::from_nanos(30)]);
        let results = RESULTS.lock().unwrap();
        assert_eq!(results.len(), 2, "no duplicate ids in the registry");
        assert_eq!(results[0].id, "a/1", "first-appearance order is stable");
        assert_eq!(results[0].mean_ns, 30, "the re-run supersedes the first");
        assert_eq!(results[1].id, "b/1");
    }

    #[test]
    fn result_mean_ns_reads_back_reported_rows() {
        let _guard = registry_guard();
        reset_registry();
        assert_eq!(result_mean_ns("d/1"), None);
        report("d/1", &[Duration::from_nanos(40), Duration::from_nanos(60)]);
        assert_eq!(result_mean_ns("d/1"), Some(50));
    }

    #[test]
    fn result_metrics_attach_in_either_order_and_survive_reruns() {
        let _guard = registry_guard();
        reset_registry();
        // Before the result exists: held as pending.
        record_result_metric("c/4", "workers", 4.0);
        report("c/4", &[Duration::from_nanos(10)]);
        // After: set directly, overwriting a previous value per key.
        record_result_metric("c/4", "runs_per_sec", 100.0);
        record_result_metric("c/4", "runs_per_sec", 250.0);
        {
            let results = RESULTS.lock().unwrap();
            let extra = &results[0].extra;
            assert_eq!(extra.len(), 2);
            assert!(extra.contains(&("workers".to_string(), 4.0)));
            assert!(extra.contains(&("runs_per_sec".to_string(), 250.0)));
        }
        // A re-run keeps attached metrics it did not replace.
        report("c/4", &[Duration::from_nanos(12)]);
        let results = RESULTS.lock().unwrap();
        assert_eq!(results[0].mean_ns, 12);
        assert!(results[0].extra.contains(&("workers".to_string(), 4.0)));
        assert!(PENDING_RESULT_METRICS.lock().unwrap().is_empty());
    }
}
