//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free locking
//! API (`lock()` returns a guard directly; poisoning is ignored, matching
//! parking_lot's semantics).

use std::fmt;
use std::sync::TryLockError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_is_exclusive_and_reentrant_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
