//! Offline vendored property-testing harness under the `proptest` name.
//!
//! Implements the API surface this workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), `prop_assert!`/
//! `prop_assert_eq!`, integer-range strategies, `prop_map`, and
//! `collection::{vec, btree_set}`. Unlike the real crate there is no
//! shrinking; failures report the case index and seed so a failing case
//! can be replayed deterministically.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A source of pseudo-random values of one type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_range(self.start as u128, self.end as u128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.uniform_range(*self.start() as u128, *self.end() as u128 + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Inclusive element-count bounds for collection strategies.
    pub trait SizeBounds {
        /// `(min, max)` element counts, both inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeBounds for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.uniform_range(self.min as u128, self.max as u128 + 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of values from an element strategy.
    ///
    /// Duplicates drawn from the element strategy collapse, so the set may
    /// end up smaller than the drawn size (the real crate retries; every
    /// in-repo property holds for arbitrary sets, so this is fine).
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        pub(crate) element: S,
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.uniform_range(self.min as u128, self.max as u128 + 1) as usize;
            (0..target).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::{BTreeSetStrategy, SizeBounds, Strategy, VecStrategy};

    /// Strategy for vectors with element counts in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// Strategy for ordered sets with drawn element counts in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl SizeBounds) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }
}

pub mod test_runner {
    //! Configuration, error type, and the deterministic case RNG.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// The deterministic per-case generator: seeded from the fully
    /// qualified test name and the case index, so each case replays
    /// exactly, independent of execution order.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Builds the RNG for `(test, case)`.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            TestRng {
                inner: SmallRng::seed_from_u64(hash),
            }
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn uniform_range(&mut self, lo: u128, hi: u128) -> u128 {
            assert!(lo < hi, "cannot sample from empty range");
            lo + (self.inner.next_u64() as u128) % (hi - lo)
        }
    }
}

pub mod prelude {
    //! Everything the standard `use proptest::prelude::*;` brings in.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr;) => {};
    (@run $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "property `{}` failed at case {} of {}: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
}
