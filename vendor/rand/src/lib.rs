//! Offline vendored stand-in for `rand`.
//!
//! Provides the `RngCore`/`Rng`/`SeedableRng` trait surface this workspace
//! uses: `gen_range` over half-open and inclusive integer ranges,
//! `gen_bool`, and `seed_from_u64`. Streams are deterministic per seed but
//! are *not* bit-compatible with the real `rand` crate; all in-repo users
//! only rely on within-process seeded determinism.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as u128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Simple generators for callers that need an owned `RngCore`.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
        }
    }
}
