//! Offline vendored stand-in for `rand_chacha`.
//!
//! Implements a real ChaCha8 block function behind the `ChaCha8Rng` name,
//! wired to the vendored `rand` traits. Seeding is derived from the `u64`
//! seed via SplitMix64, so streams are deterministic per seed but not
//! bit-compatible with the real crate (no in-repo user depends on that).

use rand::{RngCore, SeedableRng};

/// A ChaCha8-based pseudorandom generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// ChaCha input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current output block, consumed as eight `u64` words.
    buffer: [u64; 8],
    /// Next unread index into `buffer`; 8 means "refill".
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Double round: column round then diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(&self.state) {
            *w = w.wrapping_add(*s);
        }
        for i in 0..8 {
            self.buffer[i] = (working[2 * i] as u64) | ((working[2 * i + 1] as u64) << 32);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        let mut st = [0u32; 16];
        st[..4].copy_from_slice(&CHACHA_CONSTANTS);
        st[4..12].copy_from_slice(&key);
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state: st,
            buffer: [0; 8],
            idx: 8,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx >= 8 {
            self.refill();
        }
        let word = self.buffer[self.idx];
        self.idx += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..=6_000).contains(&heads));
    }
}
