//! Offline vendored JSON (de)serializer over the vendored `serde` value
//! model. Implements `to_string`, `to_string_pretty`, and `from_str` — the
//! only entry points this workspace uses.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Keep floats distinguishable from integers on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    pairs.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::msg("invalid \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain (unescaped) bytes
                    // with one UTF-8 validation. `"` and `\` are ASCII
                    // and never occur inside a multi-byte sequence, so
                    // splitting at them is UTF-8-safe.
                    let rest = &self.bytes[self.pos..];
                    let end = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .ok_or_else(|| Error::msg("unterminated string"))?;
                    let chunk = std::str::from_utf8(&rest[..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos += end;
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg("invalid number"))
        }
    }
}
