//! Offline vendored stand-in for the slice of `crossbeam` this workspace
//! uses: `crossbeam::scope` with `Scope::spawn`, implemented over
//! `std::thread::scope`.
//!
//! Divergence from the real crate: if a spawned thread panics, the panic
//! propagates when the scope joins (std semantics) instead of surfacing as
//! an `Err` — callers here immediately `unwrap()` the result, so both
//! behaviors fail a test identically.

use std::any::Any;

/// A handle for spawning threads tied to a scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope, allowing
    /// nested spawns, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which spawned threads are joined before the
/// call returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawned_threads() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawns_see_the_scope() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
