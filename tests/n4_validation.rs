//! Four-process validation: the constructions and theorems beyond the
//! paper's illustrated n = 3 — including the points where the known
//! affine tasks and the general `R_A` genuinely diverge.

use act_adversary::{Adversary, AgreementFunction};
use act_affine::{fair_affine_task, k_obstruction_free_task, t_resilient_task};
use act_runtime::run_adversarial;
use act_topology::ColorSet;
use fact::{outputs_to_simplex, AlgorithmOneSystem, LeaderMap};
use rand::SeedableRng;

#[test]
fn r_a_equals_saraph_t_resilient_at_n4() {
    for t in [1usize, 2] {
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(4, t));
        let general = fair_affine_task(&alpha);
        let direct = t_resilient_task(4, t);
        assert!(
            general.complex().same_complex(direct.complex()),
            "R_A ≠ R_t-res at n = 4, t = {t}"
        );
    }
}

#[test]
fn r_a_vs_def6_at_n4() {
    // k = 1: equal. k = 2: INCOMPARABLE (neither contains the other) —
    // two different affine tasks capturing the same model. k = 3:
    // strict containment. Exact counts pinned as regression data.
    let counts: Vec<(usize, usize, usize, bool, bool)> = (1..=3)
        .map(|k| {
            let alpha = AgreementFunction::k_concurrency(4, k);
            let general = fair_affine_task(&alpha);
            let direct = k_obstruction_free_task(4, k);
            let g = general.complex().canonical_facets();
            let d = direct.complex().canonical_facets();
            (k, g.len(), d.len(), g.is_subset(&d), d.is_subset(&g))
        })
        .collect();
    assert_eq!(counts[0], (1, 1015, 1015, true, true), "k = 1 equal");
    assert_eq!(
        counts[1],
        (2, 3587, 4773, false, false),
        "k = 2 incomparable"
    );
    assert_eq!(
        counts[2],
        (3, 4949, 5601, true, false),
        "k = 3 strict subset"
    );
}

#[test]
fn algorithm_one_safe_and_live_at_n4() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(44);
    for k in [2usize, 3] {
        let alpha = AgreementFunction::k_concurrency(4, k);
        let r_a = fair_affine_task(&alpha);
        let full = ColorSet::full(4);
        for trial in 0..60 {
            let faulty = if trial % 2 == 0 {
                ColorSet::from_indices([trial % 4])
            } else {
                ColorSet::EMPTY
            };
            let correct = full.minus(faulty);
            let mut sys = AlgorithmOneSystem::new(&alpha, full);
            let outcome = run_adversarial(
                &mut sys,
                full,
                correct,
                &mut rng,
                |_| (trial % 5) * 3,
                500_000,
            );
            assert!(outcome.all_correct_terminated, "liveness at n = 4, k = {k}");
            let sx = outputs_to_simplex(r_a.complex(), &sys.outputs()).unwrap();
            assert!(
                r_a.complex().contains_simplex(&sx),
                "safety at n = 4, k = {k}"
            );
        }
    }
}

#[test]
fn property_10_exhaustive_at_n4() {
    for k in [2usize, 3] {
        let alpha = AgreementFunction::k_concurrency(4, k);
        let r_a = fair_affine_task(&alpha);
        let lm = LeaderMap::new(r_a.complex(), &alpha);
        let full = ColorSet::full(4);
        let mut checks = 0u64;
        for facet in r_a.complex().facets() {
            for q in full.non_empty_subsets() {
                let theta = facet.filter(|v| q.contains(r_a.complex().color(v)));
                for sub in theta.non_empty_faces() {
                    let leaders: ColorSet = sub.vertices().iter().map(|&v| lm.mu_q(v, q)).collect();
                    let carrier = r_a.complex().carrier_colors(&sub);
                    assert!(
                        leaders.len() <= alpha.alpha(carrier),
                        "Property 10 at n = 4, k = {k}"
                    );
                    checks += 1;
                }
            }
        }
        assert!(checks > 100_000, "exhaustive coverage ({checks} checks)");
    }
}

#[test]
fn n4_adversary_theory_consistency() {
    // setcon / csize / symmetric formulas agree at n = 4 for a spread of
    // adversaries.
    for t in 0..4 {
        let a = Adversary::t_resilient(4, t);
        assert_eq!(a.setcon(), t + 1);
        assert_eq!(a.csize(), t + 1);
        assert!(a.is_fair());
    }
    for k in 1..=4 {
        let a = Adversary::k_obstruction_free(4, k);
        assert_eq!(a.setcon(), k);
        assert!(a.is_fair());
    }
    let custom = Adversary::superset_closure(
        4,
        [ColorSet::from_indices([0, 1]), ColorSet::from_indices([2])],
    );
    assert!(custom.is_fair());
    assert_eq!(custom.setcon(), custom.csize());
}
