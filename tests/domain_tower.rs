//! Exact-cost regression tests for the incremental [`DomainCache`]: the
//! whole point of the cache is that deepening a tower `R_A^ℓ(I)` by one
//! level runs exactly **one** subdivision round, and that a restart
//! backed by a persisted tower store runs **zero**. These tests pin
//! those counts against [`act_affine::APPLY_CALLS`], so a regression to
//! rebuild-on-every-query (the original no-op cache bug) fails loudly
//! instead of just showing up as a slow benchmark.

use std::sync::{Arc, Mutex, MutexGuard};

use act_adversary::AgreementFunction;
use act_affine::{fair_affine_task, AffineTask, APPLY_CALLS};
use act_service::TowerStore;
use act_topology::Complex;
use fact::{affine_domain, DomainCache, TowerPersistence};

/// [`APPLY_CALLS`] is process-global: tests that assert exact deltas
/// must not interleave with anything else that subdivides.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fact-tower-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small affine task over the 2-process standard input complex.
fn small_instance() -> (AffineTask, Complex) {
    let alpha = AgreementFunction::k_concurrency(2, 2);
    (fair_affine_task(&alpha), Complex::standard(2))
}

#[test]
fn extending_a_tower_by_one_level_costs_exactly_one_apply_to() {
    let _guard = serial();
    let (r_a, inputs) = small_instance();
    let mut cache = DomainCache::new();

    let before = APPLY_CALLS.get();
    cache.domain(&r_a, &inputs, 1);
    assert_eq!(APPLY_CALLS.get() - before, 1, "ℓ = 1 is one round");

    // Deepening 1 → 2 reuses the cached level and runs exactly one
    // more subdivision round — never a full rebuild.
    let before = APPLY_CALLS.get();
    let d2 = cache.domain(&r_a, &inputs, 2).clone();
    assert_eq!(APPLY_CALLS.get() - before, 1, "ℓ = 2 extends by one round");
    assert_eq!(d2, affine_domain(&r_a, &inputs, 2));

    // Re-asking any already-built level is free.
    let before = APPLY_CALLS.get();
    assert_eq!(cache.domain(&r_a, &inputs, 2), &d2);
    assert!(cache.domain(&r_a, &inputs, 1).facet_count() > 0);
    assert_eq!(APPLY_CALLS.get() - before, 0, "cached levels re-serve free");
    assert_eq!(cache.cached_levels(), 2);
}

#[test]
fn a_store_backed_warm_restart_runs_zero_apply_to() {
    let _guard = serial();
    let (r_a, inputs) = small_instance();
    let dir = temp_dir("warm-restart");
    let store = Arc::new(TowerStore::open(&dir).expect("open tower store"));

    // A first lifetime builds the tower and persists every level.
    {
        let mut cache =
            DomainCache::new().with_persistence(Arc::clone(&store) as Arc<dyn TowerPersistence>);
        assert!(cache.domain(&r_a, &inputs, 2).facet_count() > 0);
    }

    // A restarted lifetime (fresh cache, same store) must load both
    // levels instead of subdividing.
    let before = APPLY_CALLS.get();
    let mut restarted =
        DomainCache::new().with_persistence(Arc::clone(&store) as Arc<dyn TowerPersistence>);
    let d2 = restarted.domain(&r_a, &inputs, 2).clone();
    assert_eq!(
        APPLY_CALLS.get() - before,
        0,
        "a warm restart rebuilds nothing"
    );
    // …and what it loads is structurally identical to a scratch build.
    assert_eq!(d2, affine_domain(&r_a, &inputs, 2));

    // Deepening past the persisted levels costs exactly the one new
    // round, which is then itself persisted for the next lifetime.
    let before = APPLY_CALLS.get();
    restarted.domain(&r_a, &inputs, 3);
    assert_eq!(APPLY_CALLS.get() - before, 1);

    let before = APPLY_CALLS.get();
    let mut third =
        DomainCache::new().with_persistence(Arc::clone(&store) as Arc<dyn TowerPersistence>);
    assert!(third.domain(&r_a, &inputs, 3).facet_count() > 0);
    assert_eq!(APPLY_CALLS.get() - before, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
