//! Chaos suite: injected worker panics, wall-clock deadlines, and
//! scheduler fault injection. The contract under test is *graceful
//! degradation*: a fault may cost coverage (a degraded verdict, a lost
//! branch, a captured artifact) but may never silently flip a verdict,
//! crash the engine, or produce an unreplayable failure.

use std::sync::Mutex;
use std::time::Duration;

use act_runtime::{run_adversarial_with_faults, FaultPlan, TraceArtifact};
use act_tasks::{
    chaos, find_carried_map_with_config, verify_carried_map, SearchConfig, SearchResult,
    SetConsensus, Task, ENGINE_DEGRADED,
};
use act_topology::{ColorSet, Complex};
use fact::adversary::{Adversary, AgreementFunction};
use fact::AlgorithmOneSystem;
use proptest::prelude::*;
use rand::SeedableRng;

/// Chaos hooks, telemetry sinks, and the artifact env var are process
/// globals; every test that touches one serializes here.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the default panic printout silenced (injected panics
/// are intentional) and the chaos hook guaranteed disarmed afterwards.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    chaos::disarm();
    out
}

/// The golden instances of the mapsearch suite, both small enough to
/// search in milliseconds and both genuinely *branching*: the solvable
/// one is the p4-style instance, and the unsolvable one is 2-set
/// consensus on the rainbow inputs, whose impossibility is Sperner's
/// parity argument — invisible to local propagation, so the parallel
/// fan-out actually engages before the engine proves it. (Plain
/// consensus would not do: its constraints propagate so strongly that
/// root GAC refutes the instance with zero search nodes.)
fn golden(solvable: bool) -> (SetConsensus, Complex) {
    if solvable {
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let domain = t.inputs().iterated_subdivision(1);
        (t, domain)
    } else {
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let domain = t.rainbow_inputs().iterated_subdivision(1);
        (t, domain)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance criterion of the chaos layer: a worker panic
    /// injected into the parallel map search (threads ≥ 2) yields the
    /// same verdict as the serial engine on every golden instance, with
    /// the recovery observable (`engine.degraded` event + counter).
    #[test]
    fn injected_worker_panic_never_flips_the_verdict(
        threads in 2usize..5,
        branch in 0usize..4,
        solvable in (0u8..2).prop_map(|b| b == 1),
    ) {
        let _guard = lock();
        let (t, domain) = golden(solvable);
        let serial =
            find_carried_map_with_config(&t, &domain, &SearchConfig::serial(1_000_000)).0;

        let sink = act_obs::MemorySink::shared();
        act_obs::install(sink.clone());
        let before = ENGINE_DEGRADED.get();
        let (result, stats) = with_quiet_panics(|| {
            chaos::panic_once_on_branch(branch);
            find_carried_map_with_config(
                &t,
                &domain,
                &SearchConfig::serial(1_000_000).with_threads(threads),
            )
        });
        act_obs::uninstall();

        prop_assert!(
            result.verdict_name() == serial.verdict_name(),
            "threads={} branch={} solvable={}: {} vs {}",
            threads,
            branch,
            solvable,
            result.verdict_name(),
            serial.verdict_name()
        );
        if let SearchResult::Found(map) = &result {
            prop_assert!(verify_carried_map(&t, &domain, map));
        }
        if stats.caught_panics > 0 {
            // The one-shot panic disarms itself, so the serial retry of
            // the poisoned chunk completes: recovered, not degraded.
            prop_assert!(!stats.degraded, "a recovered run is not degraded");
            prop_assert!(ENGINE_DEGRADED.get() > before, "counter moved");
            let lines = sink.drain();
            prop_assert!(
                lines.iter().any(|l| l.contains("\"ev\":\"engine.degraded\"")),
                "the caught panic is reported"
            );
        }
    }
}

/// The CI gate: a degraded run (a branch lost even to the serial retry)
/// must never claim exhaustive unsolvability — the verdict downgrades to
/// `Exhausted`, and the degradation is visible in the stats.
#[test]
fn a_degraded_run_never_reports_unsolvable() {
    let _guard = lock();
    let (t, domain) = golden(false);
    let serial = find_carried_map_with_config(&t, &domain, &SearchConfig::serial(1_000_000)).0;
    assert!(
        matches!(serial, SearchResult::Unsolvable),
        "the healthy baseline is exactly Unsolvable"
    );

    let mut any_degraded = false;
    for branch in 0..4 {
        let (result, stats) = with_quiet_panics(|| {
            chaos::panic_always_on_branch(branch);
            find_carried_map_with_config(
                &t,
                &domain,
                &SearchConfig::serial(1_000_000).with_threads(3),
            )
        });
        if stats.degraded {
            any_degraded = true;
            assert!(
                matches!(result, SearchResult::Exhausted),
                "branch {branch}: a lost subtree downgrades Unsolvable to Exhausted, got {}",
                result.verdict_name()
            );
        } else {
            // The armed branch was never fanned out to; the verdict must
            // then be the clean one.
            assert!(matches!(result, SearchResult::Unsolvable));
        }
    }
    assert!(
        any_degraded,
        "at least one armed branch must actually degrade the run"
    );
}

/// The chaos hook lives in the parallel fan-out only: a fully serial
/// search is never touched, even while armed.
#[test]
fn armed_chaos_hooks_never_touch_the_serial_engine() {
    let _guard = lock();
    let (t, domain) = golden(true);
    let (result, stats) = with_quiet_panics(|| {
        chaos::panic_always_on_branch(0);
        find_carried_map_with_config(&t, &domain, &SearchConfig::serial(1_000_000))
    });
    assert_eq!(stats.caught_panics, 0);
    assert!(!stats.degraded);
    let map = result.into_map().expect("the serial engine is unharmed");
    assert!(verify_carried_map(&t, &domain, &map));
}

/// An expired wall-clock deadline yields `TimedOut` — a verdict distinct
/// from `Exhausted` (budget) — and emits `engine.deadline`, on both the
/// serial and the parallel engine.
#[test]
fn an_expired_deadline_reports_timed_out_not_exhausted() {
    let _guard = lock();
    let (t, domain) = golden(true);
    for threads in [1usize, 3] {
        let sink = act_obs::MemorySink::shared();
        act_obs::install(sink.clone());
        let config = SearchConfig::serial(1_000_000)
            .with_threads(threads)
            .with_deadline(Duration::ZERO);
        let (result, _) = find_carried_map_with_config(&t, &domain, &config);
        act_obs::uninstall();
        assert!(
            matches!(result, SearchResult::TimedOut),
            "threads={threads}: got {}",
            result.verdict_name()
        );
        let lines = sink.drain();
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"ev\":\"engine.deadline\"")),
            "threads={threads}: the watchdog reports itself"
        );
    }
}

/// Fault-injected adversarial runs stay fair-adversary-consistent: with
/// a generous step bound every correct process terminates despite the
/// plan, for a whole matrix of seeds.
#[test]
fn seeded_fault_plans_preserve_liveness_under_generous_bounds() {
    let _guard = lock();
    // No artifact env var: a liveness failure here would be a test bug,
    // not something to capture.
    std::env::remove_var("ACT_OBS_ARTIFACTS");
    let a = Adversary::t_resilient(3, 1);
    let alpha = AgreementFunction::of_adversary(&a);
    let full = ColorSet::full(3);
    let correct = ColorSet::from_indices([0, 1]);
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(seed, 3, 40);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        let (outcome, report) =
            run_adversarial_with_faults(&mut sys, full, correct, &mut rng, |_| 1, 500_000, &plan);
        assert!(
            outcome.all_correct_terminated,
            "seed {seed}: injected faults must not break liveness (report: {report:?})"
        );
        // The same seed is exactly reproducible.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        let (again, report_again) =
            run_adversarial_with_faults(&mut sys, full, correct, &mut rng, |_| 1, 500_000, &plan);
        assert_eq!(outcome, again, "seed {seed}: injection is deterministic");
        assert_eq!(report, report_again);
    }
}

/// The replay acceptance criterion: every failing fault injection is
/// captured as an artifact that replays to the *identical* `RunOutcome`
/// — 100% of captured artifacts, across a seed matrix.
#[test]
fn every_captured_fault_artifact_replays_to_the_identical_outcome() {
    let _guard = lock();
    let dir = std::env::temp_dir().join(format!("act-chaos-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("ACT_OBS_ARTIFACTS", &dir);

    let a = Adversary::t_resilient(3, 1);
    let alpha = AgreementFunction::of_adversary(&a);
    let full = ColorSet::full(3);
    let mut outcomes = Vec::new();
    for seed in 0..12u64 {
        let plan = FaultPlan::seeded(seed, 3, 10);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        // A starvation-tight step bound forces a liveness failure, so
        // every seed captures exactly one artifact.
        let (outcome, _) =
            run_adversarial_with_faults(&mut sys, full, full, &mut rng, |_| 0, 2, &plan);
        assert!(!outcome.all_correct_terminated, "2 steps must not suffice");
        outcomes.push((plan, outcome));
    }
    std::env::remove_var("ACT_OBS_ARTIFACTS");

    // Artifact ids are process-monotonic: sorting by the numeric suffix
    // pairs each artifact with its run.
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("artifact directory created")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort_by_key(|p| {
        p.file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.rsplit('-').next())
            .and_then(|s| s.parse::<u64>().ok())
            .expect("fault artifact filenames end in a numeric id")
    });
    assert_eq!(entries.len(), outcomes.len(), "one artifact per failure");

    for (path, (plan, outcome)) in entries.iter().zip(&outcomes) {
        let artifact = TraceArtifact::load(path).expect("artifact loads");
        assert_eq!(artifact.reason, "fault-liveness-failure");
        assert_eq!(
            artifact.trace.fault_plan.as_ref(),
            Some(plan),
            "the plan is recorded for provenance"
        );
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        let replayed = artifact
            .trace
            .replay_outcome(&mut sys)
            .expect("captured schedules are in range");
        assert_eq!(
            &replayed, outcome,
            "{path:?}: replay reproduces the outcome field for field"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `fault.injected` telemetry makes every applied fault visible.
#[test]
fn applied_faults_are_reported_as_events() {
    let _guard = lock();
    let sink = act_obs::MemorySink::shared();
    act_obs::install(sink.clone());
    let a = Adversary::t_resilient(3, 1);
    let alpha = AgreementFunction::of_adversary(&a);
    let full = ColorSet::full(3);
    let correct = ColorSet::from_indices([0, 1]);
    // One event of each kind, all guaranteed to fire early in the run.
    let plan = FaultPlan {
        seed: 0,
        events: vec![
            act_runtime::FaultEvent::Crash {
                step: 0,
                process: 2,
            },
            act_runtime::FaultEvent::Stall {
                process: 1,
                from_step: 0,
                duration: 2,
            },
            act_runtime::FaultEvent::Perturb { step: 1, offset: 1 },
        ],
    };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let mut sys = AlgorithmOneSystem::new(&alpha, full);
    let (outcome, report) =
        run_adversarial_with_faults(&mut sys, full, correct, &mut rng, |_| 1, 500_000, &plan);
    act_obs::uninstall();
    assert!(outcome.all_correct_terminated);
    assert!(report.any_applied());
    let lines = sink.drain();
    let injected: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"fault.injected\""))
        .collect();
    assert!(!injected.is_empty(), "applied faults emit events");
    assert!(injected.iter().any(|l| l.contains("\"kind\":\"crash\"")));
}
