//! Exhaustive validation of the paper's combinatorial lemmas over
//! 3-process systems and a portfolio of fair models:
//!
//! * Lemma 3 / Corollary 4 — distribution of critical simplices;
//! * Lemma 11 — equal agreement power ⇒ equal critical view;
//! * Properties 9, 10, 12 — validity, agreement and robustness of `µ_Q`.

use act_adversary::{csize_of_sets, zoo, Adversary, AgreementFunction};
use act_affine::{fair_affine_task, CriticalAnalysis};
use act_topology::{ColorSet, Complex, Simplex};
use fact::LeaderMap;

fn models() -> Vec<(String, AgreementFunction)> {
    let mut out: Vec<(String, AgreementFunction)> = vec![
        ("1-OF".into(), AgreementFunction::k_concurrency(3, 1)),
        ("2-OF".into(), AgreementFunction::k_concurrency(3, 2)),
        (
            "wait-free".into(),
            AgreementFunction::of_adversary(&Adversary::wait_free(3)),
        ),
        (
            "1-res".into(),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
        ),
        (
            "0-res".into(),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 0)),
        ),
        (
            "fig5b".into(),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
        ),
    ];
    // Plus every fair adversary over 3 processes with at least one run.
    for (i, a) in zoo::all_fair_adversaries(3).into_iter().enumerate() {
        if a.setcon() >= 1 {
            out.push((format!("fair#{i}"), AgreementFunction::of_adversary(&a)));
        }
    }
    out
}

/// All simplices σ ∈ Chr s with χ(σ) = χ(carrier(σ, s)) — the premise of
/// Lemma 3.
fn full_color_simplices(chr: &Complex) -> Vec<Simplex> {
    let mut out = std::collections::BTreeSet::new();
    for facet in chr.facets() {
        for face in facet.non_empty_faces() {
            if chr.colors(&face) == chr.carrier_colors(&face) {
                out.insert(face);
            }
        }
    }
    out.into_iter().collect()
}

#[test]
fn lemma_3_distribution_of_critical_simplices() {
    let chr = Complex::standard(3).chromatic_subdivision();
    let sigmas = full_color_simplices(&chr);
    for (name, alpha) in models() {
        let mut crit = CriticalAnalysis::new(&chr, &alpha);
        for sigma in &sigmas {
            let power = alpha.alpha(chr.colors(sigma));
            for level in 1..=3usize {
                let witnesses: Vec<ColorSet> = crit
                    .critical_at_least(sigma, level)
                    .iter()
                    .map(|t| chr.colors(t))
                    .collect();
                let hitting = csize_of_sets(&witnesses);
                let bound = (power + 1).saturating_sub(level);
                assert!(
                    hitting >= bound,
                    "Lemma 3 violated for {name}: σ = {sigma:?}, l = {level}: \
                     csize {hitting} < bound {bound}"
                );
            }
        }
    }
}

#[test]
fn corollary_4_partial_participation() {
    let chr = Complex::standard(3).chromatic_subdivision();
    // All simplices, including those whose colors miss part of the carrier.
    let mut all = std::collections::BTreeSet::new();
    for facet in chr.facets() {
        for face in facet.non_empty_faces() {
            all.insert(face);
        }
    }
    for (name, alpha) in models().into_iter().take(10) {
        let mut crit = CriticalAnalysis::new(&chr, &alpha);
        for sigma in &all {
            let carrier = chr.carrier_colors(sigma);
            let missing = carrier.minus(chr.colors(sigma)).len();
            let power = alpha.alpha(carrier);
            for level in 1..=3usize {
                let witnesses: Vec<ColorSet> = crit
                    .critical_at_least(sigma, level)
                    .iter()
                    .map(|t| chr.colors(t))
                    .collect();
                let hitting = csize_of_sets(&witnesses);
                let bound = (power + 1).saturating_sub(level + missing);
                assert!(
                    hitting >= bound,
                    "Corollary 4 violated for {name}: σ = {sigma:?}, l = {level}"
                );
            }
        }
    }
}

#[test]
fn lemma_11_unique_view_per_power() {
    let chr = Complex::standard(3).chromatic_subdivision();
    for (name, alpha) in models() {
        let mut crit = CriticalAnalysis::new(&chr, &alpha);
        for facet in chr.facets() {
            for face in facet.non_empty_faces() {
                let info = crit.analyze(&face).clone();
                for a in &info.critical {
                    for b in &info.critical {
                        let pa = alpha.alpha(chr.carrier_colors(a));
                        let pb = alpha.alpha(chr.carrier_colors(b));
                        if pa == pb {
                            assert_eq!(
                                chr.carrier_colors(a),
                                chr.carrier_colors(b),
                                "Lemma 11 violated for {name}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn properties_9_10_12_exhaustive() {
    // Exhaustive over every facet of R_A, every coalition Q and every
    // sub-simplex, for the named models (the bench re-runs this over the
    // full fair-adversary census).
    let named: Vec<(String, AgreementFunction)> = models().into_iter().take(6).collect();
    let full = ColorSet::full(3);
    for (name, alpha) in named {
        if alpha.alpha(full) == 0 {
            continue;
        }
        let r = fair_affine_task(&alpha);
        let lm = LeaderMap::new(r.complex(), &alpha);
        for facet in r.complex().facets() {
            for q in full.non_empty_subsets() {
                let theta = facet.filter(|v| q.contains(r.complex().color(v)));
                for sub in theta.non_empty_faces() {
                    let mut leaders = ColorSet::EMPTY;
                    for &v in sub.vertices() {
                        let leader = lm.mu_q(v, q);
                        // Property 9.
                        assert!(q.contains(leader), "{name}: leader ∉ Q");
                        assert!(
                            r.complex().base_colors_of_vertex(v).contains(leader),
                            "{name}: leader unobserved"
                        );
                        // Property 12.
                        let seen = r.complex().base_colors_of_vertex(v);
                        assert_eq!(
                            leader,
                            lm.mu_q(v, q.intersection(seen)),
                            "{name}: robustness violated"
                        );
                        leaders = leaders.with(leader);
                    }
                    // Property 10.
                    let carrier = r.complex().carrier_colors(&sub);
                    assert!(
                        leaders.len() <= alpha.alpha(carrier),
                        "{name}: agreement violated ({} leaders, α = {})",
                        leaders.len(),
                        alpha.alpha(carrier)
                    );
                }
            }
        }
    }
}

#[test]
fn fair_adversaries_have_bounded_decrease() {
    // The liveness proof leans on α(P \ Q) ≥ α(P) − |Q| (Section 5.3).
    for a in zoo::all_fair_adversaries(3) {
        let alpha = AgreementFunction::of_adversary(&a);
        assert!(alpha.has_bounded_decrease(), "bounded decrease for {a}");
        alpha.validate().unwrap();
    }
}
