//! Golden-count regression suite: locks every deterministic count behind
//! the figures and tables of EXPERIMENTS.md, so any change to the
//! subdivision/affine-task engine that perturbs a figure fails
//! immediately — and fails here, with the figure's name on it, rather
//! than deep inside a theorem validation.
//!
//! All counts are cross-checked against EXPERIMENTS.md; update both
//! together (and only with an argument for why the figure changed).

use act_adversary::{zoo, Adversary, AgreementFunction};
use act_affine::{contention_complex, fair_affine_task, k_obstruction_free_task, t_resilient_task};
use act_topology::{fubini, Complex};

/// Figure 1a: `Chr s` facet counts follow the Fubini numbers 1, 3, 13,
/// 75, 541 for n = 1..=5, and the triangle's f-vector is [12, 24, 13].
#[test]
fn golden_chr_facet_counts_are_fubini() {
    let expected = [1usize, 3, 13, 75, 541];
    for (n, &count) in (1..=5).zip(expected.iter()) {
        let chr = Complex::standard(n).chromatic_subdivision();
        assert_eq!(chr.facet_count(), count, "Chr s, n = {n}");
        assert_eq!(chr.facet_count() as u64, fubini(n), "Fubini({n})");
    }
    let chr3 = Complex::standard(3).chromatic_subdivision();
    assert_eq!(chr3.f_vector(), vec![12, 24, 13], "Figure 1a f-vector");
}

/// `Chr² s` at n = 3: 169 = 13² facets (the home of every affine task in
/// the paper).
#[test]
fn golden_chr2_facet_count() {
    let chr2 = Complex::standard(3).iterated_subdivision(2);
    assert_eq!(chr2.facet_count(), 169);
}

/// Figure 1b: `R_{1-res}` keeps 142 of the 169 facets.
#[test]
fn golden_one_resilient_task() {
    assert_eq!(t_resilient_task(3, 1).complex().facet_count(), 142);
}

/// Figure 7a: `R_{1-OF}` (Definition 6) has 73 facets.
#[test]
fn golden_one_obstruction_free_task() {
    assert_eq!(k_obstruction_free_task(3, 1).complex().facet_count(), 73);
}

/// Figure 7b: `R_A` of the Figure-5b adversary has 145 facets.
#[test]
fn golden_figure_5b_affine_task() {
    let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
    assert_eq!(fair_affine_task(&alpha).complex().facet_count(), 145);
}

/// Figure 4c: the 2-contention complex `Cont²` has 99 maximal contention
/// simplices, of dimension 2.
#[test]
fn golden_contention_complex() {
    let chr2 = Complex::standard(3).iterated_subdivision(2);
    let cont = contention_complex(&chr2);
    assert_eq!(cont.facet_count(), 99);
    assert_eq!(cont.dim(), 2);
}

/// Figure 2: the census of all 128 adversaries over 3 processes — 44
/// fair, 8 symmetric, 19 superset-closed, 84 unfair.
#[test]
fn golden_adversary_census() {
    let all = zoo::all_adversaries(3);
    assert_eq!(all.len(), 128);
    let fair = all.iter().filter(|a| a.is_fair()).count();
    let symmetric = all.iter().filter(|a| a.is_symmetric()).count();
    let superset_closed = all.iter().filter(|a| a.is_superset_closed()).count();
    assert_eq!(fair, 44);
    assert_eq!(symmetric, 8);
    assert_eq!(superset_closed, 19);
    assert_eq!(all.len() - fair, 84);
    assert_eq!(zoo::all_fair_adversaries(3).len(), 44);
}

/// The Def 9 vs Def 6 table of EXPERIMENTS.md at n = 3: facet counts of
/// `R_A` (union side condition) against `R_{k-OF}` for every k.
#[test]
fn golden_def9_vs_def6_table_n3() {
    let expected = [(1usize, 73usize, 73usize), (2, 142, 163), (3, 169, 169)];
    for &(k, def9, def6) in &expected {
        let alpha = AgreementFunction::k_concurrency(3, k);
        assert_eq!(
            fair_affine_task(&alpha).complex().facet_count(),
            def9,
            "R_A, n = 3, k = {k}"
        );
        assert_eq!(
            k_obstruction_free_task(3, k).complex().facet_count(),
            def6,
            "R_k-OF, n = 3, k = {k}"
        );
    }
}

/// The Def 9 vs Def 6 table of EXPERIMENTS.md at n = 4 (the slow rows:
/// each side filters the 5 625 facets of `Chr² s`).
#[test]
fn golden_def9_vs_def6_table_n4() {
    let expected = [
        (1usize, 1015usize, 1015usize),
        (2, 3587, 4773),
        (3, 4949, 5601),
    ];
    for &(k, def9, def6) in &expected {
        let alpha = AgreementFunction::k_concurrency(4, k);
        assert_eq!(
            fair_affine_task(&alpha).complex().facet_count(),
            def9,
            "R_A, n = 4, k = {k}"
        );
        assert_eq!(
            k_obstruction_free_task(4, k).complex().facet_count(),
            def6,
            "R_k-OF, n = 4, k = {k}"
        );
    }
}

/// `R_A` on t-resilient adversaries coincides with `R_{t-res}`, and the
/// wait-free `R_A` is all of `Chr² s` (the remaining named counts of the
/// figures).
#[test]
fn golden_t_resilient_and_wait_free_counts() {
    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
    assert_eq!(fair_affine_task(&alpha).complex().facet_count(), 142);
    let wait_free = AgreementFunction::of_adversary(&Adversary::wait_free(3));
    assert_eq!(fair_affine_task(&wait_free).complex().facet_count(), 169);
}

/// Symmetry quotients of the figure complexes: the facets of `Chr s` are
/// the ordered set partitions of `n` colors (Fubini numbers), and their
/// `S_n`-orbits are the *compositions* of `n` — `2^(n-1)` of them. Orbit
/// sizes must sum back to the golden facet counts, which is exactly the
/// bookkeeping the orbit-shared expansion and the quotiented `R_A` census
/// rely on.
#[test]
fn golden_chr_orbit_census_sums_to_fubini() {
    use act_topology::{symmetry_group, LabelMatching};
    for n in 2..=5usize {
        let chr = Complex::standard(n).chromatic_subdivision();
        let group = symmetry_group(&chr, LabelMatching::Strict);
        assert_eq!(group.order(), (1..=n).product::<usize>(), "S_{n} acts");
        let orbits = group.orbits_of_facets();
        assert_eq!(orbits.len(), 1 << (n - 1), "compositions of {n}");
        let total: usize = orbits.iter().map(|o| o.orbit_size()).sum();
        assert_eq!(total as u64, fubini(n), "orbit sizes sum to Fubini({n})");
    }
}

/// The symmetry-quotiented `R_A` census agrees with the direct build
/// where the direct build is feasible (n = 3, 4), and pins the
/// previously-unreachable n = 5 point: `R_{4-conc}` has 264 556 facets
/// inside the 292 681-facet `Chr² s`, computed from only 16 orbit
/// representatives.
#[test]
fn golden_quotiented_r_a_census() {
    use act_affine::fair_census_quotiented;
    for n in 3..=4usize {
        let alpha = AgreementFunction::k_concurrency(n, n - 1);
        let census = fair_census_quotiented(&alpha).expect("k-concurrency is color-symmetric");
        assert_eq!(
            census.facet_count,
            fair_affine_task(&alpha).complex().facet_count(),
            "quotient ≡ direct, n = {n}"
        );
        assert_eq!(census.orbit_count, 1 << (n - 1), "compositions of {n}");
    }
    let n5 = fair_census_quotiented(&AgreementFunction::k_concurrency(5, 4))
        .expect("k-concurrency is color-symmetric");
    assert_eq!(n5.facet_count, 264_556, "R_4-conc, n = 5");
    assert_eq!(n5.orbit_count, 16, "compositions of 5");
    assert_eq!(n5.chr2_facet_count, 292_681, "541² = Fubini(5)²");
}
