//! Structural laws of affine tasks, checked across the fair-adversary
//! census: carrier-map monotonicity of `Δ`, recipe/`Δ` consistency,
//! purity and chromaticity of `R_A`, and iteration coherence.

use act_adversary::{zoo, AgreementFunction};
use act_affine::{fair_affine_task, AffineTask};
use act_topology::ColorSet;

fn census_tasks() -> Vec<AffineTask> {
    zoo::all_fair_adversaries(3)
        .into_iter()
        .filter(|a| a.setcon() >= 1)
        .map(|a| fair_affine_task(&AgreementFunction::of_adversary(&a)))
        .collect()
}

#[test]
fn r_a_is_always_a_valid_affine_task() {
    for task in census_tasks() {
        let c = task.complex();
        assert!(c.is_pure(), "{}: pure", task.name());
        assert!(c.is_chromatic(), "{}: chromatic", task.name());
        assert_eq!(c.dim(), 2, "{}: full dimension", task.name());
        assert!(!c.is_void(), "{}: non-empty", task.name());
    }
}

#[test]
fn delta_is_a_carrier_map() {
    // Δ(t') ⊆ Δ(t) whenever t' ⊆ t: every simplex of the smaller
    // restriction appears in the larger one.
    let full = ColorSet::full(3);
    for task in census_tasks().into_iter().take(12) {
        for c_small in full.non_empty_subsets() {
            for c_big in full.non_empty_subsets() {
                if !c_small.is_subset_of(c_big) || c_small == c_big {
                    continue;
                }
                let small = task.delta(c_small);
                let big = task.delta(c_big);
                for facet in small.facets() {
                    assert!(
                        big.contains_simplex(facet),
                        "{}: Δ({c_small}) ⊄ Δ({c_big})",
                        task.name()
                    );
                }
            }
        }
    }
}

#[test]
fn recipes_agree_with_delta_facets() {
    // Every recipe over C resolves to a simplex of Δ(C) with all of C's
    // colors; conversely every full-dimensional facet of Δ(C) with colors
    // exactly C arises from a recipe.
    let full = ColorSet::full(3);
    for task in census_tasks().into_iter().take(12) {
        for c in full.non_empty_subsets() {
            let recipes = task.recipes(c);
            let delta = task.delta(c);
            let full_facets: Vec<_> = delta
                .facets()
                .iter()
                .filter(|f| delta.colors(f) == c)
                .cloned()
                .collect();
            assert_eq!(
                recipes.len(),
                full_facets.len(),
                "{}: recipe count vs Δ({c}) full facets",
                task.name()
            );
        }
    }
}

#[test]
fn wait_free_restrictions_are_never_empty_but_others_may_be() {
    // For the wait-free model every participation has runs; for weaker
    // models small participations may have to wait ("participation must
    // increase before outputs are produced").
    let full = ColorSet::full(3);
    let wait_free = fair_affine_task(&AgreementFunction::k_concurrency(3, 3));
    for c in full.non_empty_subsets() {
        assert!(!wait_free.recipes(c).is_empty());
    }
    let one_res = fair_affine_task(&AgreementFunction::of_adversary(
        &act_adversary::Adversary::t_resilient(3, 1),
    ));
    let solo = ColorSet::from_indices([0]);
    assert!(
        one_res.recipes(solo).is_empty(),
        "a solo process has no 1-resilient runs"
    );
    assert!(one_res.delta(solo).is_void());
}

#[test]
fn iteration_is_coherent_with_application() {
    // L.iterate(2) equals L applied to L.iterate(1).
    let task = fair_affine_task(&AgreementFunction::k_concurrency(2, 1));
    let l1 = task.iterate(1);
    let l2 = task.iterate(2);
    let l2b = task.apply_to(&l1);
    assert_eq!(l2.facet_count(), l2b.facet_count());
    assert!(l2.same_complex(&l2b));
}

#[test]
fn iterated_task_facet_count_multiplies_for_full_recipes() {
    // Each facet of L^m spawns |recipes(Π)| facets in L^{m+1} (full
    // participation), so the counts multiply exactly.
    let task = fair_affine_task(&AgreementFunction::k_concurrency(2, 1));
    let r = task.recipes(ColorSet::full(2)).len();
    let l1 = task.iterate(1);
    let l2 = task.iterate(2);
    assert_eq!(l1.facet_count(), r);
    assert_eq!(l2.facet_count(), r * r);
}

#[test]
fn census_facet_count_statistics() {
    // Record the spread of |R_A| across the census: bounded by |Chr² s|
    // and bounded below by the weakest non-trivial model's task.
    let counts: Vec<usize> = census_tasks()
        .iter()
        .map(|t| t.complex().facet_count())
        .collect();
    let min = counts.iter().min().unwrap();
    let max = counts.iter().max().unwrap();
    assert!(*min >= 1);
    assert!(*max <= 169);
    assert!(counts.contains(&169), "wait-free is in the census");
}

/// Orbit-shared application is byte-identical to direct application even
/// when the inputs' labels are tied to colors (rainbow set-consensus
/// inputs, where process `i` holds value `i`). Pure color permutations do
/// not preserve such a complex — the blind symmetry group is trivial —
/// and only the *inferred* diagonal color-and-label action lets the
/// orbit-shared build transport instead of falling back to a direct
/// expansion. This pins the mechanism and the exactness of its output.
#[test]
fn orbit_shared_application_is_byte_identical_on_rainbow_inputs() {
    use act_adversary::Adversary;
    use act_tasks::SetConsensus;
    use act_topology::{symmetry_group, symmetry_group_inferred, LabelMatching};

    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
    let r_a = fair_affine_task(&alpha);
    let inputs = SetConsensus::new(3, 2, &[0, 1, 2]).rainbow_inputs();
    let level1 = r_a.apply_to(&inputs);

    // The mechanism: blind matching sees nothing, inference recovers the
    // full diagonal S_3.
    assert_eq!(symmetry_group(&level1, LabelMatching::Blind).order(), 1);
    assert_eq!(symmetry_group_inferred(&level1).order(), 6);

    // The law: transported and direct builds are byte-identical (same
    // vertex tables, ids, and facet order — not merely isomorphic).
    assert_eq!(r_a.apply_to_shared(&level1), r_a.apply_to(&level1));
    assert_eq!(r_a.apply_to_shared(&inputs), r_a.apply_to(&inputs));
}
