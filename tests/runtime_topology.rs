//! Integration between the executable runtime and the combinatorial
//! topology: executed runs land exactly where the theory says they do.

use act_runtime::{
    explore_schedules, facet_of_run, osp_from_views, run_adversarial, run_iis_with_bg, IsSystem,
};
use act_topology::{ordered_set_partitions, ColorSet, Complex, ProcessId};
use rand::SeedableRng;

#[test]
fn executed_single_is_rounds_realize_every_chr_facet() {
    // Random schedules of the Borowsky–Gafni protocol eventually realize
    // all 13 facets of Chr s (n = 3).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let chr = Complex::standard(3).chromatic_subdivision();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..400 {
        let rounds = run_iis_with_bg(3, ColorSet::full(3), 1, &mut rng);
        let facet = facet_of_run(&chr, &rounds).expect("Chr s contains every IS run");
        seen.insert(facet);
    }
    assert_eq!(seen.len(), 13, "all OSPs are realizable by real schedules");
}

#[test]
fn executed_double_rounds_land_in_chr2() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
    let chr2 = Complex::standard(3).iterated_subdivision(2);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..300 {
        let rounds = run_iis_with_bg(3, ColorSet::full(3), 2, &mut rng);
        let facet = facet_of_run(&chr2, &rounds).unwrap();
        assert!(chr2.contains_simplex(&facet));
        seen.insert(facet);
    }
    assert!(
        seen.len() > 50,
        "many distinct Chr² facets realized: {}",
        seen.len()
    );
}

#[test]
fn exhaustive_two_process_schedules_realize_exactly_chr() {
    // Bounded exhaustive exploration of the 2-process BG protocol yields
    // exactly the 3 OSPs — no more (safety), no fewer (completeness).
    let participants = ColorSet::full(2);
    let mut osps = std::collections::BTreeSet::new();
    explore_schedules(
        || IsSystem::new(vec![Some(0u8), Some(1u8)]),
        participants,
        participants,
        40,
        1_000_000,
        |sys, outcome| {
            assert!(outcome.all_correct_terminated);
            let views: Vec<(ProcessId, ColorSet)> = sys
                .views()
                .iter()
                .enumerate()
                .map(|(i, v)| (ProcessId::new(i), v.unwrap()))
                .collect();
            osps.insert(osp_from_views(&views));
        },
    );
    let expected: std::collections::BTreeSet<_> =
        ordered_set_partitions(participants).into_iter().collect();
    assert_eq!(osps, expected);
}

#[test]
fn partial_participation_realizes_faces() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let chr = Complex::standard(4).chromatic_subdivision();
    for participants in [
        ColorSet::from_indices([0, 2]),
        ColorSet::from_indices([1, 2, 3]),
        ColorSet::from_indices([3]),
    ] {
        let rounds = run_iis_with_bg(4, participants, 1, &mut rng);
        let sx = facet_of_run(&chr, &rounds).unwrap();
        assert_eq!(chr.colors(&sx), participants);
        assert_eq!(chr.carrier_colors(&sx), participants);
    }
}

#[test]
fn crashed_processes_shrink_realized_simplices() {
    // A participant that crashes mid-protocol leaves a lower-dimensional
    // decided simplex; the correct processes' views still form a simplex
    // of Chr s.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(10);
    let chr = Complex::standard(3).chromatic_subdivision();
    for budget in 0..4 {
        let mut sys = IsSystem::new(vec![Some(0u8), Some(1), Some(2)]);
        let participants = ColorSet::full(3);
        let correct = ColorSet::from_indices([0, 1]);
        let outcome = run_adversarial(
            &mut sys,
            participants,
            correct,
            &mut rng,
            |_| budget,
            100_000,
        );
        assert!(outcome.all_correct_terminated);
        let views: Vec<(ProcessId, ColorSet)> = sys
            .views()
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|view| (ProcessId::new(i), view)))
            .collect();
        assert!(views.len() >= 2);
        // Resolve the decided sub-simplex through the OSP of decided views
        // only when they form a proper IS pattern including crashed
        // processes' influence; at minimum, containment must hold.
        for &(_, v1) in &views {
            for &(_, v2) in &views {
                assert!(v1.is_subset_of(v2) || v2.is_subset_of(v1));
            }
        }
        let _ = &chr;
    }
}
