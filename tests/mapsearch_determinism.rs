//! Determinism of the parallel map-search engine: for every thread
//! count the engine must return the same verdict as the serial search —
//! and a valid witness whenever that verdict is `Found` — and pooled
//! budgets must never turn an exact `Unsolvable` into `Exhausted`.

use act_tasks::{
    consensus, find_carried_map_with_config, verify_carried_map, SearchConfig, SetConsensus, Task,
};
use act_topology::{Complex, Simplex};
use proptest::prelude::*;

/// The thread counts CI exercises via `RAYON_NUM_THREADS`; here they are
/// pinned per search through [`SearchConfig::with_threads`] so the cases
/// don't race on the process environment.
const THREADS: [usize; 3] = [1, 2, 4];

/// A non-empty sub-complex of the task's inputs selected by a bitmask
/// over its facets, subdivided `depth` times.
fn masked_domain(task: &dyn Task, mask: u32, depth: usize) -> Complex {
    let i = task.inputs();
    let chosen: Vec<Simplex> = i
        .facets()
        .iter()
        .enumerate()
        .filter(|(idx, _)| mask & (1 << (idx % 16)) != 0)
        .map(|(_, f)| f.clone())
        .collect();
    let sub = if chosen.is_empty() {
        i.clone()
    } else {
        i.sub_complex(chosen)
    };
    sub.iterated_subdivision(depth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random 2-process (k-)set-consensus instances over random value
    /// sets, input restrictions and depths: every thread count agrees
    /// with the serial engine's verdict, and every `Found` comes with an
    /// independently verified witness.
    #[test]
    fn parallel_verdicts_match_serial(
        k in 1usize..=2,
        values in proptest::collection::btree_set(0u64..4, 2..=3),
        mask in 1u32..=0xffff,
        depth in 1usize..=2,
    ) {
        let mut values: Vec<u64> = values.into_iter().collect();
        if values.len() < 2 {
            values = vec![0, 1];
        }
        // k-set consensus needs more than k distinct values.
        let k = k.min(values.len() - 1);
        let t = SetConsensus::new(2, k, &values);
        let domain = masked_domain(&t, mask, depth);

        let serial = SearchConfig::serial(500_000);
        let (baseline, base_stats) = find_carried_map_with_config(&t, &domain, &serial);
        prop_assert_eq!(base_stats.workers, 1);
        if let Some(map) = baseline.clone().into_map() {
            prop_assert!(verify_carried_map(&t, &domain, &map));
        }

        for threads in THREADS {
            let config = serial.with_threads(threads);
            let (result, stats) = find_carried_map_with_config(&t, &domain, &config);
            prop_assert!(
                result.verdict_name() == baseline.verdict_name(),
                "threads = {} changed the verdict: {} vs {}",
                threads,
                result.verdict_name(),
                baseline.verdict_name()
            );
            prop_assert!(stats.workers >= 1 && stats.workers <= threads);
            if let Some(map) = result.into_map() {
                prop_assert!(
                    verify_carried_map(&t, &domain, &map),
                    "threads = {} returned an invalid witness",
                    threads
                );
            }
        }
    }
}

/// The golden unsolvable cases of the test suite: exact `Unsolvable`
/// verdicts must survive the pooled budget at every thread count — a
/// worker running out of budget would degrade them to `Exhausted`.
#[test]
fn golden_unsolvable_cases_never_degrade_to_exhausted() {
    // 2-process consensus at depths 1 and 2 (FLP), budget 1M.
    let t = consensus(2, &[0, 1]);
    for depth in 1..=2 {
        let domain = t.inputs().iterated_subdivision(depth);
        for threads in THREADS {
            let config = SearchConfig::serial(1_000_000).with_threads(threads);
            let (result, stats) = find_carried_map_with_config(&t, &domain, &config);
            assert!(
                result.is_unsolvable(),
                "consensus depth {depth} threads {threads}: got {}",
                result.verdict_name()
            );
            assert!(stats.budget_remaining > 0, "the pool was never emptied");
        }
    }

    // 3-process consensus on the rainbow input facet, one round.
    let t = consensus(3, &[0, 1, 2]);
    let i = t.inputs();
    let rainbow = i
        .facets()
        .iter()
        .find(|f| {
            let mut vals: Vec<u64> = f.vertices().iter().map(|&v| i.vertex(v).label).collect();
            vals.sort_unstable();
            vals == vec![0, 1, 2]
        })
        .expect("rainbow facet exists")
        .clone();
    let domain = i.sub_complex(vec![rainbow]).iterated_subdivision(1);
    for threads in THREADS {
        let config = SearchConfig::serial(1_000_000).with_threads(threads);
        let (result, _) = find_carried_map_with_config(&t, &domain, &config);
        assert!(
            result.is_unsolvable(),
            "3-process rainbow consensus threads {threads}: got {}",
            result.verdict_name()
        );
    }
}

/// A branching solvable instance (the bench's reference case): all
/// thread counts find *some* valid witness, and the serial engine's
/// witness is reproducible run to run.
#[test]
fn solvable_searches_are_reproducible_and_always_verified() {
    let t = SetConsensus::new(2, 2, &[0, 1, 2]);
    let domain = t.inputs().iterated_subdivision(1);

    let serial = SearchConfig::serial(100_000);
    let first = find_carried_map_with_config(&t, &domain, &serial)
        .0
        .into_map()
        .expect("solvable");
    let second = find_carried_map_with_config(&t, &domain, &serial)
        .0
        .into_map()
        .expect("solvable");
    assert_eq!(first, second, "the serial engine is deterministic");

    for threads in THREADS {
        let config = serial.with_threads(threads);
        let map = find_carried_map_with_config(&t, &domain, &config)
            .0
            .into_map()
            .unwrap_or_else(|| panic!("solvable at {threads} threads"));
        assert!(verify_carried_map(&t, &domain, &map));
    }
}
