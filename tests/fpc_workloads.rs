//! The FPC workload family end to end: acceptance-level determinism
//! (identical seed + config ⇒ identical finalization statistics and
//! checkpoint fingerprints, for any worker count), summary-cache
//! parity with the raw engine, and campaign resume over the FPC run
//! family.

use act_campaign::{CampaignConfig, Scope, INVARIANT_FPC_REPLAY};
use act_fpc::{run_stats, simulate_run, FpcSpec};
use act_service::{summary_key, FpcCache};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fact-fpcwl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fpc_config(spec: &str, samples: u64, workers: usize) -> CampaignConfig {
    let mut config = CampaignConfig::new(spec);
    config.scope = Scope::Sampled { samples };
    config.seed = 0xFAC7;
    config.workers = workers;
    config.batch = 64;
    config
}

#[test]
fn finalization_statistics_are_a_pure_function_of_spec_runs_seed() {
    let spec = FpcSpec::parse("fpc:24:6:cautious:8:600").unwrap();
    let a = run_stats(&spec, 400, 99);
    let b = run_stats(&spec, 400, 99);
    assert_eq!(a, b, "identical inputs, identical statistics");
    // Every field the acceptance gate cares about is populated.
    assert_eq!(a.runs, 400);
    assert!(a.rounds_p50 > 0 && a.rounds_p50 <= a.rounds_p99);
    assert!(a.rounds_p99 <= a.rounds_max);
    assert!(!a.fingerprint.is_empty());
    // Different seeds genuinely sample different trajectories.
    let c = run_stats(&spec, 400, 100);
    assert_ne!(a.fingerprint, c.fingerprint);
}

#[test]
fn summary_cache_answers_match_the_engine_bit_for_bit() {
    let spec = FpcSpec::parse("fpc:16:4:fixed-split:10:500").unwrap();
    let direct = run_stats(&spec, 300, 7);
    let cache = FpcCache::in_memory();
    let (cached, source) = cache.summary(&spec, 300, 7);
    assert_eq!(source, "engine");
    assert_eq!(cached, direct);
    // The content address is one key for every spelling of the spec.
    let long = FpcSpec::parse("fpc:16:4:fixed-split:10:500").unwrap();
    let short = FpcSpec::parse("fpc:16:4:fixed-split").unwrap();
    assert_eq!(short.canonical_string(), long.canonical_string());
    assert_eq!(summary_key(&short, 300, 7), summary_key(&long, 300, 7));
}

#[test]
fn campaigns_fingerprint_and_cover_identically_across_worker_counts() {
    // The acceptance gate: one config, three worker counts — the
    // checkpoint fingerprint and the final coverage (violations,
    // steps, facet set) must be bit-identical.
    let dir = temp_dir("workers");
    let fingerprint = fpc_config("fpc:20:5:berserk:8:550", 500, 1).fingerprint_hex();
    let mut reports = Vec::new();
    for (i, workers) in [1usize, 2, 5].into_iter().enumerate() {
        let mut config = fpc_config("fpc:20:5:berserk:8:550", 500, workers);
        assert_eq!(
            config.fingerprint_hex(),
            fingerprint,
            "worker count is an execution knob, not a population knob"
        );
        let path = dir.join(format!("ckpt-{i}.jsonl"));
        config.checkpoint = Some(path.clone());
        let report = act_campaign::run_campaign(&config).unwrap();
        let checkpoint = act_campaign::load_latest_checkpoint(&path, &fingerprint)
            .unwrap()
            .expect("a completed campaign leaves a checkpoint");
        assert_eq!(checkpoint.fingerprint, fingerprint);
        assert_eq!(checkpoint.coverage, report.coverage);
        reports.push(report);
    }
    let first = &reports[0];
    for report in &reports[1..] {
        assert_eq!(report.coverage, first.coverage);
        assert_eq!(report.cursor, first.cursor);
    }
    assert_eq!(first.cursor, 500);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_replay_reproduces_every_run_exactly() {
    // The replay invariant judged by the campaign, probed directly: a
    // run is its own replay recipe (spec, derived seed, injection bit).
    let spec = FpcSpec::parse("fpc:32:8:berserk:10:700").unwrap();
    for index in 0..50u64 {
        let seed = act_fpc::derive_seed(0xFAC7, index);
        let once = simulate_run(&spec, seed, false);
        let again = simulate_run(&spec, seed, false);
        assert_eq!(once.fingerprint, again.fingerprint, "run {index}");
        assert_eq!(once.rounds, again.rounds);
        assert_eq!(once.agreement_ok, again.agreement_ok);
    }
}

#[test]
fn fpc_configs_admit_fpc_invariants_only() {
    let mut config = fpc_config("fpc:16:4:berserk:5:500", 50, 2);
    config.invariants = Some(vec![INVARIANT_FPC_REPLAY.to_string()]);
    act_campaign::run_campaign(&config).unwrap();
    let mut wrong = fpc_config("fpc:16:4:berserk:5:500", 50, 2);
    wrong.invariants = Some(vec!["liveness-fair".to_string()]);
    let err = act_campaign::run_campaign(&wrong).unwrap_err();
    assert!(
        err.contains("adversarial"),
        "cross-family error names the family: {err}"
    );
}
