//! End-to-end cluster tests over real sockets: in-process peers built
//! with `spawn_server`, exercised through the resilient `ClusterClient`
//! — placement + replication, non-owner forwarding, failover past a
//! dead peer, and Merkle-root convergence after a restart.
//!
//! The peers share this test process, so the `serve.peer.*` counters
//! are cluster-wide totals here; assertions use store contents (which
//! are per-peer) wherever per-peer attribution matters.

use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard};

use act_service::{
    spawn_server, ClusterClient, ClusterConfig, ServeOptions, ServerHandle, StoreKey,
};
use fact::{ModelSpec, TaskSpec};

/// Serializes the tests: they bind sockets and diff process-global
/// counters.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fact-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(model: &str, k: usize) -> StoreKey {
    let model = ModelSpec::parse(model, false).unwrap();
    let task = TaskSpec::set_consensus(model.num_processes(), k).unwrap();
    StoreKey::new(&model, &task, 1)
}

/// Binds `n` ephemeral listeners up front so every peer can be
/// configured with the full address list before any server starts.
fn bind_peers(n: usize) -> (Vec<TcpListener>, Vec<String>) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    (listeners, addrs)
}

fn spawn_cluster(listeners: Vec<TcpListener>, addrs: &[String]) -> Vec<ServerHandle> {
    listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let options = ServeOptions {
                cluster: Some(ClusterConfig::new(addrs.to_vec(), i)),
                ..ServeOptions::default()
            };
            spawn_server(&options, listener).unwrap()
        })
        .collect()
}

#[test]
fn solves_replicate_to_every_owner_and_only_owners() {
    let _serial = serial();
    let (listeners, addrs) = bind_peers(3);
    let handles = spawn_cluster(listeners, &addrs);
    let k = key("t-res:3:1", 2);
    let hash = k.content_hash();

    // Ask the whole cluster (the client may land on any peer, including
    // the non-owner — forwarding makes that invisible).
    let client = ClusterClient::new(addrs.clone(), 1);
    let resp = client
        .solve("t-res:3:1", 2, 1, false, Some(30_000))
        .unwrap();
    assert!(resp.ok);
    assert_eq!(resp.verdict.as_deref(), Some("solvable"));
    assert_eq!(resp.authoritative, Some(true));

    // Write-through replication is synchronous in the worker, but give
    // the sockets a beat on slow machines.
    let owners = act_service::PeerRing::new(3).owners(hash, act_service::REPLICATION_FACTOR);
    assert_eq!(owners.len(), 2, "replication factor 2 of 3 peers");
    for deadline in 0..100 {
        let all_placed = owners
            .iter()
            .all(|&i| handles[i].scheduler().store().raw_entry(hash).is_some());
        if all_placed {
            break;
        }
        assert!(deadline < 99, "owners never received the replica");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    for (i, h) in handles.iter().enumerate() {
        let placed = h.scheduler().store().raw_entry(hash).is_some();
        assert_eq!(
            placed,
            owners.contains(&i),
            "peer {i}: entry placement must follow ring ownership"
        );
    }

    // Every peer reports the same owners' Merkle root story: owners
    // agree with each other, and a second identical solve is a store
    // hit wherever it lands.
    let again = client
        .solve("t-res:3:1", 2, 1, false, Some(30_000))
        .unwrap();
    assert_eq!(again.verdict.as_deref(), Some("solvable"));
    for h in handles {
        h.stop();
    }
}

#[test]
fn clients_fail_over_when_a_peer_dies_mid_workload() {
    let _serial = serial();
    let (listeners, addrs) = bind_peers(2);
    let mut handles = spawn_cluster(listeners, &addrs);

    let client = ClusterClient::new(addrs.clone(), 7);
    let first = client
        .solve("t-res:3:1", 2, 1, false, Some(30_000))
        .unwrap();
    assert!(first.ok);

    // Kill peer 0. The client's peer list still names it; every request
    // must succeed anyway by rotating to the survivor.
    handles.remove(0).stop();
    for (model, k) in [("t-res:3:1", 2), ("k-of:3:2", 2), ("wait-free:3", 2)] {
        let resp = client.solve(model, k, 1, false, Some(30_000)).unwrap();
        assert!(resp.ok, "{model}: request must survive the dead peer");
        assert!(resp.verdict.is_some());
    }
    // Stats too (a different request shape through the same retry path).
    assert!(client.stats().unwrap().ok);
    for h in handles {
        h.stop();
    }
}

#[test]
fn proofs_come_back_verified_through_the_client() {
    let _serial = serial();
    let (listeners, addrs) = bind_peers(2);
    let handles = spawn_cluster(listeners, &addrs);
    let client = ClusterClient::new(addrs.clone(), 3);
    let resp = client.solve("t-res:3:1", 2, 1, true, Some(30_000)).unwrap();
    assert!(resp.ok);
    let proof = resp
        .verified_proof()
        .expect("store-committed solve carries a verifying proof");
    assert_eq!(proof.entry_hash, key("t-res:3:1", 2).content_hash());
    for h in handles {
        h.stop();
    }
}

#[test]
fn a_restarted_peer_converges_to_the_cluster_root() {
    let _serial = serial();
    let dir_a = temp_dir("conv-a");
    let dir_b = temp_dir("conv-b");
    let (listeners, addrs) = bind_peers(2);
    let mut listeners = listeners.into_iter();
    let opts = |i: usize, dir: &std::path::Path| ServeOptions {
        cluster: Some(ClusterConfig::new(addrs.clone(), i)),
        store_dir: Some(dir.to_path_buf()),
        ..ServeOptions::default()
    };
    let handle_a = spawn_server(&opts(0, &dir_a), listeners.next().unwrap()).unwrap();
    let handle_b = spawn_server(&opts(1, &dir_b), listeners.next().unwrap()).unwrap();

    let client = ClusterClient::new(addrs.clone(), 11);
    for (model, k) in [("t-res:3:1", 2), ("k-of:3:2", 2), ("wait-free:3", 2)] {
        assert!(client.solve(model, k, 1, false, Some(30_000)).unwrap().ok);
    }
    let root_a = handle_a.scheduler().store().merkle_root();
    assert_ne!(root_a, 0);

    // Take peer B down, wipe its store — a total disk loss — and solve
    // one more model so the survivors move on without it.
    handle_b.stop();
    let _ = std::fs::remove_dir_all(&dir_b);
    assert!(
        client
            .solve("k-of:3:1", 1, 1, false, Some(30_000))
            .unwrap()
            .ok
    );

    // Restart B on its old address with an empty store. Startup
    // anti-entropy plus one explicit sync round must rebuild it to the
    // surviving peer's exact root.
    let listener = TcpListener::bind(&addrs[1]).expect("rebind the released port");
    let handle_b = spawn_server(&opts(1, &dir_b), listener).unwrap();
    let b_client = ClusterClient::new(vec![addrs[1].clone()], 0);
    let sync = b_client
        .request("{\"op\":\"sync\",\"id\":1}", Some(30_000))
        .unwrap();
    assert!(sync.ok);
    let root_a = handle_a.scheduler().store().merkle_root();
    let root_b = handle_b.scheduler().store().merkle_root();
    assert_eq!(
        format!("{root_b:032x}"),
        format!("{root_a:032x}"),
        "restarted peer must converge to the cluster root"
    );
    assert_eq!(
        handle_b.scheduler().store().merkle_len(),
        handle_a.scheduler().store().merkle_len()
    );

    handle_a.stop();
    handle_b.stop();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn wire_stats_expose_cluster_counters() {
    let _serial = serial();
    let (listeners, addrs) = bind_peers(2);
    let handles = spawn_cluster(listeners, &addrs);
    let client = ClusterClient::new(addrs.clone(), 5);
    assert!(
        client
            .solve("t-res:3:1", 2, 1, false, Some(30_000))
            .unwrap()
            .ok
    );
    let stats = client.stats().unwrap().stats.expect("stats body");
    assert_eq!(stats.merkle_root.len(), 32, "root rides as 32 hex digits");
    // The counters are process-global here, so only their presence and
    // monotonicity are meaningful: a 2-peer replicated solve must have
    // produced at least one replication somewhere in the process.
    assert!(stats.peer_replications >= 1);
    for h in handles {
        h.stop();
    }
}
