//! End-to-end observability: a liveness-failing adversarial run is
//! captured as a trace artifact that replays bit-for-bit, and a run's
//! telemetry stream aggregates into a valid `RunReport`.

use act_runtime::{run_adversarial, IsSystem, TraceArtifact};
use act_tasks::{find_carried_map_with_config, SearchConfig, SetConsensus, Task};
use act_topology::ColorSet;
use fact::adversary::{Adversary, AgreementFunction};
use fact::{validate_report_json, RunReport, Solvability};
use rand::SeedableRng;

fn fresh() -> IsSystem<u8> {
    IsSystem::new(vec![Some(1), Some(2), Some(3)])
}

/// The telemetry sink is process-global; tests that install one must not
/// overlap or they would capture each other's events.
static SINK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn liveness_failure_artifact_replays_bit_for_bit() {
    // A private artifact directory for this test run.
    let dir = std::env::temp_dir().join(format!("act-obs-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("ACT_OBS_ARTIFACTS", &dir);

    // Two steps cannot finish a 3-process IS round: liveness fails and
    // the scheduler captures the run.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut sys = fresh();
    let participants = ColorSet::full(3);
    let outcome = run_adversarial(&mut sys, participants, participants, &mut rng, |_| 0, 2);
    assert!(!outcome.all_correct_terminated, "2 steps must not suffice");

    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("artifact directory created")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 1, "exactly one artifact for one failure");

    let artifact = TraceArtifact::load(&entries[0]).expect("artifact loads");
    assert_eq!(artifact.schema_version, 1);
    assert_eq!(artifact.reason, "liveness-failure");
    assert_eq!(artifact.max_steps, 2);
    assert_eq!(artifact.trace.len(), outcome.steps);
    assert_eq!(artifact.trace.correct, Some(participants));

    // Bit-for-bit: the replayed system reaches the same state and the
    // recorded failure reproduces.
    let mut replayed = fresh();
    let terminated = artifact.trace.replay(&mut replayed).expect("valid trace");
    assert_eq!(terminated, outcome.terminated);
    assert_eq!(replayed.views(), sys.views(), "replay is bit-for-bit");
    assert_eq!(artifact.trace.correct_terminated(terminated), Some(false));

    std::env::remove_var("ACT_OBS_ARTIFACTS");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipeline_telemetry_aggregates_into_a_valid_report() {
    let _guard = SINK_LOCK.lock().unwrap();
    let sink = act_obs::MemorySink::shared();
    act_obs::install(sink.clone());

    // Run the real pipeline so real events flow: consensus is solvable
    // 0-resiliently.
    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(2, 0));
    let t = fact::tasks::consensus(2, &[0, 1]);
    let verdict = fact::solve_in_fair_model(&t, &alpha, 1, 1_000_000);
    assert!(matches!(verdict, Solvability::Solvable { .. }));

    act_obs::uninstall();
    let lines = sink.drain();
    assert!(!lines.is_empty(), "the pipeline emits events when enabled");

    let report = RunReport::from_events(
        "solve",
        "t-res:2:0",
        true,
        Some(verdict.verdict_name().to_string()),
        &lines,
    );
    assert!(report.counters.contains_key("solver.iteration"));
    assert!(report.counters.contains_key("mapsearch.done"));
    assert!(
        report.timings_us.contains_key("solver.iteration"),
        "iteration spans carry elapsed_us"
    );

    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let back = validate_report_json(&json).expect("round-trips through validation");
    assert_eq!(back.verdict.as_deref(), Some("solvable"));
    assert_eq!(back.events.len(), report.events.len());
}

#[test]
fn map_search_emits_per_worker_events_with_the_documented_shape() {
    let _guard = SINK_LOCK.lock().unwrap();
    let sink = act_obs::MemorySink::shared();
    act_obs::install(sink.clone());

    // A branching solvable instance searched with an explicit 2-way
    // fan-out, so the parallel engine emits one mapsearch.worker event
    // per worker alongside the aggregated mapsearch.done.
    let t = SetConsensus::new(2, 2, &[0, 1, 2]);
    let domain = t.inputs().iterated_subdivision(1);
    let config = SearchConfig::serial(100_000).with_threads(2);
    let (result, stats) = find_carried_map_with_config(&t, &domain, &config);
    assert!(result.is_found());

    act_obs::uninstall();
    let lines = sink.drain();

    /// Extracts a numeric field (`"name":123`) from a JSON-lines event.
    fn numeric_field(line: &str, name: &str) -> Option<u64> {
        let tag = format!("\"{name}\":");
        let rest = &line[line.find(&tag)? + tag.len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }

    let workers: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"mapsearch.worker\""))
        .collect();
    assert_eq!(
        workers.len(),
        stats.workers,
        "one worker event per search worker"
    );
    let mut ids = Vec::new();
    for w in &workers {
        for field in [
            "worker",
            "nodes",
            "prunes",
            "wipeouts",
            "residue_hits",
            "residue_misses",
        ] {
            assert!(
                numeric_field(w, field).is_some(),
                "worker event carries numeric {field:?}: {w}"
            );
        }
        assert!(
            [
                "found",
                "no-map",
                "exhausted",
                "aborted",
                "unsolvable",
                "timed-out"
            ]
            .iter()
            .any(|r| w.contains(&format!("\"reason\":\"{r}\""))),
            "worker event carries a known reason: {w}"
        );
        ids.push(numeric_field(w, "worker").unwrap());
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), workers.len(), "worker ids are distinct");
    assert!(
        workers.iter().any(|w| w.contains("\"reason\":\"found\"")),
        "some worker reported the witness"
    );

    // The aggregated done event carries the new worker/residue fields.
    let done: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"mapsearch.done\""))
        .collect();
    assert_eq!(done.len(), 1, "one aggregated event per search");
    for field in [
        "workers",
        "residue_hits",
        "residue_misses",
        "nodes",
        "budget_remaining",
    ] {
        assert!(
            numeric_field(done[0], field).is_some(),
            "done event carries numeric {field:?}: {}",
            done[0]
        );
    }
    assert_eq!(
        numeric_field(done[0], "workers"),
        Some(stats.workers as u64)
    );
    assert!(done[0].contains("\"residue_hit_rate\":"));
}
