//! End-to-end observability: a liveness-failing adversarial run is
//! captured as a trace artifact that replays bit-for-bit, and a run's
//! telemetry stream aggregates into a valid `RunReport`.

use act_runtime::{run_adversarial, IsSystem, TraceArtifact};
use act_topology::ColorSet;
use fact::adversary::{Adversary, AgreementFunction};
use fact::{validate_report_json, RunReport, Solvability};
use rand::SeedableRng;

fn fresh() -> IsSystem<u8> {
    IsSystem::new(vec![Some(1), Some(2), Some(3)])
}

#[test]
fn liveness_failure_artifact_replays_bit_for_bit() {
    // A private artifact directory for this test run.
    let dir = std::env::temp_dir().join(format!("act-obs-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("ACT_OBS_ARTIFACTS", &dir);

    // Two steps cannot finish a 3-process IS round: liveness fails and
    // the scheduler captures the run.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut sys = fresh();
    let participants = ColorSet::full(3);
    let outcome = run_adversarial(&mut sys, participants, participants, &mut rng, |_| 0, 2);
    assert!(!outcome.all_correct_terminated, "2 steps must not suffice");

    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("artifact directory created")
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 1, "exactly one artifact for one failure");

    let artifact = TraceArtifact::load(&entries[0]).expect("artifact loads");
    assert_eq!(artifact.schema_version, 1);
    assert_eq!(artifact.reason, "liveness-failure");
    assert_eq!(artifact.max_steps, 2);
    assert_eq!(artifact.trace.len(), outcome.steps);
    assert_eq!(artifact.trace.correct, Some(participants));

    // Bit-for-bit: the replayed system reaches the same state and the
    // recorded failure reproduces.
    let mut replayed = fresh();
    let terminated = artifact.trace.replay(&mut replayed);
    assert_eq!(terminated, outcome.terminated);
    assert_eq!(replayed.views(), sys.views(), "replay is bit-for-bit");
    assert_eq!(artifact.trace.correct_terminated(terminated), Some(false));

    std::env::remove_var("ACT_OBS_ARTIFACTS");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipeline_telemetry_aggregates_into_a_valid_report() {
    let sink = act_obs::MemorySink::shared();
    act_obs::install(sink.clone());

    // Run the real pipeline so real events flow: consensus is solvable
    // 0-resiliently.
    let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(2, 0));
    let t = fact::tasks::consensus(2, &[0, 1]);
    let verdict = fact::solve_in_fair_model(&t, &alpha, 1, 1_000_000);
    assert!(matches!(verdict, Solvability::Solvable { .. }));

    act_obs::uninstall();
    let lines = sink.drain();
    assert!(!lines.is_empty(), "the pipeline emits events when enabled");

    let report = RunReport::from_events(
        "solve",
        "t-res:2:0",
        true,
        Some(verdict.verdict_name().to_string()),
        &lines,
    );
    assert!(report.counters.contains_key("solver.iteration"));
    assert!(report.counters.contains_key("mapsearch.done"));
    assert!(
        report.timings_us.contains_key("solver.iteration"),
        "iteration spans carry elapsed_us"
    );

    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let back = validate_report_json(&json).expect("round-trips through validation");
    assert_eq!(back.verdict.as_deref(), Some("solvable"));
    assert_eq!(back.events.len(), report.events.len());
}
