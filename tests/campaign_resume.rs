//! Checkpoint/resume tests for the campaign runner (PR 6): a campaign
//! killed mid-flight (via the chaos kill hook, in the spirit of PR 4's
//! fault layer) and resumed from its checkpoint file finishes with
//! *exactly* the coverage counters of an uninterrupted run, regardless
//! of worker count; torn checkpoint tails are tolerated.

use std::path::PathBuf;
use std::sync::OnceLock;

use act_campaign::{chaos, run_campaign_in, CampaignConfig, CampaignContext, Scope};

fn ctx() -> &'static CampaignContext {
    static CTX: OnceLock<CampaignContext> = OnceLock::new();
    CTX.get_or_init(|| CampaignContext::new("t-res:3:1", false).expect("context builds"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("act-campaign-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_config(dir: &std::path::Path) -> CampaignConfig {
    let mut config = CampaignConfig::new("t-res:3:1");
    config.scope = Scope::Sampled { samples: 2_000 };
    config.seed = 9;
    config.workers = 2;
    config.batch = 400;
    config.fault_rate_percent = 30;
    config.solver_check = false;
    config.inject_liveness = vec![123, 1777];
    config.checkpoint = Some(dir.join("ckpt.jsonl"));
    config.artifacts = Some(dir.join("artifacts"));
    config
}

/// The headline PR-6 acceptance property: kill mid-flight, restart from
/// the checkpoint, and the final coverage counters equal an
/// uninterrupted run's — exactly, not approximately.
#[test]
fn killed_campaign_resumes_to_identical_final_coverage() {
    // Reference: one uninterrupted run.
    let ref_dir = temp_dir("reference");
    let reference = run_campaign_in(ctx(), &base_config(&ref_dir)).expect("uninterrupted campaign");
    assert!(reference.done);
    assert_eq!(reference.cursor, 2_000);

    // Victim: same campaign, killed at the start of the batch at cursor
    // 1200 (i.e. after three completed checkpoints).
    let kill_dir = temp_dir("killed");
    let config = base_config(&kill_dir);
    chaos::kill_once_at_cursor(1_200);
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_campaign_in(ctx(), &config)
    }));
    chaos::disarm();
    assert!(panic.is_err(), "the armed kill must abort the campaign");

    // The checkpoint file ends at the last completed batch.
    let interrupted = act_campaign::load_latest_checkpoint(
        config.checkpoint.as_ref().unwrap(),
        &config.fingerprint_hex(),
    )
    .expect("checkpoint readable")
    .expect("checkpoint written before the kill");
    assert_eq!(interrupted.cursor, 1_200);
    assert!(!interrupted.done);

    // Restart from the checkpoint — with a different worker count, which
    // must not matter because runs derive purely from (seed, index).
    let mut resumed_config = config.clone();
    resumed_config.resume = true;
    resumed_config.workers = 3;
    let resumed = run_campaign_in(ctx(), &resumed_config).expect("resumed campaign");
    assert!(resumed.done);
    assert_eq!(resumed.resumed_from, 1_200);
    assert_eq!(resumed.cursor, reference.cursor);
    assert_eq!(
        resumed.coverage, reference.coverage,
        "resumed coverage must equal the uninterrupted run's, counter for counter"
    );
    assert_eq!(resumed.artifact_sigs, reference.artifact_sigs);
}

/// Worker count is an operational knob, not a population knob: the same
/// campaign at 1 and 3 workers produces identical coverage.
#[test]
fn worker_count_does_not_change_coverage() {
    let dir_a = temp_dir("w1");
    let mut one = base_config(&dir_a);
    one.checkpoint = None;
    one.workers = 1;
    let dir_b = temp_dir("w3");
    let mut three = base_config(&dir_b);
    three.checkpoint = None;
    three.workers = 3;
    let report_one = run_campaign_in(ctx(), &one).expect("1-worker campaign");
    let report_three = run_campaign_in(ctx(), &three).expect("3-worker campaign");
    assert_eq!(report_one.coverage, report_three.coverage);
    assert_eq!(report_one.artifact_sigs, report_three.artifact_sigs);
}

/// A torn tail (a checkpoint append cut off mid-write by the kill) is
/// skipped; resume continues from the last complete record.
#[test]
fn resume_tolerates_a_torn_checkpoint_tail() {
    let dir = temp_dir("torn");
    let config = base_config(&dir);
    let reference = run_campaign_in(ctx(), &config).expect("campaign completes");
    let path = config.checkpoint.as_ref().unwrap();
    let mut text = std::fs::read_to_string(path).unwrap();
    // Simulate a torn append: half of a would-be next record.
    text.push_str("{\"schema\":1,\"fingerprint\":\"");
    std::fs::write(path, text).unwrap();

    let mut resumed_config = config.clone();
    resumed_config.resume = true;
    let resumed = run_campaign_in(ctx(), &resumed_config).expect("resume past the torn tail");
    assert!(resumed.done);
    assert_eq!(resumed.resumed_from, 2_000, "nothing left to execute");
    assert_eq!(resumed.coverage, reference.coverage);
}

/// The exhaustive tier resumes too: its enumeration order is
/// deterministic, so skipping the checkpointed prefix lands on exactly
/// the uncounted runs.
#[test]
fn exhaustive_campaign_resumes_after_a_kill() {
    let ref_dir = temp_dir("exh-ref");
    let mut reference_config = base_config(&ref_dir);
    reference_config.scope = Scope::Exhaustive { max_depth: 4 };
    reference_config.inject_liveness.clear();
    reference_config.batch = 20;
    let reference = run_campaign_in(ctx(), &reference_config).expect("uninterrupted exhaustive");
    assert_eq!(reference.coverage.runs, 81, "3^4 schedules at depth 4");

    let dir = temp_dir("exh-kill");
    let mut config = base_config(&dir);
    config.scope = Scope::Exhaustive { max_depth: 4 };
    config.inject_liveness.clear();
    config.batch = 20;
    chaos::kill_once_at_cursor(40);
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_campaign_in(ctx(), &config)
    }));
    chaos::disarm();
    assert!(panic.is_err());
    let mut resumed_config = config.clone();
    resumed_config.resume = true;
    let resumed = run_campaign_in(ctx(), &resumed_config).expect("resumed exhaustive");
    assert!(resumed.done);
    assert_eq!(resumed.resumed_from, 40);
    assert_eq!(resumed.coverage, reference.coverage);
}
