//! End-to-end integration of the whole FACT pipeline:
//! adversary → agreement function → affine task → Algorithm 1 →
//! simulation → solvability, across crates.

use std::collections::HashMap;

use act_adversary::{zoo, Adversary, AgreementFunction};
use act_affine::{fair_affine_task, k_obstruction_free_task};
use act_runtime::run_adversarial;
use act_tasks::SetConsensus;
use act_topology::{ColorSet, ProcessId};
use fact::{
    outputs_to_simplex, set_consensus_verdict, AdaptiveSetConsensus, AlgorithmOneSystem,
    Solvability,
};
use rand::SeedableRng;

#[test]
fn every_fair_adversary_round_trips_through_the_pipeline() {
    // For every fair 3-process adversary with at least one run: build R_A,
    // run Algorithm 1 on admissible fault patterns, check safety and
    // liveness, then solve adaptive set consensus on top of R_A^*.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let mut models_checked = 0;
    for a in zoo::all_fair_adversaries(3) {
        if a.setcon() == 0 {
            continue;
        }
        let alpha = AgreementFunction::of_adversary(&a);
        let r_a = fair_affine_task(&alpha);
        let full = ColorSet::full(3);

        // Algorithm 1 under a couple of admissible schedules.
        for seed in 0..3u64 {
            let power = alpha.alpha(full);
            if power == 0 {
                continue;
            }
            let mut sys = AlgorithmOneSystem::new(&alpha, full);
            let outcome =
                run_adversarial(&mut sys, full, full, &mut rng, |_| seed as usize, 200_000);
            assert!(outcome.all_correct_terminated, "liveness for {a}");
            let simplex = outputs_to_simplex(r_a.complex(), &sys.outputs()).expect("resolvable");
            assert!(r_a.complex().contains_simplex(&simplex), "safety for {a}");
        }

        // Adaptive set consensus among the full coalition.
        let solver = AdaptiveSetConsensus::new(&r_a, &alpha);
        let proposals: HashMap<ProcessId, u64> =
            full.iter().map(|p| (p, p.index() as u64)).collect();
        let decisions = solver.solve(full, full, &proposals, &mut rng, 64);
        let mut values: Vec<u64> = decisions.iter().map(|d| d.value).collect();
        values.sort_unstable();
        values.dedup();
        assert!(values.len() <= alpha.alpha(full), "α-agreement for {a}");
        models_checked += 1;
    }
    assert!(models_checked >= 20, "the census covers a real portfolio");
}

#[test]
fn fact_theorem_16_matches_setcon_for_named_models() {
    // k-set consensus solvable in the model iff k ≥ setcon(A); the
    // solvable side at one iteration of R_A, the unsolvable side by
    // search exhaustion or the Sperner certificate.
    let models: Vec<(Adversary, AgreementFunction)> = vec![
        (
            Adversary::wait_free(3),
            AgreementFunction::of_adversary(&Adversary::wait_free(3)),
        ),
        (
            Adversary::t_resilient(3, 1),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
        ),
        (
            Adversary::k_obstruction_free(3, 1),
            AgreementFunction::k_concurrency(3, 1),
        ),
        (
            Adversary::k_obstruction_free(3, 2),
            AgreementFunction::k_concurrency(3, 2),
        ),
        (
            zoo::figure_5b_adversary(),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
        ),
    ];
    for (a, alpha) in models {
        let power = a.setcon();
        let r_a = fair_affine_task(&alpha);
        for k in 1..=2usize {
            let t = SetConsensus::new(3, k, &[0, 1, 2]);
            let verdict = set_consensus_verdict(&t, &r_a, 1, 3_000_000);
            if k >= power {
                assert!(verdict.is_solvable(), "{a}: k = {k} solvable");
            } else {
                assert!(
                    matches!(verdict, Solvability::NoMapUpTo { .. }),
                    "{a}: k = {k} unsolvable at depth 1"
                );
            }
        }
    }
}

#[test]
fn def9_vs_def6_relationship_holds_for_all_k() {
    // Cross-construction check (Figure 7 / Definition 6): R_A ⊆ R_{k-OF},
    // equal at the extremes.
    for k in 1..=3usize {
        let alpha = AgreementFunction::k_concurrency(3, k);
        let general = fair_affine_task(&alpha);
        let direct = k_obstruction_free_task(3, k);
        let g = general.complex().canonical_facets();
        let d = direct.complex().canonical_facets();
        assert!(g.is_subset(&d), "k = {k}");
        if k == 1 || k == 3 {
            assert_eq!(g, d, "equality at k = {k}");
        }
    }
}

#[test]
fn algorithm_one_covers_r_a_but_not_its_complement() {
    // Sampling many runs of Algorithm 1 in the wait-free model reaches a
    // large portion of Chr² s facets; in the 1-OF model, outputs stay
    // within R_{1-OF}'s 73 facets.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
    let alpha = AgreementFunction::k_concurrency(3, 1);
    let r_a = fair_affine_task(&alpha);
    let full = ColorSet::full(3);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..300 {
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        let outcome = run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 200_000);
        assert!(outcome.all_correct_terminated);
        let simplex = outputs_to_simplex(r_a.complex(), &sys.outputs()).unwrap();
        assert!(r_a.complex().contains_simplex(&simplex));
        if simplex.len() == 3 {
            seen.insert(simplex);
        }
    }
    assert!(
        seen.len() > 10,
        "the algorithm explores many distinct facets, saw {}",
        seen.len()
    );
    assert!(seen.len() <= r_a.complex().facet_count());
}

#[test]
fn algorithm_one_exhaustive_two_process_schedules() {
    // Bounded-exhaustive schedule exploration of Algorithm 1 for n = 2 in
    // the 1-obstruction-free model: every maximal interleaving terminates
    // with outputs inside R_A, and several distinct facets are realized.
    use act_runtime::explore_schedules;
    let alpha = AgreementFunction::k_concurrency(2, 1);
    let r_a = fair_affine_task(&alpha);
    let full = ColorSet::full(2);
    let mut seen = std::collections::BTreeSet::new();
    let mut complete_runs = 0usize;
    let runs = explore_schedules(
        || AlgorithmOneSystem::new(&alpha, full),
        full,
        full,
        80,
        60_000,
        |sys, outcome| {
            let outputs = sys.outputs();
            if outcome.all_correct_terminated {
                complete_runs += 1;
                let sx = outputs_to_simplex(r_a.complex(), &outputs).expect("outputs resolve");
                assert!(r_a.complex().contains_simplex(&sx), "exhaustive safety");
                seen.insert(sx);
            } else if !outputs.is_empty() {
                // Truncated branches may still have partial outputs — they
                // too must lie in R_A.
                let sx = outputs_to_simplex(r_a.complex(), &outputs).unwrap();
                assert!(r_a.complex().contains_simplex(&sx));
            }
        },
    );
    assert!(runs > 100, "explored {runs} interleavings");
    assert!(
        complete_runs > 0,
        "complete runs exist within the depth bound"
    );
    // DFS with a run cap varies only the tail of the schedule, so a single
    // realized facet is expected; the point of this test is the exhaustive
    // safety check above.
    assert!(!seen.is_empty());
}

#[test]
fn safety_is_schedule_independent() {
    // Lemma 6 never uses the fault bound: whatever the schedule — even
    // inadmissible ones with more failures than the α-model allows — the
    // decided outputs always form a simplex of R_A. (Liveness may fail on
    // such schedules; safety must not.)
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(321);
    let models = vec![
        AgreementFunction::k_concurrency(3, 1),
        AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
        AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
    ];
    for alpha in models {
        let r_a = fair_affine_task(&alpha);
        let full = ColorSet::full(3);
        for trial in 0..150u64 {
            // Arbitrary fault pattern: every process gets a random budget;
            // many of these runs are NOT admissible in the α-model.
            let mut sys = AlgorithmOneSystem::new(&alpha, full);
            let budgets: Vec<usize> = (0..3)
                .map(|i| ((trial as usize) * 7 + i * 13) % 40)
                .collect();
            let correct = ColorSet::from_indices([(trial % 3) as usize]);
            let outcome = run_adversarial(
                &mut sys,
                full,
                correct,
                &mut rng,
                |p| budgets[p.index()],
                2_000, // short: liveness often fails here, by design
            );
            let _ = outcome;
            let outputs = sys.outputs();
            if outputs.is_empty() {
                continue;
            }
            let simplex = outputs_to_simplex(r_a.complex(), &outputs)
                .expect("decided outputs identify Chr² vertices");
            assert!(
                r_a.complex().contains_simplex(&simplex),
                "partial outputs must still form a simplex of R_A"
            );
        }
    }
}

#[test]
fn unfair_adversary_is_rejected_by_fairness_check_not_by_construction() {
    // The unfair example still HAS an agreement function; fairness is what
    // fails. The affine construction itself is agnostic.
    let u = zoo::unfair_example();
    assert!(!u.is_fair());
    let alpha = AgreementFunction::of_adversary(&u);
    alpha.validate().unwrap();
    // R_A can be built from α, but FACT's guarantees only cover fair
    // adversaries; we simply record that construction succeeds.
    let r = fair_affine_task(&alpha);
    assert!(r.complex().facet_count() > 0);
}
