//! Robustness tests for the serving layer's persistent verdict store and
//! single-flight scheduler: concurrent access, corruption tolerance,
//! schema invalidation, backpressure, and the never-persist rule for
//! unreliable verdicts.

use std::sync::{Arc, Mutex, MutexGuard};

use act_service::{
    Scheduler, ServeConfig, Served, SolveQuery, StoreKey, StoredVerdict, Submitted, TowerStore,
    VerdictStore, SERVE_ENGINE_RUNS, SERVE_STORE_CORRUPT, SERVE_TOWER_CORRUPT,
};
use fact::{ModelSpec, TaskSpec, TowerPersistence};

/// Serializes the tests that diff process-global counters.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fact-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(model: &str, k: usize, level: usize) -> StoreKey {
    let model = ModelSpec::parse(model, false).unwrap();
    let task = TaskSpec::set_consensus(model.num_processes(), k).unwrap();
    StoreKey::new(&model, &task, level)
}

fn verdict(iterations: u64) -> StoredVerdict {
    StoredVerdict {
        verdict: "no-map".into(),
        iterations,
        witness: Vec::new(),
    }
}

fn query(model: &str, k: usize, iters: usize) -> SolveQuery {
    let model = ModelSpec::parse(model, false).unwrap();
    let task = TaskSpec::set_consensus(model.num_processes(), k).unwrap();
    SolveQuery {
        model,
        task,
        iters,
        deadline_ms: None,
    }
}

#[test]
fn concurrent_readers_and_writers_share_one_directory() {
    // Two store instances over the same directory stand in for the CLI
    // and the server sharing a store across processes: atomic renames
    // mean a reader sees a complete entry or nothing, never a torn one.
    let dir = temp_dir("concurrent");
    let writer = Arc::new(VerdictStore::open(&dir).unwrap());
    let reader = Arc::new(VerdictStore::open(&dir).unwrap());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let writer = Arc::clone(&writer);
        handles.push(std::thread::spawn(move || {
            for round in 0..25u64 {
                // All threads fight over the same key plus one private
                // key each; every write is a full valid entry.
                writer.put(&key("t-res:3:1", 1, 1), &verdict(round));
                writer.put(&key("t-res:3:1", 1, 2 + t as usize), &verdict(round));
            }
        }));
        let reader = Arc::clone(&reader);
        let dir = dir.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                // A fresh store per read forces the disk path (no memory
                // tier warm-up) under concurrent writes.
                let cold = VerdictStore::open(&dir).unwrap();
                if let Some(v) = cold.get(&key("t-res:3:1", 1, 1)) {
                    assert_eq!(v.verdict, "no-map");
                }
                let _ = reader.get(&key("t-res:3:1", 1, 1));
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panics under contention");
    }
    // Every contested entry is a complete, valid verdict afterwards.
    let fresh = VerdictStore::open(&dir).unwrap();
    assert_eq!(
        fresh.get(&key("t-res:3:1", 1, 1)).unwrap().verdict,
        "no-map"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_degrade_to_counted_misses() {
    let _guard = serial();
    let dir = temp_dir("corrupt");
    let store = VerdictStore::open(&dir).unwrap();
    let k1 = key("t-res:3:1", 1, 1);
    let k2 = key("t-res:3:1", 1, 2);
    let k3 = key("t-res:3:1", 1, 3);
    for k in [&k1, &k2, &k3] {
        assert!(store.put(k, &verdict(k.level as u64)));
    }

    // Truncate one entry, bit-flip another's payload, leave the third.
    let p1 = store.entry_path(&k1).unwrap();
    let text = std::fs::read_to_string(&p1).unwrap();
    std::fs::write(&p1, &text[..text.len() / 2]).unwrap();
    let p2 = store.entry_path(&k2).unwrap();
    let tampered = std::fs::read_to_string(&p2)
        .unwrap()
        .replace("\"no-map\"", "\"solvable\"");
    std::fs::write(&p2, tampered).unwrap();

    let corrupt_before = SERVE_STORE_CORRUPT.get();
    // A fresh store has no memory tier to hide behind: both damaged
    // entries must load as misses — never a panic, never a wrong verdict.
    let fresh = VerdictStore::open(&dir).unwrap();
    assert_eq!(fresh.get(&k1), None, "truncated entry is a miss");
    assert_eq!(fresh.get(&k2), None, "checksum-mismatched entry is a miss");
    assert_eq!(SERVE_STORE_CORRUPT.get() - corrupt_before, 2);
    // The untouched sibling still round-trips.
    assert_eq!(fresh.get(&k3).unwrap().iterations, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn schema_and_format_bumps_are_clean_misses() {
    let _guard = serial();
    let dir = temp_dir("schema");
    let store = VerdictStore::open(&dir).unwrap();
    let k = key("k-of:3:2", 2, 1);
    assert!(store.put(&k, &verdict(1)));

    let corrupt_before = SERVE_STORE_CORRUPT.get();
    // An engine-schema bump changes the content address, so the old
    // entry is simply invisible — a miss with no corruption counted.
    let mut bumped = k.clone();
    bumped.engine_schema += 1;
    let fresh = VerdictStore::open(&dir).unwrap();
    assert_eq!(fresh.get(&bumped), None);

    // A format bump on the envelope itself is also a clean miss: the
    // loader rejects the version before it ever checks the payload.
    let path = store.entry_path(&k).unwrap();
    let aged = std::fs::read_to_string(&path)
        .unwrap()
        .replace("\"format\": 1", "\"format\": 999");
    assert_ne!(aged, std::fs::read_to_string(&path).unwrap());
    std::fs::write(&path, aged).unwrap();
    let fresh = VerdictStore::open(&dir).unwrap();
    assert_eq!(fresh.get(&k), None);
    assert_eq!(
        SERVE_STORE_CORRUPT.get(),
        corrupt_before,
        "version bumps must not count as corruption"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_tower_entries_degrade_to_counted_misses_and_recompute() {
    let _guard = serial();
    let dir = temp_dir("tower-corrupt");
    let store = Arc::new(TowerStore::open(&dir).unwrap());
    let alpha = act_adversary::AgreementFunction::k_concurrency(2, 2);
    let r_a = act_affine::fair_affine_task(&alpha);
    let inputs = act_topology::Complex::standard(2);

    // A first lifetime persists the tower levels…
    {
        let mut cache = fact::DomainCache::new()
            .with_persistence(Arc::clone(&store) as Arc<dyn TowerPersistence>);
        assert!(cache.domain(&r_a, &inputs, 2).facet_count() > 0);
    }
    // …which are then damaged on disk (truncated mid-entry).
    let towers_dir = dir.join("towers");
    let mut damaged = 0;
    for entry in std::fs::read_dir(&towers_dir).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        damaged += 1;
    }
    assert!(damaged >= 2, "both levels were persisted");

    // A restarted lifetime must count the corruption, fall back to
    // building from scratch, and still produce the exact domain.
    let corrupt_before = SERVE_TOWER_CORRUPT.get();
    let mut restarted =
        fact::DomainCache::new().with_persistence(Arc::clone(&store) as Arc<dyn TowerPersistence>);
    let recomputed = restarted.domain(&r_a, &inputs, 2).clone();
    assert_eq!(
        SERVE_TOWER_CORRUPT.get() - corrupt_before,
        damaged as u64,
        "every damaged entry is a counted miss, never a panic"
    );
    assert_eq!(recomputed, fact::affine_domain(&r_a, &inputs, 2));

    // The recompute re-persisted sound entries: a third lifetime loads
    // them cleanly with no further corruption counted.
    let corrupt_before = SERVE_TOWER_CORRUPT.get();
    let mut third =
        fact::DomainCache::new().with_persistence(Arc::clone(&store) as Arc<dyn TowerPersistence>);
    assert_eq!(third.domain(&r_a, &inputs, 2), &recomputed);
    assert_eq!(SERVE_TOWER_CORRUPT.get(), corrupt_before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn n_identical_concurrent_queries_run_the_engine_once() {
    let _guard = serial();
    let store = Arc::new(VerdictStore::in_memory());
    let sched = Scheduler::new(store, ServeConfig::default());
    let runs_before = SERVE_ENGINE_RUNS.get();
    // Submit the whole batch before any worker exists, so every query is
    // provably in flight at once; then let the pool race over them.
    let receivers: Vec<_> = (0..8)
        .map(|_| match sched.submit(query("t-res:3:1", 2, 1)) {
            Submitted::Pending(rx) => rx,
            _ => panic!("first submissions must be admitted"),
        })
        .collect();
    sched.start_workers();
    for rx in receivers {
        match rx.recv().expect("every waiter is answered") {
            Served::Authoritative { verdict, .. } => assert_eq!(verdict.verdict, "solvable"),
            other => panic!("expected an authoritative verdict, got {other:?}"),
        }
    }
    assert_eq!(
        SERVE_ENGINE_RUNS.get() - runs_before,
        1,
        "single-flight: 8 identical queries, exactly one engine run"
    );
    sched.drain();
}

#[test]
fn bounded_queue_rejects_rather_than_buffering() {
    let config = ServeConfig {
        queue_capacity: 2,
        ..ServeConfig::default()
    };
    let sched = Scheduler::new(Arc::new(VerdictStore::in_memory()), config);
    assert!(matches!(
        sched.submit(query("t-res:3:1", 1, 1)),
        Submitted::Pending(_)
    ));
    assert!(matches!(
        sched.submit(query("t-res:3:1", 1, 2)),
        Submitted::Pending(_)
    ));
    // Queue full; a coalescible duplicate still joins…
    assert!(matches!(
        sched.submit(query("t-res:3:1", 1, 1)),
        Submitted::Pending(_)
    ));
    // …but a distinct query is pushed back on.
    assert!(matches!(
        sched.submit(query("t-res:3:1", 1, 3)),
        Submitted::Busy { depth: 2 }
    ));
    sched.drain();
}

#[test]
fn unreliable_verdicts_answer_but_never_persist() {
    let dir = temp_dir("unreliable");
    let store = Arc::new(VerdictStore::open(&dir).unwrap());
    let config = ServeConfig {
        // Every job inherits an already-expired deadline.
        deadline_ms: Some(0),
        ..ServeConfig::default()
    };
    let sched = Scheduler::new(Arc::clone(&store), config);
    sched.start_workers();
    let q = query("k-of:3:1", 1, 1);
    let served = match sched.submit(q.clone()) {
        Submitted::Ready(s) => s,
        Submitted::Pending(rx) => rx.recv().unwrap(),
        _ => panic!("query must be admitted"),
    };
    match served {
        Served::Unreliable { verdict, .. } => assert_eq!(verdict, "timed-out"),
        other => panic!("expected a timed-out answer, got {other:?}"),
    }
    // Nothing was persisted, in memory or on disk.
    assert_eq!(store.get(&q.key()), None);
    assert!(!store.entry_path(&q.key()).unwrap().exists());
    // The same query with a real budget recomputes and then persists.
    let mut patient = q.clone();
    patient.deadline_ms = Some(60_000);
    let served = match sched.submit(patient) {
        Submitted::Ready(s) => s,
        Submitted::Pending(rx) => rx.recv().unwrap(),
        _ => panic!("query must be admitted"),
    };
    match served {
        Served::Authoritative { verdict, source } => {
            assert_eq!(verdict.verdict, "solvable");
            assert_eq!(source, "engine");
        }
        other => panic!("expected an authoritative verdict, got {other:?}"),
    }
    assert!(store.entry_path(&q.key()).unwrap().exists());
    sched.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_and_scheduler_agree_on_canonical_spellings() {
    // Two spellings of one custom model coalesce to one stored entry.
    let store = VerdictStore::in_memory();
    let a = ModelSpec::parse("custom:3:{p1,p3};{p2}", false).unwrap();
    let b = ModelSpec::parse("custom:3:{p2}; {p3,p1}", false).unwrap();
    let task = TaskSpec::set_consensus(3, 1).unwrap();
    let ka = StoreKey::new(&a, &task, 1);
    let kb = StoreKey::new(&b, &task, 1);
    assert_eq!(ka.content_hash(), kb.content_hash());
    assert!(store.put(&ka, &verdict(1)));
    assert_eq!(store.get(&kb).unwrap().iterations, 1);
}
