//! Integrity tests for the Merkle-verified verdict store: proof
//! round-trips under arbitrary entry sets, tamper detection at every
//! byte, and torn-write tolerance at every truncation boundary for both
//! the verdict store and the tower store.

use std::sync::{Mutex, MutexGuard};

use act_service::{
    MerkleIndex, Scheduler, ServeConfig, StoreKey, StoredVerdict, TowerStore, VerdictStore,
    SERVE_STORE_CORRUPT, SERVE_TOWER_CORRUPT,
};
use fact::{ModelSpec, TaskSpec};
use proptest::prelude::*;

/// Serializes the tests that diff process-global counters.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fact-merkle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(model: &str, k: usize, level: usize) -> StoreKey {
    let model = ModelSpec::parse(model, false).unwrap();
    let task = TaskSpec::set_consensus(model.num_processes(), k).unwrap();
    StoreKey::new(&model, &task, level)
}

fn verdict(iterations: u64) -> StoredVerdict {
    StoredVerdict {
        verdict: "no-map".into(),
        iterations,
        witness: Vec::new(),
    }
}

/// Widens sampled `u64` pairs into deduplicated `(entry, file)` hash
/// pairs; keeps the proptests independent of any one hash function.
fn entry_pairs(raw: &[(u64, u64)]) -> std::collections::BTreeMap<u128, u128> {
    raw.iter()
        .map(|&(a, b)| {
            let entry = ((a as u128) << 64) | b as u128;
            let file = ((b as u128) << 64) | a as u128 ^ 0x5eed;
            (entry, file)
        })
        .collect()
}

fn pair_strategy(max_len: usize) -> impl proptest::strategy::Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 1..max_len)
}

proptest! {
    /// Every entry of an arbitrary set has a proof that verifies
    /// against the common root, and the root is order-independent.
    #[test]
    fn proofs_verify_for_arbitrary_entry_sets(raw in pair_strategy(40)) {
        let pairs = entry_pairs(&raw);
        let mut index = MerkleIndex::new();
        for (&e, &f) in &pairs {
            index.insert(e, f);
        }
        // Insertion order must not matter: rebuild reversed.
        let mut reversed = MerkleIndex::new();
        for (&e, &f) in pairs.iter().rev() {
            reversed.insert(e, f);
        }
        prop_assert_eq!(index.root(), reversed.root());
        for (&e, &f) in &pairs {
            let proof = index.proof(e).expect("member entries have proofs");
            prop_assert!(proof.verify());
            prop_assert_eq!(proof.root, index.root());
            prop_assert_eq!(proof.file_hash, f);
        }
    }

    /// Any single-bit tamper with any component of a proof — the entry
    /// hash, the file hash, the root, or any path sibling — makes
    /// verification fail.
    #[test]
    fn any_tampered_proof_fails(
        raw in pair_strategy(20),
        pick in 0usize..64,
        bit in 0u32..128,
        component in 0usize..4,
    ) {
        let pairs = entry_pairs(&raw);
        let mut index = MerkleIndex::new();
        for (&e, &f) in &pairs {
            index.insert(e, f);
        }
        let entries: Vec<u128> = pairs.keys().copied().collect();
        let target = entries[pick % entries.len()];
        let mut proof = index.proof(target).unwrap();
        let flip = 1u128 << bit;
        match component {
            0 => proof.entry_hash ^= flip,
            1 => proof.file_hash ^= flip,
            2 => proof.root ^= flip,
            _ => {
                if proof.path.is_empty() {
                    // Single-entry tree: no siblings to corrupt; fall
                    // back to the root.
                    proof.root ^= flip;
                } else {
                    let i = (bit as usize) % proof.path.len();
                    proof.path[i].sibling ^= flip;
                }
            }
        }
        prop_assert!(!proof.verify(), "tampered proof must not verify");
    }

    /// Removing an entry changes the root; re-inserting restores it.
    #[test]
    fn roots_track_membership(raw in pair_strategy(20), pick in 0usize..64) {
        let pairs = entry_pairs(&raw);
        let mut index = MerkleIndex::new();
        for (&e, &f) in &pairs {
            index.insert(e, f);
        }
        let full_root = index.root();
        let entries: Vec<u128> = pairs.keys().copied().collect();
        let target = entries[pick % entries.len()];
        index.remove(target);
        prop_assert_ne!(index.root(), full_root);
        index.insert(target, pairs[&target]);
        prop_assert_eq!(index.root(), full_root);
    }
}

#[test]
fn verdict_entries_survive_truncation_at_every_byte_boundary() {
    let _serial = serial();
    let dir = temp_dir("torn-verdict");
    let k = key("t-res:3:1", 2, 1);
    let path = {
        let store = VerdictStore::open(&dir).unwrap();
        assert!(store.put(&k, &verdict(1)));
        store.entry_path(&k).unwrap()
    };
    let full = std::fs::read(&path).unwrap();
    assert!(full.len() > 10, "sanity: entry file has content");
    for keep in 0..full.len() {
        std::fs::write(&path, &full[..keep]).unwrap();
        let corrupt_before = SERVE_STORE_CORRUPT.get();
        // A fresh open (index rebuild) plus a direct get: both must
        // treat the torn entry as a miss, never panic, and the get must
        // count the corruption.
        let store = VerdictStore::open(&dir).unwrap();
        assert_eq!(
            store.merkle_len(),
            0,
            "torn entry (keep {keep}/{}) must not enter the index",
            full.len()
        );
        assert!(
            store.get(&k).is_none(),
            "torn entry (keep {keep}/{}) must be a miss",
            full.len()
        );
        assert!(
            SERVE_STORE_CORRUPT.get() > corrupt_before,
            "torn entry (keep {keep}/{}) must be counted corrupt",
            full.len()
        );
    }
    // The intact bytes still load.
    std::fs::write(&path, &full).unwrap();
    let store = VerdictStore::open(&dir).unwrap();
    assert_eq!(store.get(&k), Some(verdict(1)));
    assert_eq!(store.merkle_len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tower_entries_survive_truncation_at_every_byte_boundary() {
    let _serial = serial();
    let dir = temp_dir("torn-tower");
    std::fs::create_dir_all(&dir).unwrap();
    let towers = TowerStore::open(&dir).unwrap();
    let complex = fact::topology::Complex::standard(3).iterated_subdivision(1);
    let tower_key = act_service::TowerKey {
        affine_hash: 7,
        inputs_hash: 9,
        level: 1,
    };
    towers.store(&tower_key, &complex);
    let path = towers.entry_path(&tower_key);
    let full = std::fs::read(&path).unwrap();
    assert_eq!(towers.load(&tower_key).as_ref(), Some(&complex));
    // Tower entries are big (hex-encoded complexes); checking every
    // boundary of a multi-kilobyte file is slow without telling us more
    // than a stride does, so step through it, but pin the edges.
    let stride = (full.len() / 97).max(1);
    let mut corrupt_seen = 0u64;
    for keep in (0..full.len()).step_by(stride).chain([1, full.len() - 1]) {
        std::fs::write(&path, &full[..keep]).unwrap();
        let before = SERVE_TOWER_CORRUPT.get();
        assert!(
            towers.load(&tower_key).is_none(),
            "torn tower (keep {keep}/{}) must be a miss",
            full.len()
        );
        corrupt_seen += SERVE_TOWER_CORRUPT.get() - before;
    }
    assert!(corrupt_seen > 0, "torn tower loads are counted corrupt");
    std::fs::write(&path, &full).unwrap();
    assert_eq!(towers.load(&tower_key).as_ref(), Some(&complex));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_repairs_from_memory_and_quarantines_orphans() {
    let _serial = serial();
    let dir = temp_dir("scrub");
    let store = VerdictStore::open(&dir).unwrap();
    let k = key("t-res:3:1", 2, 1);
    assert!(store.put(&k, &verdict(1)));
    let root = store.merkle_root();
    let path = store.entry_path(&k).unwrap();

    // Corrupt the bytes on disk. The entry is still in the memory tier,
    // so a scrub repairs the file back to the committed bytes.
    std::fs::write(&path, b"{\"truncated\":").unwrap();
    let report = store.scrub(None);
    assert_eq!(report.corrupt, 1);
    assert_eq!(report.repaired, 1);
    assert_eq!(report.quarantined, 0);
    assert_eq!(store.merkle_root(), root, "repair restores the root");
    assert_eq!(store.get(&k), Some(verdict(1)));

    // A fresh store instance has no memory tier: the same corruption
    // with no fetch source quarantines the entry instead.
    std::fs::write(&path, b"{\"truncated\":").unwrap();
    let cold = VerdictStore::open(&dir).unwrap();
    let report = cold.scrub(None);
    assert_eq!(report.repaired, 0);
    assert_eq!(report.quarantined, 1);
    assert!(!path.exists(), "quarantined entry leaves the store root");
    assert_eq!(cold.merkle_len(), 0);

    // With a fetch source (standing in for a peer), the cold store
    // repairs instead of quarantining.
    let warm = VerdictStore::open(&dir).unwrap();
    let canonical = {
        let donor = VerdictStore::in_memory();
        donor.put(&k, &verdict(1));
        donor.raw_entry(k.content_hash()).unwrap()
    };
    assert!(warm.put_raw_entry(&canonical));
    std::fs::write(warm.entry_path(&k).unwrap(), b"xx").unwrap();
    let rewarm = VerdictStore::open(&dir).unwrap();
    let fetch = move |hash: u128| (hash == k.content_hash()).then(|| canonical.clone());
    let report = rewarm.scrub(Some(&fetch));
    assert_eq!(report.corrupt, 1);
    assert_eq!(report.repaired, 1);
    assert_eq!(rewarm.merkle_root(), root);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_snapshot_reports_the_merkle_root() {
    let _serial = serial();
    let store = std::sync::Arc::new(VerdictStore::in_memory());
    let scheduler = Scheduler::new(store.clone(), ServeConfig::default());
    let empty = scheduler.stats_snapshot();
    assert_eq!(empty.merkle_entries, 0);
    store.put(&key("t-res:3:1", 2, 1), &verdict(1));
    let warm = scheduler.stats_snapshot();
    assert_eq!(warm.merkle_entries, 1);
    assert_ne!(warm.merkle_root, empty.merkle_root);
    assert_eq!(warm.merkle_root, format!("{:032x}", store.merkle_root()));
}
