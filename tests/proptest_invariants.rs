//! Property-based tests of the core data-structure invariants, driven by
//! proptest.

use act_adversary::{Adversary, AgreementFunction, SetconSolver};
use act_runtime::osp_from_views;
use act_topology::{
    all_recipes, ordered_set_partitions, ColorSet, Complex, InternArena, ProcessId, Simplex,
    VertexId,
};
use proptest::prelude::*;

fn colorset(n: usize) -> impl Strategy<Value = ColorSet> {
    (0u64..(1 << n)).prop_map(ColorSet::from_bits)
}

fn adversary(n: usize) -> impl Strategy<Value = Adversary> {
    let sets = (1u64..(1 << n)).prop_map(ColorSet::from_bits);
    proptest::collection::btree_set(sets, 0..=6).prop_map(move |s| Adversary::from_live_sets(n, s))
}

proptest! {
    #[test]
    fn colorset_algebra_is_boolean(a in colorset(6), b in colorset(6), c in colorset(6)) {
        prop_assert_eq!(a.union(b).intersection(c), a.intersection(c).union(b.intersection(c)));
        prop_assert_eq!(a.minus(b).union(a.intersection(b)), a);
        prop_assert!(a.intersection(b).is_subset_of(a));
        prop_assert!(a.is_subset_of(a.union(b)));
        prop_assert_eq!(a.union(b).len() + a.intersection(b).len(), a.len() + b.len());
    }

    #[test]
    fn colorset_subsets_are_exactly_the_power_set(a in colorset(5)) {
        let subs: Vec<ColorSet> = a.subsets().collect();
        prop_assert_eq!(subs.len(), 1usize << a.len());
        for s in &subs {
            prop_assert!(s.is_subset_of(a));
        }
        let mut dedup = subs.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), subs.len());
    }

    #[test]
    fn simplex_ops_are_set_ops(xs in proptest::collection::vec(0usize..30, 0..10),
                               ys in proptest::collection::vec(0usize..30, 0..10)) {
        let a = Simplex::from_vertices(xs.iter().map(|&i| VertexId::from_index(i)));
        let b = Simplex::from_vertices(ys.iter().map(|&i| VertexId::from_index(i)));
        let u = a.union(&b);
        prop_assert!(a.is_face_of(&u) && b.is_face_of(&u));
        let i = a.intersection(&b);
        prop_assert!(i.is_face_of(&a) && i.is_face_of(&b));
        prop_assert_eq!(u.len() + i.len(), a.len() + b.len());
        prop_assert_eq!(a.minus(&b).len() + i.len(), a.len());
        prop_assert_eq!(a.intersects(&b), !i.is_empty());
    }

    #[test]
    fn osp_views_roundtrip(seed in 0usize..10_000) {
        let all = ordered_set_partitions(ColorSet::full(4));
        let osp = &all[seed % all.len()];
        prop_assert_eq!(&osp_from_views(&osp.views()), osp);
    }

    #[test]
    fn osp_views_are_monotone_in_blocks(seed in 0usize..10_000) {
        let all = ordered_set_partitions(ColorSet::full(4));
        let osp = &all[seed % all.len()];
        let views = osp.views();
        for (p, v) in &views {
            prop_assert!(v.contains(*p));
            for (q, w) in &views {
                if v.contains(*q) {
                    prop_assert!(w.is_subset_of(*v));
                }
            }
        }
    }

    #[test]
    fn setcon_is_monotone_and_bounded(a in adversary(4)) {
        let alpha = AgreementFunction::of_adversary(&a);
        prop_assert!(alpha.validate().is_ok());
        prop_assert!(alpha.has_bounded_decrease());
        let full = ColorSet::full(4);
        prop_assert_eq!(alpha.alpha(full), a.setcon());
    }

    #[test]
    fn superset_closure_brings_csize_equal_setcon(a in adversary(4)) {
        // Close any adversary under supersets: then csize = setcon.
        if !a.is_empty() {
            let closed = Adversary::superset_closure(4, a.live_sets());
            prop_assert!(closed.is_superset_closed());
            prop_assert!(closed.is_fair());
            prop_assert_eq!(closed.setcon(), closed.csize());
        }
    }

    #[test]
    fn symmetric_adversaries_match_size_formula(sizes in proptest::collection::btree_set(1usize..=4, 0..=4)) {
        let a = Adversary::symmetric(4, sizes.iter().copied());
        prop_assert!(a.is_symmetric());
        prop_assert!(a.is_fair());
        prop_assert_eq!(a.setcon(), sizes.len());
    }

    #[test]
    fn restrictions_commute_with_setcon_solver(a in adversary(4), p in colorset(4), q in colorset(4)) {
        let q = q.intersection(p);
        let mut solver = SetconSolver::new(&a);
        let direct = solver.setcon_touching(p, q);
        // The same value through explicit restriction.
        let restricted = a.restrict_touching(p, q);
        prop_assert_eq!(direct, restricted.setcon());
    }

    #[test]
    fn canonical_form_is_perm_invariant_and_idempotent(
        n in 2usize..=4,
        fi in 0usize..1000,
        gi in 0usize..24,
    ) {
        use act_topology::{symmetry_group, LabelMatching};
        let chr = Complex::standard(n).chromatic_subdivision();
        let group = symmetry_group(&chr, LabelMatching::Strict);
        let facet = &chr.facets()[fi % chr.facet_count()];
        let action = group.element(gi % group.order());
        let image = action.apply_simplex(chr.level(), facet);
        let canon = group.canonical_form(facet);
        // Constant on the orbit: a randomly permuted facet canonicalizes
        // to the same representative…
        prop_assert_eq!(&group.canonical_form(&image), &canon);
        // …and canonicalizing a canonical form is the identity.
        prop_assert_eq!(&group.canonical_form(&canon), &canon);
    }

    #[test]
    fn subdivision_carriers_are_consistent(seed in 0u64..500) {
        // Pick a pseudo-random facet of Chr² s and check carrier algebra.
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let facet = &chr2.facets()[(seed as usize) % chr2.facet_count()];
        for face in facet.non_empty_faces() {
            let carrier1 = chr2.carrier_in_parent(&face);
            prop_assert!(chr2.parent().unwrap().contains_simplex(&carrier1));
            // carrier composition: colors of the base carrier match.
            let via_parent = chr2.parent().unwrap().carrier_colors(&carrier1);
            prop_assert_eq!(chr2.carrier_colors(&face), via_parent);
        }
    }

    #[test]
    fn recipes_resolve_and_roundtrip(seed in 0u64..500) {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let facet = chr2.facets()[(seed as usize) % chr2.facet_count()].clone();
        let recipe = chr2.recipe_of_facet(&facet, 2);
        let base_facet = Complex::standard(3).facets()[0].clone();
        let resolved = chr2.simplex_for_recipe(&base_facet, &recipe).unwrap();
        prop_assert_eq!(resolved, facet);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn serial_and_parallel_chr_builds_are_identical(mask in 1u64..(1 << 13),
                                                    threads in 2usize..6) {
        // A random sub-complex of Chr s as input: its subdivision must be
        // byte-identical — same interned vertex tables, same ids, same
        // facet order — for every worker-thread count.
        let chr = Complex::standard(3).chromatic_subdivision();
        let facets: Vec<_> = chr
            .facets()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, f)| f.clone())
            .collect();
        let input = chr.sub_complex(facets);
        let serial = input.chromatic_subdivision_threaded(1);
        let parallel = input.chromatic_subdivision_threaded(threads);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.facets(), parallel.facets());
    }

    #[test]
    fn serial_and_parallel_patterned_builds_are_identical(seed in 0u64..10_000,
                                                          threads in 2usize..6,
                                                          depth in 1usize..3) {
        // A pseudo-random recipe subset (deterministic in `seed`), applied
        // to the 13 facets of Chr s; serial and parallel builds of the
        // patterned subdivision must agree exactly, including the
        // intermediate levels.
        let input = Complex::standard(3).chromatic_subdivision();
        let pick = move |colors: ColorSet| {
            let all = all_recipes(colors, depth);
            let k = all.len();
            all.into_iter()
                .enumerate()
                .filter(|(i, _)| (seed >> (i % 13)) & 1 == 1 || *i == (seed as usize) % k)
                .map(|(_, r)| r)
                .collect::<Vec<_>>()
        };
        let serial = input.subdivide_patterned_threaded(depth, pick, 1);
        let parallel = input.subdivide_patterned_threaded(depth, pick, threads);
        prop_assert_eq!(&serial, &parallel);
        if depth == 2 {
            prop_assert_eq!(serial.parent().unwrap(), parallel.parent().unwrap());
        }
    }

    #[test]
    fn insertion_order_does_not_change_the_complex(rot in 0usize..13,
                                                   threads in 1usize..5) {
        // Rotating the input facet list permutes the interned ids but
        // yields the same complex structurally, serial or parallel.
        let chr = Complex::standard(3).chromatic_subdivision();
        let mut facets = chr.facets().to_vec();
        let shift = rot % facets.len();
        facets.rotate_left(shift);
        let rotated = chr.sub_complex(facets);
        let a = rotated.chromatic_subdivision_threaded(threads);
        let b = chr.chromatic_subdivision_threaded(1);
        prop_assert!(a.same_complex(&b));
    }

    #[test]
    fn interning_round_trips(keys in proptest::collection::vec(
        (0usize..4, proptest::collection::vec(0usize..12, 1..4)), 1..40)) {
        // intern ∘ resolve = id: resolving an interned id recovers the
        // canonical key, and looking the key back up returns the id.
        let mut arena = InternArena::new();
        let mut interned = Vec::new();
        for (c, verts) in &keys {
            let color = ProcessId::new(*c);
            let carrier = Simplex::from_vertices(verts.iter().map(|&i| VertexId::from_index(i)));
            let id = arena.intern(color, carrier.clone(), Simplex::empty(), ColorSet::EMPTY);
            interned.push((color, carrier, id));
        }
        for (color, carrier, id) in &interned {
            let (rc, rcar) = arena.resolve(*id).unwrap();
            prop_assert_eq!(rc, *color);
            prop_assert_eq!(rcar, carrier);
            prop_assert_eq!(arena.lookup(*color, carrier), Some(*id));
        }
        // Ids are dense: one per distinct key, in first-occurrence order.
        let distinct: std::collections::BTreeSet<_> =
            interned.iter().map(|(c, s, _)| (*c, s.clone())).collect();
        prop_assert_eq!(arena.len(), distinct.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn afek_snapshot_histories_are_atomic(seed in 0u64..1_000_000,
                                          writes in 1usize..4,
                                          n in 2usize..5) {
        use act_runtime::{run_adversarial, AfekSystem};
        use rand::SeedableRng;

        let scripts: Vec<Vec<u32>> = (0..n)
            .map(|i| (0..writes).map(|w| (w * n + i + 1) as u32).collect())
            .collect();
        let mut sys = AfekSystem::new(scripts);
        let participants = ColorSet::full(n);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let outcome =
            run_adversarial(&mut sys, participants, participants, &mut rng, |_| 0, 400_000);
        prop_assert!(outcome.all_correct_terminated);
        // Comparability of all scans, pointwise by value monotonicity.
        let leq = |a: &Vec<Option<u32>>, b: &Vec<Option<u32>>| {
            a.iter().zip(b).all(|(x, y)| match (x, y) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(x), Some(y)) => x <= y,
            })
        };
        let scans = sys.scans();
        for (i, s1) in scans.iter().enumerate() {
            for s2 in &scans[i + 1..] {
                prop_assert!(leq(&s1.view, &s2.view) || leq(&s2.view, &s1.view));
            }
        }
    }

    #[test]
    fn algorithm_one_traces_replay_deterministically(seed in 0u64..1_000_000) {
        use act_adversary::AgreementFunction;
        use act_runtime::{run_adversarial, Trace};
        use fact::AlgorithmOneSystem;
        use rand::SeedableRng;

        let alpha = AgreementFunction::k_concurrency(3, 2);
        let full = ColorSet::full(3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        let outcome = run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 300_000);
        prop_assert!(outcome.all_correct_terminated);
        let trace = Trace::from_outcome(full, &outcome);
        let mut replayed = AlgorithmOneSystem::new(&alpha, full);
        let terminated = trace.replay(&mut replayed).expect("recorded trace is in range");
        prop_assert_eq!(terminated, outcome.terminated);
        prop_assert_eq!(replayed.outputs(), sys.outputs());
    }

    #[test]
    fn betti_zero_equals_components_on_random_subcomplexes(mask in 1u64..(1 << 13)) {
        use act_topology::{betti_numbers, connected_components};
        let chr = Complex::standard(3).chromatic_subdivision();
        let facets: Vec<_> = chr
            .facets()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, f)| f.clone())
            .collect();
        let sub = chr.sub_complex(facets);
        let betti = betti_numbers(&sub);
        prop_assert_eq!(betti[0], connected_components(&sub));
    }

    #[test]
    fn random_fair_adversaries_admit_safe_algorithm_runs(a in adversary(3), seed in 0u64..1_000_000) {
        use act_affine::fair_affine_task;
        use act_runtime::run_adversarial;
        use fact::{outputs_to_simplex, AlgorithmOneSystem};
        use rand::SeedableRng;

        if a.setcon() == 0 || !a.is_fair() {
            return Ok(());
        }
        let alpha = AgreementFunction::of_adversary(&a);
        let r_a = fair_affine_task(&alpha);
        let full = ColorSet::full(3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut sys = AlgorithmOneSystem::new(&alpha, full);
        let outcome = run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 200_000);
        prop_assert!(outcome.all_correct_terminated);
        let simplex = outputs_to_simplex(r_a.complex(), &sys.outputs()).unwrap();
        prop_assert!(r_a.complex().contains_simplex(&simplex));
        let _ = ProcessId::new(0);
    }
}
