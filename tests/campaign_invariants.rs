//! Property tests for the campaign runner's mining pipeline (PR 6):
//! the auto-shrinker always reproduces the original violation under
//! replay, failure dedup never merges runs that violated different
//! invariants, and the exhaustive tier's streamed BFS enumeration is
//! exhaustive — its run count matches the analytic schedule count the
//! golden-count suite pins.

use std::path::PathBuf;
use std::sync::OnceLock;

use act_campaign::{
    default_invariants, evaluate_trace, run_campaign_in, shrink_violation, violation_signature,
    CampaignConfig, CampaignContext, Scope, Violation, INVARIANT_LIVENESS,
};
use act_runtime::{run_adversarial, Trace, TraceArtifact};
use fact::AlgorithmOneSystem;
use rand::SeedableRng;

/// One context per process: every test shares the t-res:3:1 model
/// (solver check off — these tests exercise the mining pipeline, not
/// the verdict oracle).
fn ctx() -> &'static CampaignContext {
    static CTX: OnceLock<CampaignContext> = OnceLock::new();
    CTX.get_or_init(|| CampaignContext::new("t-res:3:1", false).expect("context builds"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("act-campaign-inv-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a genuine liveness violation by cutting a full-participation
/// adversarial run off after `max_steps` steps.
fn truncated_violation(seed: u64, max_steps: usize) -> Violation {
    let ctx = ctx();
    let mut sys = AlgorithmOneSystem::new(&ctx.alpha, ctx.participants);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let outcome = run_adversarial(
        &mut sys,
        ctx.participants,
        ctx.participants,
        &mut rng,
        |_| 0,
        max_steps,
    );
    assert!(
        !outcome.all_correct_terminated,
        "{max_steps} steps must be too few for Algorithm 1 to decide"
    );
    Violation {
        index: seed,
        violated: vec![INVARIANT_LIVENESS.to_string()],
        trace: Trace::from_outcome(ctx.participants, &outcome),
        max_steps,
        injected: true,
    }
}

#[test]
fn shrinker_output_always_reproduces_the_original_violation() {
    let ctx = ctx();
    let invariants = default_invariants();
    for seed in 0..8 {
        let violation = truncated_violation(seed, 3 + (seed as usize % 5));
        let shrunk = shrink_violation(ctx, &invariants, &violation);
        let replayed = evaluate_trace(ctx, &invariants, &shrunk, violation.max_steps)
            .expect("shrunk trace replays");
        for name in &violation.violated {
            assert!(
                replayed.contains(name),
                "shrunk trace of seed {seed} lost the original violation {name}: {replayed:?}"
            );
        }
        assert!(
            shrunk.steps.len() <= violation.trace.steps.len(),
            "shrinking never grows the trace"
        );
        // A full-participation liveness violation has a schedule-free
        // minimal form: nobody moves, nobody decides.
        assert!(
            shrunk.steps.is_empty(),
            "greedy deletion reaches the empty schedule, got {:?}",
            shrunk.steps
        );
    }
}

#[test]
fn dedup_never_merges_runs_with_distinct_violated_invariants() {
    let violation = truncated_violation(11, 4);
    let model = ctx().spec.canonical_string();
    let liveness_only = violation_signature(&model, &violation.trace, &violation.violated);
    let with_monotonicity = violation_signature(
        &model,
        &violation.trace,
        &[
            INVARIANT_LIVENESS.to_string(),
            "correct-set-monotonicity".to_string(),
        ],
    );
    assert_ne!(
        liveness_only, with_monotonicity,
        "identical traces with different violated sets must not share a signature"
    );
}

#[test]
fn campaign_emits_one_deduped_shrunk_artifact_for_injected_violations() {
    let dir = temp_dir("artifact");
    let mut config = CampaignConfig::new("t-res:3:1");
    config.scope = Scope::Sampled { samples: 600 };
    config.seed = 99;
    config.workers = 2;
    config.batch = 200;
    config.fault_rate_percent = 30;
    config.solver_check = false;
    config.artifacts = Some(dir.join("artifacts"));
    config.inject_liveness = vec![17, 404];
    let report = run_campaign_in(ctx(), &config).expect("campaign completes");
    assert_eq!(report.coverage.violations, 2);
    assert_eq!(report.coverage.injected_violations, 2);
    assert_eq!(report.coverage.deduped, 1, "the second violation dedups");
    assert_eq!(report.new_artifacts.len(), 1);
    assert_eq!(report.artifact_sigs.len(), 1);

    // The artifact replays to the same violation it documents.
    let artifact = TraceArtifact::load(&report.new_artifacts[0]).expect("artifact loads");
    assert_eq!(artifact.reason, format!("campaign:{INVARIANT_LIVENESS}"));
    let invariants = default_invariants();
    let replayed = evaluate_trace(
        ctx(),
        &invariants,
        &artifact.trace,
        artifact.max_steps as usize,
    )
    .expect("artifact trace replays");
    assert!(replayed.contains(&INVARIANT_LIVENESS.to_string()));
}

/// The exhaustive tier is exhaustive: with a depth bound no process can
/// decide within, every length-`depth` word over the participants is
/// one run, so the count is the analytic `n^depth` — the same closed
/// form the golden-count suite pins for `explore_schedules`.
#[test]
fn exhaustive_bfs_matches_the_analytic_schedule_count() {
    for (depth, expected) in [(2usize, 9u64), (4, 81)] {
        let mut config = CampaignConfig::new("t-res:3:1");
        config.scope = Scope::Exhaustive { max_depth: depth };
        config.solver_check = false;
        config.batch = 25;
        let report = run_campaign_in(ctx(), &config).expect("exhaustive campaign completes");
        assert!(report.done);
        assert_eq!(
            report.coverage.runs, expected,
            "depth {depth}: expected 3^{depth} = {expected} enumerated runs"
        );
        assert_eq!(
            report.coverage.violations, 0,
            "depth-truncated runs are not liveness violations"
        );
    }
}

/// Cross-check against the scheduler's collecting explorer: the
/// campaign's streamed enumeration visits exactly as many runs as
/// `explore_schedules` reports for the same bounds.
#[test]
fn exhaustive_tier_agrees_with_the_collecting_explorer() {
    let ctx = ctx();
    let depth = 3;
    let sys = AlgorithmOneSystem::new(&ctx.alpha, ctx.participants);
    let collected = act_runtime::explore_schedules(
        || sys.clone(),
        ctx.participants,
        ctx.participants,
        depth,
        1_000_000,
        |_, _| {},
    ) as u64;
    let mut config = CampaignConfig::new("t-res:3:1");
    config.scope = Scope::Exhaustive { max_depth: depth };
    config.solver_check = false;
    let report = run_campaign_in(ctx, &config).expect("exhaustive campaign completes");
    assert_eq!(report.coverage.runs, collected);
}

/// With the solver oracle armed, a sampled campaign on a solvable model
/// mines no violations: every live run's outputs land in R_A (the
/// verdict-agreement invariant holds) and fair schedules terminate.
#[test]
fn solver_armed_campaign_mines_no_violations_on_a_solvable_model() {
    let ctx_solver = CampaignContext::new("t-res:3:1", true).expect("context with solver");
    assert_eq!(
        ctx_solver.solver_solvable,
        Some(true),
        "2-set consensus is solvable under t-res:3:1 via R_A"
    );
    let mut config = CampaignConfig::new("t-res:3:1");
    config.scope = Scope::Sampled { samples: 300 };
    config.seed = 5;
    config.workers = 2;
    config.fault_rate_percent = 40;
    let report = run_campaign_in(&ctx_solver, &config).expect("campaign completes");
    assert_eq!(report.coverage.violations, 0, "no genuine violations exist");
    assert!(report.coverage.live >= 295, "nearly all runs are live");
    assert!(!report.coverage.facets.is_empty());
}

/// The quotient oracle runs the solver under both direct and
/// orbit-shared tower expansion and demands verdict parity. Parity is a
/// theorem, so building the oracle context must succeed and must arm
/// exactly the same verdict the single-expansion check arms.
#[test]
fn quotient_oracle_context_agrees_with_the_single_expansion_check() {
    let with_oracle = CampaignContext::new_with_oracle("t-res:3:1", true, true)
        .expect("oracle context builds: direct and quotiented verdicts agree");
    assert_eq!(with_oracle.solver_solvable, Some(true));

    let without = CampaignContext::new("t-res:3:1", true).expect("plain context builds");
    assert_eq!(with_oracle.solver_solvable, without.solver_solvable);

    // Without the solver check the oracle has nothing to compare and is
    // a no-op rather than an error.
    let unarmed = CampaignContext::new_with_oracle("t-res:3:1", false, true)
        .expect("oracle without solver check is a no-op");
    assert_eq!(unarmed.solver_solvable, None);
}

/// The campaign rejects a checkpoint written by a different campaign.
#[test]
fn resume_rejects_a_foreign_fingerprint() {
    let dir = temp_dir("foreign");
    let path = dir.join("ckpt.jsonl");
    let mut config = CampaignConfig::new("t-res:3:1");
    config.scope = Scope::Sampled { samples: 50 };
    config.batch = 25;
    config.solver_check = false;
    config.checkpoint = Some(path.clone());
    run_campaign_in(ctx(), &config).expect("first campaign completes");

    let mut other = config.clone();
    other.seed += 1;
    other.resume = true;
    let err = match run_campaign_in(ctx(), &other) {
        Err(err) => err,
        Ok(_) => panic!("resume against a foreign checkpoint must fail"),
    };
    assert!(err.contains("fingerprint mismatch"), "{err}");
}
