//! The α-model family end to end: agreement-function lattice laws
//! under proptest, spec round-trips across the adversary zoo, and the
//! serve-path acceptance checks — an `alpha:` query resolves through
//! the scheduler and verdict store exactly like an adversary spec, and
//! `alpha:(A)` (the α-model carved out of an adversary `A`) answers
//! identically to `A` itself.

use std::sync::{Arc, Mutex, MutexGuard};

use act_adversary::{zoo, Adversary, AgreementFunction};
use act_service::{
    Scheduler, ServeConfig, Served, SolveQuery, Submitted, VerdictStore, SERVE_ENGINE_RUNS,
    SERVE_HIT,
};
use act_topology::ColorSet;
use fact::{ModelSpec, TaskSpec};
use proptest::prelude::*;

/// Serializes the tests that diff process-global counters.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn colorset(n: usize) -> impl Strategy<Value = ColorSet> {
    (0u64..(1 << n)).prop_map(ColorSet::from_bits)
}

fn adversary(n: usize) -> impl Strategy<Value = Adversary> {
    let sets = (1u64..(1 << n)).prop_map(ColorSet::from_bits);
    proptest::collection::btree_set(sets, 0..=6).prop_map(move |s| Adversary::from_live_sets(n, s))
}

/// The `alpha:N:<table>` spelling of an agreement function.
fn alpha_spec_of(alpha: &AgreementFunction) -> String {
    let digits: String = alpha.table().iter().map(|d| d.to_string()).collect();
    format!("alpha:{}:{digits}", alpha.num_processes())
}

/// The `custom:N:{…};…` spelling of an adversary's live sets.
fn custom_spec_of(a: &Adversary) -> String {
    let sets: Vec<String> = a
        .live_sets()
        .map(|cs| {
            let names: Vec<String> = cs.iter().map(|p| format!("p{}", p.index() + 1)).collect();
            format!("{{{}}}", names.join(","))
        })
        .collect();
    format!("custom:{}:{}", a.num_processes(), sets.join(";"))
}

proptest! {
    #[test]
    fn alpha_is_monotone_under_subset(a in adversary(4), p in colorset(4), q in colorset(4)) {
        // The law as stated: P ⊆ P' ⇒ α(P) ≤ α(P'), probed with an
        // arbitrary pair through its meet and join (p∩q ⊆ p ⊆ p∪q).
        let alpha = AgreementFunction::of_adversary(&a);
        let meet = p.intersection(q);
        let join = p.union(q);
        prop_assert!(alpha.alpha(meet) <= alpha.alpha(p));
        prop_assert!(alpha.alpha(p) <= alpha.alpha(join));
        prop_assert!(alpha.alpha(p) <= p.len());
    }

    #[test]
    fn alpha_decrease_is_bounded_by_the_departures(a in adversary(4), p in colorset(4), q in colorset(4)) {
        // Bounded decrease, Section 5.3: α(P \ Q) ≥ α(P) − |Q| — losing
        // |Q| processes costs at most |Q| agreement power.
        let alpha = AgreementFunction::of_adversary(&a);
        let q = q.intersection(p);
        prop_assert!(alpha.alpha(p.minus(q)) + q.len() >= alpha.alpha(p));
        prop_assert!(alpha.has_bounded_decrease());
    }

    #[test]
    fn alpha_tables_round_trip_through_from_table(a in adversary(4)) {
        // `of_adversary → table → from_table` is the identity, and the
        // validator accepts every table that setcon produces.
        let alpha = AgreementFunction::of_adversary(&a);
        prop_assert!(alpha.validate().is_ok());
        let back = AgreementFunction::from_table(4, alpha.table().to_vec());
        prop_assert_eq!(back.unwrap(), alpha);
    }
}

#[test]
fn zoo_alpha_specs_round_trip_and_stay_stable() {
    // Across the fair zoo at n ≤ 4: `alpha:(A)` parses, canonicalizes
    // to itself (stability — re-rendering a parsed spec is a fixpoint),
    // and reproduces `A`'s agreement function exactly.
    let mut models: Vec<Adversary> = zoo::all_fair_adversaries(3);
    for spec in ["wait-free:4", "t-res:4:1", "t-res:4:2", "k-of:4:2"] {
        models.push(ModelSpec::parse(spec, false).unwrap().adversary().unwrap());
    }
    for a in &models {
        let alpha = AgreementFunction::of_adversary(a);
        let spec = alpha_spec_of(&alpha);
        let parsed = ModelSpec::parse(&spec, false).unwrap();
        assert_eq!(parsed.canonical_string(), spec, "{spec} is a fixpoint");
        assert_eq!(parsed.agreement_function(), alpha, "{spec} α round-trips");
        assert!(
            parsed.adversary().is_err(),
            "α-models deliberately name no adversary"
        );
    }
}

fn alpha_query(spec: &str, k: usize) -> SolveQuery {
    let model = ModelSpec::parse(spec, false).unwrap();
    let task = TaskSpec::set_consensus(model.num_processes(), k).unwrap();
    SolveQuery {
        model,
        task,
        iters: 1,
        deadline_ms: None,
    }
}

fn served_verdict(sched: &Scheduler, q: SolveQuery) -> (String, &'static str) {
    let served = match sched.submit(q) {
        Submitted::Ready(s) => s,
        Submitted::Pending(rx) => rx.recv().unwrap(),
        other => panic!("query must be admitted, got {other:?}"),
    };
    match served {
        Served::Authoritative { verdict, source } => (verdict.verdict, source),
        other => panic!("expected an authoritative verdict, got {other:?}"),
    }
}

#[test]
fn alpha_queries_persist_and_hit_the_store_on_the_second_ask() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("fact-alpha-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = alpha_spec_of(&AgreementFunction::k_concurrency(3, 2));

    let first = {
        let store = Arc::new(VerdictStore::open(&dir).unwrap());
        let sched = Scheduler::new(store, ServeConfig::default());
        sched.start_workers();
        let engine_before = SERVE_ENGINE_RUNS.get();
        let (verdict, source) = served_verdict(&sched, alpha_query(&spec, 2));
        assert_eq!(source, "engine", "a cold store computes");
        assert_eq!(SERVE_ENGINE_RUNS.get() - engine_before, 1);
        sched.drain();
        verdict
    };

    // A second scheduler lifetime over the same directory: the α
    // verdict must come back from the store, no engine run.
    let store = Arc::new(VerdictStore::open(&dir).unwrap());
    let sched = Scheduler::new(store, ServeConfig::default());
    sched.start_workers();
    let hits_before = SERVE_HIT.get();
    let engine_before = SERVE_ENGINE_RUNS.get();
    let (verdict, source) = served_verdict(&sched, alpha_query(&spec, 2));
    assert_eq!(source, "store");
    assert_eq!(verdict, first);
    assert_eq!(SERVE_HIT.get() - hits_before, 1);
    assert_eq!(SERVE_ENGINE_RUNS.get() - engine_before, 0);
    sched.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn alpha_verdicts_agree_with_their_adversary_specs_across_the_zoo() {
    // The tentpole cross-check: for every fair adversary A in the zoo
    // at n ≤ 4, `alpha:(A)` and A's own spec answer every k-set
    // consensus query identically through the full scheduler path —
    // distinct store keys, one truth.
    let sched = Scheduler::new(Arc::new(VerdictStore::in_memory()), ServeConfig::default());
    sched.start_workers();
    // The empty adversary admits no runs, so it has no custom spelling
    // (and nothing to solve); every other fair adversary is covered.
    let mut specs: Vec<String> = zoo::all_fair_adversaries(3)
        .iter()
        .filter(|a| a.live_sets().next().is_some())
        .map(custom_spec_of)
        .collect();
    specs.extend(["t-res:4:1".to_string(), "k-of:4:2".to_string()]);
    for spec in &specs {
        let model = ModelSpec::parse(spec, false).unwrap();
        let n = model.num_processes();
        let alpha_spec = alpha_spec_of(&model.agreement_function());
        for k in 1..n {
            let (direct, _) = served_verdict(&sched, alpha_query(spec, k));
            let (via_alpha, _) = served_verdict(&sched, alpha_query(&alpha_spec, k));
            assert_eq!(
                direct, via_alpha,
                "{spec} and {alpha_spec} disagree on {k}-set consensus"
            );
        }
    }
    sched.drain();
}
