//! Golden-fixture backward compatibility for the trace artifact format.
//!
//! Each PR that touched the serialized [`Trace`] schema left optional
//! fields behind: the original format is bare `{participants, steps}`,
//! PR 2 wrapped it in a [`TraceArtifact`], PR 3 added the adversarial
//! context (`correct`, `crash_budgets`), and the chaos layer added
//! `fault_plan`. Every historical format must keep deserializing and
//! replaying — regression artifacts on disk outlive the code that wrote
//! them.

use act_runtime::{FaultEvent, FaultPlan, IsSystem, Trace, TraceArtifact};
use act_topology::ColorSet;

const TRACE_PR1: &str = include_str!("fixtures/trace_pr1.json");
const ARTIFACT_PR2: &str = include_str!("fixtures/artifact_pr2.json");
const ARTIFACT_PR3: &str = include_str!("fixtures/artifact_pr3.json");
const ARTIFACT_PR4: &str = include_str!("fixtures/artifact_pr4.json");

fn fresh() -> IsSystem<u8> {
    IsSystem::new(vec![Some(1), Some(2), Some(3)])
}

/// Replaying the same trace twice must reconstruct identical outcomes:
/// the schedule alone determines the run.
fn assert_deterministic_replay(trace: &Trace) {
    let a = trace.replay_outcome(&mut fresh()).expect("fixture replays");
    let b = trace.replay_outcome(&mut fresh()).expect("fixture replays");
    assert_eq!(a, b, "replay is deterministic");
    assert!(a.terminated.is_subset_of(trace.participants));
}

#[test]
fn pr1_bare_trace_deserializes_and_replays() {
    let trace: Trace = serde_json::from_str(TRACE_PR1).expect("PR 1 schema parses");
    assert_eq!(trace.participants, ColorSet::full(3));
    assert_eq!(trace.len(), 6);
    assert_eq!(trace.correct, None, "predates the correct field");
    assert_eq!(trace.crash_budgets, None);
    assert_eq!(trace.fault_plan, None);
    assert_eq!(trace.correct_terminated(ColorSet::full(3)), None);
    assert_deterministic_replay(&trace);
}

#[test]
fn pr2_artifact_without_context_deserializes_and_replays() {
    let artifact: TraceArtifact = serde_json::from_str(ARTIFACT_PR2).expect("PR 2 schema parses");
    assert_eq!(artifact.schema_version, 1);
    assert_eq!(artifact.reason, "liveness-failure");
    assert_eq!(artifact.max_steps, 2);
    assert_eq!(artifact.trace.correct, None);
    assert_eq!(artifact.trace.crash_budgets, None);
    assert_eq!(artifact.trace.fault_plan, None);
    assert_deterministic_replay(&artifact.trace);
    // Two steps cannot finish a 3-process IS round: the recorded failure
    // still reproduces on replay.
    let outcome = artifact
        .trace
        .replay_outcome(&mut fresh())
        .expect("fixture replays");
    assert!(outcome.terminated.len() < 3);
}

#[test]
fn pr3_artifact_with_adversarial_context_deserializes_and_replays() {
    let artifact: TraceArtifact = serde_json::from_str(ARTIFACT_PR3).expect("PR 3 schema parses");
    let trace = &artifact.trace;
    assert_eq!(trace.correct, Some(ColorSet::from_indices([0, 2])));
    assert_eq!(trace.crash_budgets, Some(vec![None, Some(1), None]));
    assert_eq!(trace.fault_plan, None, "predates the chaos layer");
    assert_deterministic_replay(trace);
    // The replayed outcome is judged against the *recorded* correct set,
    // and the recorded budgets ride along.
    let outcome = trace.replay_outcome(&mut fresh()).expect("fixture replays");
    assert_eq!(outcome.correct, ColorSet::from_indices([0, 2]));
    assert_eq!(outcome.crash_budgets, vec![None, Some(1), None]);
    assert_eq!(
        outcome.all_correct_terminated,
        outcome.correct.is_subset_of(outcome.terminated)
    );
}

#[test]
fn pr4_artifact_with_fault_plan_deserializes_and_replays() {
    let artifact: TraceArtifact = serde_json::from_str(ARTIFACT_PR4).expect("PR 4 schema parses");
    let trace = &artifact.trace;
    assert_eq!(artifact.reason, "fault-liveness-failure");
    let plan = trace.fault_plan.clone().expect("plan recorded");
    assert_eq!(
        plan,
        FaultPlan {
            seed: 42,
            events: vec![
                FaultEvent::Crash {
                    step: 2,
                    process: 2
                },
                FaultEvent::Stall {
                    process: 1,
                    from_step: 0,
                    duration: 2
                },
                FaultEvent::Perturb { step: 1, offset: 1 },
            ],
        }
    );
    // Replay needs only the schedule — the plan already shaped it, so a
    // replay never re-injects and reproduces the run byte for byte.
    assert_deterministic_replay(trace);
}

#[test]
fn every_fixture_round_trips_through_the_current_serializer() {
    // Re-serializing a historical artifact with today's code and parsing
    // it back must lose nothing: the current schema is a superset.
    for (name, text) in [
        ("pr2", ARTIFACT_PR2),
        ("pr3", ARTIFACT_PR3),
        ("pr4", ARTIFACT_PR4),
    ] {
        let artifact: TraceArtifact = serde_json::from_str(text).expect(name);
        let rewritten = serde_json::to_string(&artifact).expect(name);
        let back: TraceArtifact = serde_json::from_str(&rewritten).expect(name);
        assert_eq!(back, artifact, "{name} survives a modern round trip");
    }
    let trace: Trace = serde_json::from_str(TRACE_PR1).expect("pr1");
    let back: Trace =
        serde_json::from_str(&serde_json::to_string(&trace).expect("pr1")).expect("pr1");
    assert_eq!(back, trace, "pr1 survives a modern round trip");
}
