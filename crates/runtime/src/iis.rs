//! The iterated immediate snapshot (IIS) runtime.
//!
//! Processes proceed through a sequence of independent one-shot IS
//! memories, running the full-information protocol: the value submitted to
//! round `r` is the output of round `r − 1`. A finite IIS run is thus
//! described, round by round, by an ordered set partition — and corresponds
//! to exactly one facet of `Chr^m s` (Section 2 of the paper).
//!
//! Rounds can be *executed* (the Borowsky–Gafni protocol under a scheduler,
//! [`run_iis_with_bg`]) or *forced* (oracle OSPs, [`random_osp`]); both
//! yield OSP sequences that [`facet_of_run`] resolves to simplices of the
//! iterated subdivision.

use act_topology::{ColorSet, Complex, Osp, ProcessId, Simplex};
use rand::Rng;

use crate::immediate::{osp_from_views, IsSystem};
use crate::scheduler::run_adversarial;

/// Samples a uniform-ish random ordered set partition of `ground`:
/// a random permutation cut into blocks at independently chosen points.
///
/// # Panics
///
/// Panics if `ground` is empty.
pub fn random_osp<R: Rng>(ground: ColorSet, rng: &mut R) -> Osp {
    assert!(!ground.is_empty(), "cannot partition the empty set");
    let mut procs: Vec<ProcessId> = ground.iter().collect();
    // Fisher–Yates shuffle.
    for i in (1..procs.len()).rev() {
        let j = rng.gen_range(0..=i);
        procs.swap(i, j);
    }
    let mut blocks = Vec::new();
    let mut current = ColorSet::EMPTY;
    for (i, p) in procs.iter().enumerate() {
        current = current.with(*p);
        let cut = i + 1 == procs.len() || rng.gen_bool(0.5);
        if cut {
            blocks.push(current);
            current = ColorSet::EMPTY;
        }
    }
    Osp::new(blocks).expect("blocks are disjoint and non-empty by construction")
}

/// Executes `rounds` IIS rounds among `participants` by running the
/// Borowsky–Gafni immediate-snapshot protocol under a random schedule for
/// each round, and returns the per-round ordered set partitions.
///
/// In the IIS model there are no failures: every participant completes
/// every round.
///
/// # Panics
///
/// Panics if `participants` is empty or a round fails to terminate within
/// the internal step bound (impossible for the wait-free BG protocol).
pub fn run_iis_with_bg<R: Rng>(
    n: usize,
    participants: ColorSet,
    rounds: usize,
    rng: &mut R,
) -> Vec<Osp> {
    assert!(
        !participants.is_empty(),
        "IIS needs at least one participant"
    );
    let mut out = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        // Full information: the concrete payloads do not affect the run
        // structure, so round inputs are just process ids.
        let inputs: Vec<Option<u8>> = (0..n)
            .map(|i| participants.contains(ProcessId::new(i)).then_some(i as u8))
            .collect();
        let mut sys = IsSystem::new(inputs);
        let outcome = run_adversarial(&mut sys, participants, participants, rng, |_| 0, 100_000);
        assert!(
            outcome.all_correct_terminated,
            "BG immediate snapshot is wait-free"
        );
        let views: Vec<(ProcessId, ColorSet)> = sys
            .views()
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|view| (ProcessId::new(i), view)))
            .collect();
        out.push(osp_from_views(&views));
    }
    out
}

/// Resolves the facet of `complex` (a level-`m` subdivision of the standard
/// simplex) reached by the IIS run described by `rounds` (one OSP per
/// round, all over the same participant set).
///
/// Returns `None` when the run leaves `complex` (possible when `complex`
/// is a strict sub-complex such as an iterated affine task).
///
/// # Panics
///
/// Panics if the number of rounds differs from the complex's level or the
/// base is not the standard simplex.
pub fn facet_of_run(complex: &Complex, rounds: &[Osp]) -> Option<Simplex> {
    let base = complex.base().clone();
    assert_eq!(
        base.num_vertices(),
        complex.num_processes(),
        "IIS runs are resolved over the standard simplex"
    );
    let base_facet = base.facets()[0].clone();
    let candidate = complex.simplex_for_recipe(&base_facet, rounds)?;
    complex.contains_simplex(&candidate).then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_osp_is_valid() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let ground = ColorSet::full(5);
        for _ in 0..200 {
            let osp = random_osp(ground, &mut rng);
            assert_eq!(osp.ground(), ground);
        }
    }

    #[test]
    fn random_osp_hits_every_shape_eventually() {
        use act_topology::ordered_set_partitions;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let ground = ColorSet::full(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            seen.insert(random_osp(ground, &mut rng));
        }
        assert_eq!(seen.len(), ordered_set_partitions(ground).len());
    }

    #[test]
    fn executed_iis_runs_resolve_to_facets() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let n = 3;
        let chr2 = Complex::standard(n).iterated_subdivision(2);
        for _ in 0..25 {
            let rounds = run_iis_with_bg(n, ColorSet::full(n), 2, &mut rng);
            let facet = facet_of_run(&chr2, &rounds).expect("full Chr² contains every run");
            assert_eq!(facet.len(), n);
            // The recipe of the resolved facet is the executed run.
            assert_eq!(chr2.recipe_of_facet(&facet, 2), rounds);
        }
    }

    #[test]
    fn partial_participation_runs_resolve_to_lower_faces() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let n = 3;
        let chr = Complex::standard(n).chromatic_subdivision();
        let pair = ColorSet::from_indices([0, 2]);
        let rounds = run_iis_with_bg(n, pair, 1, &mut rng);
        let sx = facet_of_run(&chr, &rounds).unwrap();
        assert_eq!(sx.len(), 2);
        assert_eq!(chr.colors(&sx), pair);
    }

    #[test]
    fn forced_runs_cover_all_facets() {
        // Driving facet_of_run with every recipe covers every facet of
        // Chr² s exactly once.
        use act_topology::all_recipes;
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let mut seen = std::collections::BTreeSet::new();
        for recipe in all_recipes(ColorSet::full(3), 2) {
            let f = facet_of_run(&chr2, &recipe).unwrap();
            seen.insert(f);
        }
        assert_eq!(seen.len(), 169);
    }
}
