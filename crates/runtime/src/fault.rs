//! Deterministic fault injection for the adversarial scheduler — the
//! chaos layer of the FACT reproduction.
//!
//! The paper's subject is computability *under* crashes, so the harness
//! that validates its theorems should itself be exercised with injected
//! failure. A [`FaultPlan`] is a seeded, serializable list of
//! [`FaultEvent`]s; a [`FaultInjector`] threads it through the
//! adversarial scheduling loop ([`run_adversarial_with_faults`]) or the
//! bounded exhaustive exploration ([`explore_schedules_with_faults`]):
//!
//! * **Crash events** zero a faulty process's remaining step budget at a
//!   chosen global step — modelling a crash mid-snapshot, immediately
//!   after a write, or at a round boundary, since the step index pins the
//!   exact atomic operation after which the process goes silent. Correct
//!   processes are exempt: a fair adversary may not crash outside its
//!   faulty set, so an injected crash never breaks the liveness
//!   assumptions of Lemmas 5–6.
//! * **Stall events** withhold a process from the scheduler's pick for a
//!   bounded window of steps, then revive it — an eventually-fair delay,
//!   not a crash. A stall that would empty the eligible set is
//!   overridden (and counted), keeping the schedule infinite-fair.
//! * **Perturbation events** rotate the scheduler's random pick at a
//!   chosen step, steering the run into a different interleaving while
//!   staying inside the eligible set.
//!
//! Every injected run is *schedule-deterministic*: the executed schedule
//! fully determines the run, so a captured [`crate::trace::Trace`] (which
//! records the plan for provenance) replays byte-identically without
//! re-injecting anything.

use act_topology::{ColorSet, ProcessId};
use serde::{Deserialize, Error, Serialize, Value};

use crate::scheduler::{
    explored_outcome, run_adversarial_inner, RunOutcome, Schedule, System, LIVENESS_FAILURES,
};

/// One injected fault. Step indices are *global* schedule positions
/// (the same indices a [`crate::trace::Trace`] records).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash `process` at global step `step`: from that step on it takes
    /// no further steps (its remaining crash budget drops to zero).
    /// Ignored for correct processes — the fair adversary may only
    /// crash inside its faulty set.
    Crash {
        /// Global step index the crash fires at.
        step: u64,
        /// Index of the crashed process.
        process: u32,
    },
    /// Stall `process` for the window `[from_step, from_step + duration)`
    /// of global steps: it stays alive but is withheld from the
    /// scheduler's pick, then revives — a bounded, fairness-preserving
    /// delay.
    Stall {
        /// Index of the stalled process.
        process: u32,
        /// First global step of the stall window.
        from_step: u64,
        /// Length of the stall window in steps.
        duration: u64,
    },
    /// Rotate the scheduler's random pick at global step `step` by
    /// `offset` positions (mod the eligible count) — a schedule
    /// perturbation that stays inside the eligible set.
    Perturb {
        /// Global step index the perturbation applies at.
        step: u64,
        /// Rotation applied to the picked index.
        offset: u64,
    },
}

// Hand-written (the vendored serde derive supports structs only): the
// enum serializes as an object with a `kind` discriminator.
impl Serialize for FaultEvent {
    fn to_value(&self) -> Value {
        match self {
            FaultEvent::Crash { step, process } => Value::Map(vec![
                ("kind".to_string(), Value::Str("crash".to_string())),
                ("step".to_string(), Value::UInt(*step)),
                ("process".to_string(), Value::UInt(u64::from(*process))),
            ]),
            FaultEvent::Stall {
                process,
                from_step,
                duration,
            } => Value::Map(vec![
                ("kind".to_string(), Value::Str("stall".to_string())),
                ("process".to_string(), Value::UInt(u64::from(*process))),
                ("from_step".to_string(), Value::UInt(*from_step)),
                ("duration".to_string(), Value::UInt(*duration)),
            ]),
            FaultEvent::Perturb { step, offset } => Value::Map(vec![
                ("kind".to_string(), Value::Str("perturb".to_string())),
                ("step".to_string(), Value::UInt(*step)),
                ("offset".to_string(), Value::UInt(*offset)),
            ]),
        }
    }
}

impl Deserialize for FaultEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let kind = String::from_value(v.field("kind")?)?;
        match kind.as_str() {
            "crash" => Ok(FaultEvent::Crash {
                step: u64::from_value(v.field("step")?)?,
                process: u32::from_value(v.field("process")?)?,
            }),
            "stall" => Ok(FaultEvent::Stall {
                process: u32::from_value(v.field("process")?)?,
                from_step: u64::from_value(v.field("from_step")?)?,
                duration: u64::from_value(v.field("duration")?)?,
            }),
            "perturb" => Ok(FaultEvent::Perturb {
                step: u64::from_value(v.field("step")?)?,
                offset: u64::from_value(v.field("offset")?)?,
            }),
            other => Err(Error::msg(format!("unknown fault kind {other:?}"))),
        }
    }
}

/// A seeded, serializable list of faults to inject into one run. The
/// plan rides along inside captured [`crate::trace::Trace`]s, so a
/// failing injection is reproducible from its artifact alone.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The injected faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

/// SplitMix64: a tiny, high-quality seeded stream used to *generate*
/// plans deterministically (the scheduler's own randomness stays the
/// caller's `rand::Rng`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn empty() -> FaultPlan {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Generates a deterministic plan from a seed: one to four events
    /// (crashes, stalls, perturbations) aimed at the first `horizon`
    /// steps of a run over `num_processes` processes. The same seed
    /// always yields the same plan.
    pub fn seeded(seed: u64, num_processes: usize, horizon: u64) -> FaultPlan {
        let n = num_processes.max(1) as u64;
        let horizon = horizon.max(1);
        let mut state = seed;
        let count = 1 + (splitmix64(&mut state) % 4) as usize;
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = splitmix64(&mut state) % 3;
            let event = match kind {
                0 => FaultEvent::Crash {
                    step: splitmix64(&mut state) % horizon,
                    process: (splitmix64(&mut state) % n) as u32,
                },
                1 => FaultEvent::Stall {
                    process: (splitmix64(&mut state) % n) as u32,
                    from_step: splitmix64(&mut state) % horizon,
                    duration: 1 + splitmix64(&mut state) % horizon.div_ceil(4),
                },
                _ => FaultEvent::Perturb {
                    step: splitmix64(&mut state) % horizon,
                    offset: 1 + splitmix64(&mut state) % n,
                },
            };
            events.push(event);
        }
        FaultPlan { seed, events }
    }
}

/// What a [`FaultInjector`] actually did to a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Crash events that fired (zeroed a budget).
    pub crashes_applied: usize,
    /// Crash events skipped because they targeted a correct process.
    pub crashes_skipped: usize,
    /// Scheduler picks from which at least one stalled process was
    /// withheld.
    pub stalls_applied: usize,
    /// Stall windows overridden because honouring them would have
    /// emptied the eligible set (fairness preservation).
    pub stall_overrides: usize,
    /// Perturbation events that rotated a pick.
    pub perturbs_applied: usize,
}

impl FaultReport {
    /// Whether any fault actually altered the run.
    pub fn any_applied(&self) -> bool {
        self.crashes_applied > 0 || self.stalls_applied > 0 || self.perturbs_applied > 0
    }
}

/// Executes a [`FaultPlan`] against the decision points of the
/// adversarial scheduling loop (see the crate docs of [`crate::fault`]
/// for the model). Created per run; collect the [`FaultReport`]
/// afterwards.
pub struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<bool>,
    report: FaultReport,
}

impl FaultInjector {
    /// A fresh injector for one run of `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let fired = vec![false; plan.events.len()];
        FaultInjector {
            plan,
            fired,
            report: FaultReport::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What has been applied so far.
    pub fn report(&self) -> &FaultReport {
        &self.report
    }

    /// Consumes the injector into its report.
    pub fn into_report(self) -> FaultReport {
        self.report
    }

    fn emit(kind: &str, step: usize, detail: u64, applied: bool) {
        if act_obs::enabled() {
            act_obs::event("fault.injected")
                .str("kind", kind)
                .u64("step", step as u64)
                .u64("detail", detail)
                .bool("applied", applied)
                .emit();
        }
    }

    /// Fires every due crash event: a crash with `step <= now` zeroes
    /// its target's remaining budget, unless the target is correct
    /// (fair adversaries only crash inside the faulty set).
    pub(crate) fn apply_crashes(
        &mut self,
        now: usize,
        correct: ColorSet,
        budgets: &mut [Option<usize>],
    ) {
        for (i, event) in self.plan.events.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if let FaultEvent::Crash { step, process } = *event {
                if step as usize > now {
                    continue;
                }
                self.fired[i] = true;
                let p = process as usize;
                let applied = p < budgets.len() && !correct.contains(ProcessId::new(p));
                if applied {
                    budgets[p] = Some(0);
                    self.report.crashes_applied += 1;
                } else {
                    self.report.crashes_skipped += 1;
                }
                Self::emit("crash", now, u64::from(process), applied);
            }
        }
    }

    /// Whether `p` is inside an active stall window at global step `now`.
    fn is_stalled(&self, p: ProcessId, now: usize) -> bool {
        self.plan.events.iter().any(|e| {
            matches!(e, FaultEvent::Stall { process, from_step, duration }
                if *process as usize == p.index()
                    && (*from_step as usize..(*from_step + *duration) as usize).contains(&now))
        })
    }

    /// Withholds stalled processes from the eligible set — unless that
    /// would empty it, in which case the stall is overridden (bounded
    /// revival keeps the schedule fair).
    pub(crate) fn filter_stalls(&mut self, eligible: Vec<ProcessId>, now: usize) -> Vec<ProcessId> {
        let filtered: Vec<ProcessId> = eligible
            .iter()
            .copied()
            .filter(|&p| !self.is_stalled(p, now))
            .collect();
        if filtered.is_empty() {
            if filtered.len() < eligible.len() {
                self.report.stall_overrides += 1;
                Self::emit("stall", now, eligible.len() as u64, false);
            }
            return eligible;
        }
        if filtered.len() < eligible.len() {
            self.report.stalls_applied += 1;
            Self::emit("stall", now, (eligible.len() - filtered.len()) as u64, true);
        }
        filtered
    }

    /// Rotates the scheduler's pick when a perturbation is due at `now`.
    pub(crate) fn perturb(&mut self, now: usize, idx: usize, len: usize) -> usize {
        let mut idx = idx;
        for (i, event) in self.plan.events.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if let FaultEvent::Perturb { step, offset } = *event {
                if step as usize == now {
                    self.fired[i] = true;
                    idx = (idx + offset as usize) % len;
                    self.report.perturbs_applied += 1;
                    Self::emit("perturb", now, offset, true);
                }
            }
        }
        idx
    }
}

/// [`crate::scheduler::run_adversarial`] with a [`FaultPlan`] injected
/// at every decision point. Liveness failures are counted and captured
/// like the plain scheduler's, but the artifact records the plan (reason
/// `"fault-liveness-failure"`), so `fact-cli replay` reproduces the run
/// from the artifact alone.
///
/// # Panics
///
/// Panics if `correct` is not a subset of `participants`, or is empty
/// (the plain scheduler's contract).
pub fn run_adversarial_with_faults<S, R, F>(
    sys: &mut S,
    participants: ColorSet,
    correct: ColorSet,
    rng: &mut R,
    crash_budget: F,
    max_steps: usize,
    plan: &FaultPlan,
) -> (RunOutcome, FaultReport)
where
    S: System,
    R: rand::Rng,
    F: FnMut(ProcessId) -> usize,
{
    let mut injector = FaultInjector::new(plan.clone());
    let outcome = run_adversarial_inner(
        sys,
        participants,
        correct,
        rng,
        crash_budget,
        max_steps,
        Some(&mut injector),
    );
    if !outcome.all_correct_terminated {
        LIVENESS_FAILURES.add(1);
        crate::trace::capture_fault_artifact(participants, &outcome, max_steps, plan);
    }
    (outcome, injector.into_report())
}

/// Bounded exhaustive exploration under a [`FaultPlan`]: like
/// [`crate::scheduler::explore_schedules_cloned`], but crash events
/// silence their target from their step onward and stall windows
/// withhold candidates (overridden when a branch would otherwise have no
/// candidate). The visited runs are a subset of the unfaulted
/// exploration's — injection narrows the tree, it never invents steps.
///
/// Returns the number of runs visited.
pub fn explore_schedules_with_faults<S, V>(
    initial: &S,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    plan: &FaultPlan,
    mut visit: V,
) -> usize
where
    S: System + Clone,
    V: FnMut(&S, &RunOutcome),
{
    assert!(
        correct.is_subset_of(participants),
        "correct processes must participate"
    );
    let span = act_obs::span("scheduler.explore_faults");
    let mut prefix: Schedule = Vec::new();
    let mut runs = 0usize;
    let injector = FaultInjector::new(plan.clone());
    explore_faulty_rec(
        initial,
        participants,
        correct,
        max_depth,
        max_runs,
        &injector,
        &mut prefix,
        &mut runs,
        &mut visit,
    );
    if act_obs::enabled() {
        span.finish()
            .str("strategy", "faulty")
            .u64("runs", runs as u64)
            .u64("events", plan.events.len() as u64)
            .emit();
    }
    runs
}

/// Whether `p` has been crashed by the plan at or before global step
/// `now` (correct processes are exempt, as in the scheduler loop).
fn crashed_by_plan(plan: &FaultPlan, p: ProcessId, correct: ColorSet, now: usize) -> bool {
    !correct.contains(p)
        && plan.events.iter().any(|e| {
            matches!(e, FaultEvent::Crash { step, process }
                if *process as usize == p.index() && *step as usize <= now)
        })
}

#[allow(clippy::too_many_arguments)]
fn explore_faulty_rec<S, V>(
    sys: &S,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    injector: &FaultInjector,
    prefix: &mut Schedule,
    runs: &mut usize,
    visit: &mut V,
) where
    S: System + Clone,
    V: FnMut(&S, &RunOutcome),
{
    if *runs >= max_runs {
        return;
    }
    let correct_pending = correct.iter().any(|p| !sys.has_terminated(p));
    if !correct_pending || prefix.len() >= max_depth {
        let outcome = explored_outcome(sys, correct, correct_pending, prefix);
        *runs += 1;
        visit(sys, &outcome);
        return;
    }
    let now = prefix.len();
    let alive: Vec<ProcessId> = participants
        .iter()
        .filter(|&p| !sys.has_terminated(p) && !crashed_by_plan(injector.plan(), p, correct, now))
        .collect();
    if alive.is_empty() {
        // Everyone left is crashed: the run ends here, non-maximal.
        let outcome = explored_outcome(sys, correct, correct_pending, prefix);
        *runs += 1;
        visit(sys, &outcome);
        return;
    }
    let unstalled: Vec<ProcessId> = alive
        .iter()
        .copied()
        .filter(|&p| !injector.is_stalled(p, now))
        .collect();
    // A stall that would remove every candidate is overridden, exactly
    // as in the scheduler loop.
    let candidates = if unstalled.is_empty() {
        alive
    } else {
        unstalled
    };
    for p in candidates {
        let mut child = sys.clone();
        child.step(p);
        prefix.push(p);
        explore_faulty_rec(
            &child,
            participants,
            correct,
            max_depth,
            max_runs,
            injector,
            prefix,
            runs,
            visit,
        );
        prefix.pop();
        if *runs >= max_runs {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{explore_schedules_cloned, run_adversarial};
    use rand::SeedableRng;

    /// The scheduler tests' toy system: `k` steps per process.
    #[derive(Clone)]
    struct Countdown {
        remaining: Vec<usize>,
    }

    impl Countdown {
        fn new(n: usize, k: usize) -> Self {
            Countdown {
                remaining: vec![k; n],
            }
        }
    }

    impl System for Countdown {
        fn step(&mut self, p: ProcessId) -> bool {
            let r = &mut self.remaining[p.index()];
            if *r > 0 {
                *r -= 1;
            }
            *r == 0
        }
        fn has_terminated(&self, p: ProcessId) -> bool {
            self.remaining[p.index()] == 0
        }
        fn num_processes(&self) -> usize {
            self.remaining.len()
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_serializable() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded(seed, 3, 100);
            let b = FaultPlan::seeded(seed, 3, 100);
            assert_eq!(a, b, "seed {seed} must regenerate the same plan");
            assert!(!a.events.is_empty() && a.events.len() <= 4);
            let json = serde_json::to_string(&a).unwrap();
            let back: FaultPlan = serde_json::from_str(&json).unwrap();
            assert_eq!(back, a, "plan survives a JSON round trip");
        }
        assert_ne!(
            FaultPlan::seeded(1, 3, 100),
            FaultPlan::seeded(2, 3, 100),
            "different seeds give different plans"
        );
    }

    #[test]
    fn every_event_kind_round_trips() {
        let plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent::Crash {
                    step: 3,
                    process: 1,
                },
                FaultEvent::Stall {
                    process: 2,
                    from_step: 0,
                    duration: 5,
                },
                FaultEvent::Perturb { step: 7, offset: 2 },
            ],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert!(json.contains("\"kind\""), "events carry a discriminator");
    }

    #[test]
    fn injected_runs_are_deterministic() {
        let participants = ColorSet::full(3);
        let correct = ColorSet::from_indices([0, 2]);
        for seed in 0..16u64 {
            let plan = FaultPlan::seeded(seed, 3, 50);
            let run = |plan: &FaultPlan| {
                let mut sys = Countdown::new(3, 4);
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
                run_adversarial_with_faults(
                    &mut sys,
                    participants,
                    correct,
                    &mut rng,
                    |_| 2,
                    10_000,
                    plan,
                )
            };
            let (a, ra) = run(&plan);
            let (b, rb) = run(&plan);
            assert_eq!(a, b, "seed {seed}: same plan, same rng, same outcome");
            assert_eq!(ra, rb, "and the same fault report");
        }
    }

    #[test]
    fn crash_events_never_touch_correct_processes() {
        let participants = ColorSet::full(2);
        let correct = ColorSet::full(2); // everyone correct
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::Crash {
                step: 0,
                process: 0,
            }],
        };
        let mut sys = Countdown::new(2, 2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let (outcome, report) = run_adversarial_with_faults(
            &mut sys,
            participants,
            correct,
            &mut rng,
            |_| 0,
            10_000,
            &plan,
        );
        assert!(outcome.all_correct_terminated, "liveness survives the plan");
        assert_eq!(report.crashes_applied, 0);
        assert_eq!(report.crashes_skipped, 1);
    }

    #[test]
    fn crash_events_silence_faulty_processes() {
        let participants = ColorSet::full(2);
        let correct = ColorSet::from_indices([0]);
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::Crash {
                step: 0,
                process: 1,
            }],
        };
        let mut sys = Countdown::new(2, 3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let (outcome, report) = run_adversarial_with_faults(
            &mut sys,
            participants,
            correct,
            &mut rng,
            |_| 100, // a generous budget the crash then zeroes
            10_000,
            &plan,
        );
        assert!(outcome.all_correct_terminated);
        assert_eq!(report.crashes_applied, 1);
        assert!(
            !outcome.schedule.contains(&ProcessId::new(1)),
            "the crashed process took no steps"
        );
    }

    #[test]
    fn stalls_are_overridden_rather_than_starving_the_run() {
        // Stall the only correct process forever-ish: the override keeps
        // it schedulable, so the run still terminates.
        let participants = ColorSet::from_indices([0]);
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::Stall {
                process: 0,
                from_step: 0,
                duration: 1_000,
            }],
        };
        let mut sys = Countdown::new(1, 3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let (outcome, report) = run_adversarial_with_faults(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            10_000,
            &plan,
        );
        assert!(
            outcome.all_correct_terminated,
            "override preserves liveness"
        );
        assert!(report.stall_overrides > 0);
        assert_eq!(report.stalls_applied, 0);
    }

    #[test]
    fn stalls_delay_but_do_not_kill() {
        // With two correct processes, stalling p1 for a window reorders
        // the schedule but both still terminate.
        let participants = ColorSet::full(2);
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::Stall {
                process: 1,
                from_step: 0,
                duration: 2,
            }],
        };
        let mut sys = Countdown::new(2, 2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let (outcome, report) = run_adversarial_with_faults(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            10_000,
            &plan,
        );
        assert!(outcome.all_correct_terminated);
        assert!(report.stalls_applied > 0);
        assert_eq!(
            &outcome.schedule[..2],
            &[ProcessId::new(0), ProcessId::new(0)],
            "the stall window forces p0 first"
        );
    }

    #[test]
    fn empty_plan_matches_the_plain_scheduler() {
        let participants = ColorSet::full(3);
        let correct = ColorSet::from_indices([0, 2]);
        let mut plain_sys = Countdown::new(3, 4);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let plain = run_adversarial(
            &mut plain_sys,
            participants,
            correct,
            &mut rng,
            |_| 2,
            10_000,
        );
        let mut faulty_sys = Countdown::new(3, 4);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let (faulty, report) = run_adversarial_with_faults(
            &mut faulty_sys,
            participants,
            correct,
            &mut rng,
            |_| 2,
            10_000,
            &FaultPlan::empty(),
        );
        assert_eq!(plain, faulty, "no events, no difference");
        assert!(!report.any_applied());
    }

    #[test]
    fn faulty_exploration_visits_a_subset_of_the_plain_runs() {
        let participants = ColorSet::full(2);
        let correct = ColorSet::from_indices([0]);
        let mut plain: Vec<Schedule> = Vec::new();
        explore_schedules_cloned(
            &Countdown::new(2, 2),
            participants,
            correct,
            10,
            10_000,
            |_, o| plain.push(o.schedule.clone()),
        );
        let plan = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::Crash {
                step: 1,
                process: 1,
            }],
        };
        let mut faulty: Vec<Schedule> = Vec::new();
        let count = explore_schedules_with_faults(
            &Countdown::new(2, 2),
            participants,
            correct,
            10,
            10_000,
            &plan,
            |_, o| faulty.push(o.schedule.clone()),
        );
        assert_eq!(count, faulty.len());
        assert!(!faulty.is_empty());
        assert!(
            faulty.len() < plain.len(),
            "the crash prunes interleavings ({} vs {})",
            faulty.len(),
            plain.len()
        );
        for schedule in &faulty {
            // Injection narrows the tree: every faulty schedule is a
            // prefix-closed run the plain exploration also visits (same
            // schedule, or a crash-truncated prefix of one).
            assert!(
                plain
                    .iter()
                    .any(|p| p == schedule || p.starts_with(schedule)),
                "faulty schedule {schedule:?} must embed into the plain tree"
            );
            // And the crashed process never moves after its crash step.
            assert!(
                !schedule[1..].contains(&ProcessId::new(1)),
                "p1 crashed at step 1: {schedule:?}"
            );
        }
    }
}
