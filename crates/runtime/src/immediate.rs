//! One-shot immediate snapshot.
//!
//! Two implementations, cross-checked against each other and against the
//! IS properties (self-inclusion, containment, immediacy — Section 2):
//!
//! * [`IsProcess`] / [`IsShared`] — the Borowsky–Gafni *participating set*
//!   algorithm over plain snapshot memory, a genuinely wait-free
//!   asynchronous protocol whose every register operation is one scheduler
//!   step;
//! * [`OracleIs`] — a linearizable one-shot IS object whose behaviour is
//!   driven directly by an ordered set partition (the combinatorial form
//!   of an IS run), used when an experiment wants to force a specific run.

use act_topology::{ColorSet, Osp, ProcessId};

use crate::memory::SnapshotMemory;
use crate::scheduler::System;

/// Shared state of one Borowsky–Gafni immediate-snapshot instance: a
/// snapshot memory of `(level, value)` pairs.
#[derive(Clone, Debug)]
pub struct IsShared<V> {
    memory: SnapshotMemory<(usize, V)>,
}

impl<V: Clone> IsShared<V> {
    /// Creates the shared state for `n` processes.
    pub fn new(n: usize) -> Self {
        IsShared {
            memory: SnapshotMemory::new(n),
        }
    }

    /// The number of processes.
    pub fn num_processes(&self) -> usize {
        self.memory.len()
    }

    /// Shared-memory operation counters (updates, snapshots).
    pub fn op_counts(&self) -> (usize, usize) {
        self.memory.op_counts()
    }
}

/// Per-process state of the Borowsky–Gafni immediate-snapshot protocol.
///
/// The classic recursion: start at level `n`; repeatedly descend one
/// level, write `(level, value)`, snapshot, and return the set of
/// processes at or below your level once it has at least `level` members.
///
/// # Examples
///
/// ```
/// use act_runtime::{IsProcess, IsShared};
/// use act_topology::ProcessId;
///
/// let mut shared: IsShared<&str> = IsShared::new(1);
/// let mut p = IsProcess::new(1, "hello");
/// let me = ProcessId::new(0);
/// while p.output().is_none() {
///     p.step(me, &mut shared);
/// }
/// assert_eq!(p.output().unwrap(), &[(me, "hello")]);
/// ```
#[derive(Clone, Debug)]
pub struct IsProcess<V> {
    value: V,
    level: usize,
    phase: Phase,
    output: Option<Vec<(ProcessId, V)>>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Write,
    Snapshot,
    Done,
}

impl<V: Clone> IsProcess<V> {
    /// Creates the protocol state for a system of `n` processes proposing
    /// `value`.
    pub fn new(n: usize, value: V) -> Self {
        IsProcess {
            value,
            level: n + 1,
            phase: Phase::Write,
            output: None,
        }
    }

    /// Whether the protocol has produced its immediate snapshot.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The immediate snapshot: the `(process, value)` pairs seen, once
    /// available.
    pub fn output(&self) -> Option<&[(ProcessId, V)]> {
        self.output.as_deref()
    }

    /// The set of processes seen, once available.
    pub fn view(&self) -> Option<ColorSet> {
        self.output
            .as_ref()
            .map(|o| o.iter().map(|&(p, _)| p).collect())
    }

    /// Executes one atomic step of the protocol for process `me`. No-op
    /// once done. Returns whether the protocol is (now) done.
    pub fn step(&mut self, me: ProcessId, shared: &mut IsShared<V>) -> bool {
        match self.phase {
            Phase::Done => true,
            Phase::Write => {
                self.level -= 1;
                shared.memory.update(me, (self.level, self.value.clone()));
                self.phase = Phase::Snapshot;
                false
            }
            Phase::Snapshot => {
                let snap = shared.memory.snapshot();
                let at_or_below: Vec<(ProcessId, V)> = snap
                    .iter()
                    .enumerate()
                    .filter_map(|(i, slot)| {
                        slot.as_ref().and_then(|(lvl, v)| {
                            (*lvl <= self.level).then(|| (ProcessId::new(i), v.clone()))
                        })
                    })
                    .collect();
                if at_or_below.len() >= self.level {
                    self.output = Some(at_or_below);
                    self.phase = Phase::Done;
                    true
                } else {
                    self.phase = Phase::Write;
                    false
                }
            }
        }
    }
}

/// A complete system running one Borowsky–Gafni IS instance for a set of
/// participants — used to validate the algorithm under every scheduler.
#[derive(Clone, Debug)]
pub struct IsSystem<V> {
    shared: IsShared<V>,
    processes: Vec<Option<IsProcess<V>>>,
}

impl<V: Clone> IsSystem<V> {
    /// Creates the system; `inputs[i]` is `Some(v)` iff process `i`
    /// participates with value `v`.
    pub fn new(inputs: Vec<Option<V>>) -> Self {
        let n = inputs.len();
        IsSystem {
            shared: IsShared::new(n),
            processes: inputs
                .into_iter()
                .map(|input| input.map(|v| IsProcess::new(n, v)))
                .collect(),
        }
    }

    /// The outputs gathered so far: `views[i]` is `Some` once process `i`
    /// finished.
    pub fn views(&self) -> Vec<Option<ColorSet>> {
        self.processes
            .iter()
            .map(|p| p.as_ref().and_then(IsProcess::view))
            .collect()
    }

    /// The shared state (operation counters etc.).
    pub fn shared(&self) -> &IsShared<V> {
        &self.shared
    }

    /// The full immediate-snapshot output of `p` (the `(process, value)`
    /// pairs it saw), once decided.
    pub fn output_of(&self, p: ProcessId) -> Option<Vec<(ProcessId, V)>> {
        self.processes[p.index()]
            .as_ref()
            .and_then(|proc_| proc_.output().map(<[_]>::to_vec))
    }
}

impl<V: Clone> System for IsSystem<V> {
    fn step(&mut self, p: ProcessId) -> bool {
        match &mut self.processes[p.index()] {
            Some(proc_) => proc_.step(p, &mut self.shared),
            None => true,
        }
    }

    fn has_terminated(&self, p: ProcessId) -> bool {
        self.processes[p.index()]
            .as_ref()
            .is_none_or(IsProcess::is_done)
    }

    fn num_processes(&self) -> usize {
        self.processes.len()
    }
}

/// A linearizable one-shot immediate-snapshot *oracle* whose run is forced
/// by an ordered set partition: the processes of block `i` jointly return
/// the values of blocks `1..=i`.
#[derive(Clone, Debug)]
pub struct OracleIs<V> {
    osp: Osp,
    values: Vec<Option<V>>,
}

impl<V: Clone> OracleIs<V> {
    /// Creates an oracle for `n` processes following `osp`.
    pub fn new(n: usize, osp: Osp) -> Self {
        OracleIs {
            osp,
            values: vec![None; n],
        }
    }

    /// Submits `p`'s value (before querying outputs).
    pub fn submit(&mut self, p: ProcessId, value: V) {
        self.values[p.index()] = Some(value);
    }

    /// The immediate snapshot of `p` under the forced run: the values of
    /// every process in `p`'s view.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in the forced run or some process in `p`'s
    /// view has not submitted a value.
    pub fn output(&self, p: ProcessId) -> Vec<(ProcessId, V)> {
        let view = self
            .osp
            .view_of(p)
            .expect("process appears in the forced run");
        view.iter()
            .map(|q| {
                (
                    q,
                    self.values[q.index()]
                        .clone()
                        .expect("every process in the view has submitted"),
                )
            })
            .collect()
    }
}

/// Reconstructs the ordered set partition of an immediate-snapshot run
/// from its views: block `i` is the set of processes sharing the `i`-th
/// smallest view.
///
/// # Panics
///
/// Panics if the views do not satisfy the IS properties (not produced by a
/// valid IS run).
pub fn osp_from_views(views: &[(ProcessId, ColorSet)]) -> Osp {
    let mut sorted: Vec<(ProcessId, ColorSet)> = views.to_vec();
    sorted.sort_by_key(|&(_, v)| v.len());
    let mut blocks: Vec<ColorSet> = Vec::new();
    let mut last_view: Option<ColorSet> = None;
    for (p, v) in sorted {
        match last_view {
            Some(lv) if lv == v => {
                let b = blocks.last_mut().expect("block exists for repeated view");
                *b = b.with(p);
            }
            _ => {
                blocks.push(ColorSet::singleton(p));
                last_view = Some(v);
            }
        }
    }
    Osp::new(blocks).expect("IS views induce an ordered set partition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{explore_schedules, run_adversarial};
    use rand::SeedableRng;

    fn check_is_properties(views: &[(ProcessId, ColorSet)]) {
        for &(p, v) in views {
            assert!(v.contains(p), "self-inclusion");
        }
        for &(_, v1) in views {
            for &(_, v2) in views {
                assert!(v1.is_subset_of(v2) || v2.is_subset_of(v1), "containment");
            }
        }
        for &(p1, v1) in views {
            for &(_, v2) in views {
                if v2.contains(p1) {
                    assert!(v1.is_subset_of(v2), "immediacy");
                }
            }
        }
    }

    #[test]
    fn bg_solo_run_sees_itself() {
        let mut sys = IsSystem::new(vec![Some(10u32), None, None]);
        let p0 = ProcessId::new(0);
        let mut guard = 0;
        while !sys.has_terminated(p0) {
            sys.step(p0);
            guard += 1;
            assert!(guard < 100, "BG must terminate wait-free");
        }
        assert_eq!(sys.views()[0], Some(ColorSet::from_indices([0])));
    }

    #[test]
    fn bg_satisfies_is_properties_under_random_schedules() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for trial in 0..200 {
            let n = 2 + (trial % 3);
            let inputs: Vec<Option<u32>> = (0..n).map(|i| Some(i as u32 * 10)).collect();
            let mut sys = IsSystem::new(inputs);
            let participants = ColorSet::full(n);
            let outcome = run_adversarial(
                &mut sys,
                participants,
                participants,
                &mut rng,
                |_| 0,
                10_000,
            );
            assert!(outcome.all_correct_terminated, "BG is wait-free");
            let views: Vec<(ProcessId, ColorSet)> = sys
                .views()
                .iter()
                .enumerate()
                .map(|(i, v)| (ProcessId::new(i), v.unwrap()))
                .collect();
            check_is_properties(&views);
            // Values seen match views.
            for (i, proc_) in sys.processes.iter().enumerate() {
                let out = proc_.as_ref().unwrap().output().unwrap();
                for &(q, val) in out {
                    assert_eq!(val, q.index() as u32 * 10);
                }
                let _ = i;
            }
        }
    }

    #[test]
    fn bg_exhaustive_two_processes() {
        // Every interleaving of 2 processes yields a valid IS run; all 3
        // ordered set partitions are reachable.
        let participants = ColorSet::full(2);
        let mut seen = std::collections::BTreeSet::new();
        let runs = explore_schedules(
            || IsSystem::new(vec![Some(0u8), Some(1u8)]),
            participants,
            participants,
            40,
            100_000,
            |sys, outcome| {
                assert!(outcome.all_correct_terminated);
                let views: Vec<(ProcessId, ColorSet)> = sys
                    .views()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (ProcessId::new(i), v.unwrap()))
                    .collect();
                check_is_properties(&views);
                seen.insert(osp_from_views(&views));
            },
        );
        assert!(runs > 0);
        assert_eq!(seen.len(), 3, "all 3 OSPs of 2 processes are reachable");
    }

    #[test]
    fn bg_faulty_processes_do_not_block_correct_ones() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for budget in 0..6 {
            let mut sys = IsSystem::new(vec![Some(1u8), Some(2), Some(3)]);
            let participants = ColorSet::full(3);
            let correct = ColorSet::from_indices([0, 1]);
            let outcome = run_adversarial(
                &mut sys,
                participants,
                correct,
                &mut rng,
                |_| budget,
                10_000,
            );
            assert!(
                outcome.all_correct_terminated,
                "IS is wait-free, budget {budget}"
            );
        }
    }

    #[test]
    fn oracle_follows_forced_run() {
        let osp = Osp::new(vec![
            ColorSet::from_indices([1]),
            ColorSet::from_indices([0, 2]),
        ])
        .unwrap();
        let mut oracle = OracleIs::new(3, osp);
        for i in 0..3 {
            oracle.submit(ProcessId::new(i), i * 100);
        }
        assert_eq!(
            oracle.output(ProcessId::new(1)),
            vec![(ProcessId::new(1), 100)]
        );
        let out0 = oracle.output(ProcessId::new(0));
        assert_eq!(out0.len(), 3);
    }

    #[test]
    fn osp_from_views_roundtrip() {
        use act_topology::ordered_set_partitions;
        for osp in ordered_set_partitions(ColorSet::full(4)) {
            let views = osp.views();
            assert_eq!(osp_from_views(&views), osp);
        }
    }
}
