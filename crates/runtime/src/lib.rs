//! Shared-memory runtime for the FACT reproduction: the executable side of
//! Section 2 of *An Asynchronous Computability Theorem for Fair
//! Adversaries*.
//!
//! * [`SnapshotMemory`] / [`RegisterArray`] — simulated atomic-snapshot
//!   memory and registers, every operation one scheduler step;
//! * [`IsProcess`] — the Borowsky–Gafni one-shot immediate snapshot over
//!   snapshot memory, plus the OSP-driven [`OracleIs`];
//! * [`System`] and the schedulers — explicit replayable schedules
//!   ([`run_schedule`]), seeded adversarial sampling ([`run_adversarial`])
//!   and bounded exhaustive exploration ([`explore_schedules`], or the
//!   streaming [`explore_iter`] for campaigns that must not hold the
//!   run set in memory);
//! * [`FaultPlan`] / [`FaultInjector`] — the chaos layer: seeded,
//!   replayable crash / stall / perturbation injection into the
//!   schedulers ([`run_adversarial_with_faults`],
//!   [`explore_schedules_with_faults`]);
//! * [`run_iis_with_bg`] / [`facet_of_run`] — the IIS model: executed runs
//!   resolve to facets of `Chr^m s`;
//! * [`SharedSnapshotMemory`] — a thread-backed variant for examples that
//!   want real concurrency.
//!
//! # Quickstart
//!
//! ```
//! use act_runtime::{run_iis_with_bg, facet_of_run};
//! use act_topology::{ColorSet, Complex};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let rounds = run_iis_with_bg(3, ColorSet::full(3), 2, &mut rng);
//! let chr2 = Complex::standard(3).iterated_subdivision(2);
//! assert!(facet_of_run(&chr2, &rounds).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod afek;
mod bg_simulation;
mod concurrent;
mod fault;
mod iis;
mod immediate;
mod memory;
mod objects;
mod scheduler;
mod trace;

pub use afek::{AfekCell, AfekScan, AfekShared, AfekSystem, AfekUpdate, RecordedScan};
pub use bg_simulation::{simulators, BgSimulation, SafeAgreement};
pub use concurrent::SharedSnapshotMemory;
pub use fault::{
    explore_schedules_with_faults, run_adversarial_with_faults, FaultEvent, FaultInjector,
    FaultPlan, FaultReport,
};
pub use iis::{facet_of_run, random_osp, run_iis_with_bg};
pub use immediate::{osp_from_views, IsProcess, IsShared, IsSystem, OracleIs};
pub use memory::{RegisterArray, SnapshotMemory};
pub use objects::{AdaptiveConsensusObject, AgreementBound};
pub use scheduler::{
    explore_iter, explore_schedules, explore_schedules_cloned, run_adversarial, run_schedule,
    ExploreIter, ExploreOrder, RunOutcome, Schedule, ScheduleError, System, LIVENESS_FAILURES,
};
pub use trace::{Trace, TraceArtifact};
