//! The Borowsky–Gafni simulation: `k + 1` wait-free simulators execute an
//! `n`-thread snapshot protocol so that at most `k` simulated threads are
//! blocked by simulator crashes.
//!
//! This is the classic bridge between resilience levels (referenced
//! throughout the paper's related work: t-resilient colorless solvability
//! ⇔ wait-free solvability by `t + 1` processes). Two ingredients:
//!
//! * [`SafeAgreement`] — the agreement building block: all deciders agree
//!   on a single proposed value, and the object can be blocked only by a
//!   proposer that crashes inside its (two-step) *unsafe window*;
//! * [`BgSimulation`] — each simulator round-robins over the simulated
//!   threads, taking real snapshots of the simulated memory, funnelling
//!   them through one `SafeAgreement` per `(thread, round)`, and writing
//!   the agreed view back; a blocked object stalls only its one thread.
//!
//! Every register/snapshot access is one scheduler step, so simulator
//! crashes are expressed with the ordinary adversarial schedulers, and
//! the blocking bound (`≤ 1` blocked thread per crashed simulator) is
//! *measured*, not assumed.

use std::collections::HashMap;

use act_topology::{ColorSet, ProcessId};

use crate::scheduler::System;

/// The per-proposer cell of a safe-agreement object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SaCell {
    value: u64,
    /// 0 = retreated, 1 = unsafe window, 2 = committed.
    level: u8,
}

/// A safe-agreement object (Borowsky–Gafni): `propose` runs a two-step
/// protocol (raise to level 1, then commit to level 2 unless someone
/// already committed); `decide` succeeds once no proposer is inside the
/// level-1 window, returning the committed value with the smallest
/// proposer id.
#[derive(Clone, Debug, Default)]
pub struct SafeAgreement {
    cells: HashMap<usize, SaCell>,
}

impl SafeAgreement {
    /// Creates an empty object.
    pub fn new() -> Self {
        SafeAgreement::default()
    }

    /// Step 1 of a proposal: enter the unsafe window with `value`.
    pub fn propose_enter(&mut self, proposer: usize, value: u64) {
        self.cells
            .entry(proposer)
            .or_insert(SaCell { value, level: 1 });
    }

    /// Step 2 of a proposal: commit, or retreat if someone committed
    /// first. Returns whether the proposer committed.
    ///
    /// # Panics
    ///
    /// Panics if the proposer never entered.
    pub fn propose_exit(&mut self, proposer: usize) -> bool {
        let committed = self
            .cells
            .iter()
            .any(|(&p, c)| p != proposer && c.level == 2);
        let cell = self.cells.get_mut(&proposer).expect("proposer entered");
        cell.level = if committed { 0 } else { 2 };
        cell.level == 2
    }

    /// Attempts to decide: `None` while some proposer sits in its unsafe
    /// window (level 1) or nobody committed yet.
    pub fn decide(&self) -> Option<u64> {
        if self.cells.values().any(|c| c.level == 1) {
            return None;
        }
        self.cells
            .iter()
            .filter(|(_, c)| c.level == 2)
            .min_by_key(|(&p, _)| p)
            .map(|(_, c)| c.value)
    }

    /// Whether the object is permanently blocked *given* that the set
    /// `alive` of proposers will take no further steps: some dead
    /// proposer is stuck at level 1.
    pub fn blocked_by(&self, dead: &[usize]) -> bool {
        self.cells
            .iter()
            .any(|(p, c)| c.level == 1 && dead.contains(p))
    }
}

/// One simulated thread's next pending action, per simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadPhase {
    /// Take a real snapshot of the simulated memory.
    Snapshot,
    /// Enter the safe-agreement window with the snapshot (carried along).
    SaEnter(u64),
    /// Exit the window.
    SaExit,
    /// Try to decide; on success write the agreed view to memory.
    Decide,
}

/// The Borowsky–Gafni simulation as a schedulable [`System`]: simulators
/// are the real processes; each `step` performs one atomic operation of
/// the simulation.
///
/// The simulated protocol is the full-information round protocol: in
/// round `r`, a thread snapshots the vector of completed rounds and
/// publishes round `r`. The simulation's correctness conditions
/// (agreement per `(thread, round)`, view validity, bounded blocking) are
/// checked by the test-suite.
pub struct BgSimulation {
    num_simulators: usize,
    num_threads: usize,
    target_rounds: usize,
    /// Simulated memory: completed round per thread (monotone).
    sim_memory: Vec<u64>,
    /// The agreed snapshot for each (thread, round), once decided.
    agreed: HashMap<(usize, usize), Vec<u64>>,
    /// Safe agreement objects per (thread, round). The proposed "value"
    /// indexes into `proposed_views`.
    sa: HashMap<(usize, usize), SafeAgreement>,
    proposed_views: Vec<Vec<u64>>,
    /// Per simulator: per thread, (round, phase).
    cursors: Vec<Vec<(usize, ThreadPhase)>>,
    /// Per simulator: the thread it will work on next (round-robin).
    rr: Vec<usize>,
}

impl BgSimulation {
    /// Creates a simulation of `num_threads` simulated threads by
    /// `num_simulators` real simulators, targeting `target_rounds` rounds
    /// per thread.
    pub fn new(num_simulators: usize, num_threads: usize, target_rounds: usize) -> Self {
        BgSimulation {
            num_simulators,
            num_threads,
            target_rounds,
            sim_memory: vec![0; num_threads],
            agreed: HashMap::new(),
            sa: HashMap::new(),
            proposed_views: Vec::new(),
            cursors: vec![vec![(1usize, ThreadPhase::Snapshot); num_threads]; num_simulators],
            rr: vec![0; num_simulators],
        }
    }

    /// The completed round of each simulated thread.
    pub fn progress(&self) -> &[u64] {
        &self.sim_memory
    }

    /// The agreed view for a `(thread, round)`, if decided.
    pub fn agreed_view(&self, thread: usize, round: usize) -> Option<&Vec<u64>> {
        self.agreed.get(&(thread, round))
    }

    /// The number of simulated threads that completed `target_rounds`.
    pub fn finished_threads(&self) -> usize {
        self.sim_memory
            .iter()
            .filter(|&&r| r >= self.target_rounds as u64)
            .count()
    }

    /// The threads whose pending safe agreement is blocked by the given
    /// dead simulators (diagnostics for the blocking bound).
    pub fn blocked_threads(&self, dead: &[usize]) -> Vec<usize> {
        (0..self.num_threads)
            .filter(|&t| {
                let round = self.sim_memory[t] as usize + 1;
                self.sa
                    .get(&(t, round))
                    .is_some_and(|sa| sa.blocked_by(dead) && sa.decide().is_none())
            })
            .collect()
    }

    /// Whether every thread reached the target (used as the termination
    /// condition in failure-free runs).
    fn all_done(&self) -> bool {
        self.finished_threads() == self.num_threads
    }

    /// One atomic simulation step by `sim`: work on its round-robin
    /// thread, advancing that thread's pending phase.
    fn advance(&mut self, sim: usize) {
        if self.all_done() {
            return;
        }
        // Pick the next thread this simulator can help: skip threads that
        // are finished or whose SA is currently undecidable for us.
        let start = self.rr[sim];
        for off in 0..self.num_threads {
            let t = (start + off) % self.num_threads;
            if self.sim_memory[t] >= self.target_rounds as u64 {
                continue;
            }
            let (round, phase) = self.cursors[sim][t].clone();
            // The thread may have been advanced past `round` by another
            // simulator: resync.
            if (self.sim_memory[t] as usize) >= round {
                self.cursors[sim][t] = (self.sim_memory[t] as usize + 1, ThreadPhase::Snapshot);
                self.rr[sim] = (t + 1) % self.num_threads;
                return; // resync costs one (local) step
            }
            match phase {
                ThreadPhase::Snapshot => {
                    // One atomic snapshot of the simulated memory.
                    let view = self.sim_memory.clone();
                    let id = self.proposed_views.len() as u64;
                    self.proposed_views.push(view);
                    self.cursors[sim][t] = (round, ThreadPhase::SaEnter(id));
                    self.rr[sim] = t;
                    return;
                }
                ThreadPhase::SaEnter(id) => {
                    self.sa
                        .entry((t, round))
                        .or_default()
                        .propose_enter(sim, id);
                    self.cursors[sim][t] = (round, ThreadPhase::SaExit);
                    self.rr[sim] = t;
                    return;
                }
                ThreadPhase::SaExit => {
                    self.sa
                        .get_mut(&(t, round))
                        .expect("entered")
                        .propose_exit(sim);
                    self.cursors[sim][t] = (round, ThreadPhase::Decide);
                    self.rr[sim] = t;
                    return;
                }
                ThreadPhase::Decide => {
                    let decided = self.sa.get(&(t, round)).and_then(SafeAgreement::decide);
                    match decided {
                        Some(id) => {
                            let view = self.proposed_views[id as usize].clone();
                            self.agreed.entry((t, round)).or_insert(view);
                            // Publish the round (monotone max).
                            if self.sim_memory[t] < round as u64 {
                                self.sim_memory[t] = round as u64;
                            }
                            self.cursors[sim][t] = (round + 1, ThreadPhase::Snapshot);
                            self.rr[sim] = (t + 1) % self.num_threads;
                            return;
                        }
                        None => {
                            // Blocked on this thread for now: move on.
                            continue;
                        }
                    }
                }
            }
        }
        // Nothing workable: spin (the scheduler counts this as a step).
    }
}

impl System for BgSimulation {
    fn step(&mut self, p: ProcessId) -> bool {
        self.advance(p.index());
        self.has_terminated(p)
    }

    fn has_terminated(&self, _p: ProcessId) -> bool {
        self.all_done()
    }

    fn num_processes(&self) -> usize {
        self.num_simulators
    }
}

/// Convenience: the simulators as a participant set.
pub fn simulators(k_plus_1: usize) -> ColorSet {
    ColorSet::full(k_plus_1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::run_adversarial;
    use rand::SeedableRng;

    #[test]
    fn safe_agreement_solo() {
        let mut sa = SafeAgreement::new();
        sa.propose_enter(0, 42);
        assert_eq!(sa.decide(), None, "unsafe window blocks deciders");
        assert!(sa.propose_exit(0));
        assert_eq!(sa.decide(), Some(42));
    }

    #[test]
    fn safe_agreement_agrees_under_contention() {
        // Two proposers interleaved in every order: deciders always get a
        // single value, and it is one of the proposals.
        for order in 0..4u8 {
            let mut sa = SafeAgreement::new();
            match order {
                0 => {
                    sa.propose_enter(0, 10);
                    sa.propose_enter(1, 11);
                    sa.propose_exit(0);
                    sa.propose_exit(1);
                }
                1 => {
                    sa.propose_enter(0, 10);
                    sa.propose_exit(0);
                    sa.propose_enter(1, 11);
                    sa.propose_exit(1);
                }
                2 => {
                    sa.propose_enter(1, 11);
                    sa.propose_enter(0, 10);
                    sa.propose_exit(1);
                    sa.propose_exit(0);
                }
                _ => {
                    sa.propose_enter(1, 11);
                    sa.propose_exit(1);
                    sa.propose_enter(0, 10);
                    sa.propose_exit(0);
                }
            }
            let d = sa.decide().expect("no unsafe window left");
            assert!(d == 10 || d == 11);
        }
    }

    #[test]
    fn safe_agreement_blocks_only_during_window() {
        let mut sa = SafeAgreement::new();
        sa.propose_enter(0, 5);
        // Proposer 0 crashes inside the window: the object is blocked.
        assert!(sa.blocked_by(&[0]));
        assert_eq!(sa.decide(), None);
        // A different proposer cannot unblock it...
        sa.propose_enter(1, 6);
        sa.propose_exit(1);
        assert_eq!(sa.decide(), None, "level-1 cell still blocks");
    }

    #[test]
    fn failure_free_simulation_completes_all_threads() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(61);
        for sims in 2..=3 {
            let mut bg = BgSimulation::new(sims, 3, 4);
            let participants = ColorSet::full(sims);
            let outcome = run_adversarial(
                &mut bg,
                participants,
                participants,
                &mut rng,
                |_| 0,
                500_000,
            );
            assert!(outcome.all_correct_terminated, "{sims} simulators");
            assert_eq!(bg.finished_threads(), 3);
            // Every (thread, round) has exactly one agreed view, and the
            // views are valid: monotone per thread, self-consistent.
            for t in 0..3 {
                let mut prev: Option<Vec<u64>> = None;
                for r in 1..=4usize {
                    let view = bg.agreed_view(t, r).expect("agreed").clone();
                    assert_eq!(view.len(), 3);
                    // The thread's own completed round is at least r−1.
                    assert!(view[t] >= r as u64 - 1);
                    if let Some(p) = prev {
                        assert!(
                            view.iter().zip(&p).all(|(a, b)| a >= b),
                            "views are pointwise monotone over rounds"
                        );
                    }
                    prev = Some(view);
                }
            }
        }
    }

    #[test]
    fn one_crashed_simulator_blocks_at_most_one_thread() {
        // The BG guarantee, measured: with 2 simulators and one crashing
        // at an arbitrary point, at least n − 1 simulated threads still
        // reach the target.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(62);
        for budget in [0usize, 1, 2, 3, 5, 8, 13, 21, 34] {
            let mut bg = BgSimulation::new(2, 3, 3);
            let participants = ColorSet::full(2);
            let correct = ColorSet::from_indices([0]);
            let outcome = run_adversarial(
                &mut bg,
                participants,
                correct,
                &mut rng,
                |_| budget,
                500_000,
            );
            // The run ends when all threads finish or steps run out; the
            // correct simulator alone must push ≥ 2 threads to the end.
            let _ = outcome;
            assert!(
                bg.finished_threads() >= 2,
                "budget {budget}: {} threads finished, blocked: {:?}",
                bg.finished_threads(),
                bg.blocked_threads(&[1])
            );
            assert!(
                bg.blocked_threads(&[1]).len() <= 1,
                "a single crash blocks at most one safe agreement"
            );
        }
    }

    #[test]
    fn two_crashes_block_at_most_two_threads() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(63);
        for budget in [1usize, 4, 9, 16] {
            let mut bg = BgSimulation::new(3, 4, 3);
            let participants = ColorSet::full(3);
            let correct = ColorSet::from_indices([0]);
            let _ = run_adversarial(
                &mut bg,
                participants,
                correct,
                &mut rng,
                |_| budget,
                500_000,
            );
            assert!(
                bg.finished_threads() >= 2,
                "budget {budget}: {} finished",
                bg.finished_threads()
            );
            assert!(bg.blocked_threads(&[1, 2]).len() <= 2);
        }
    }

    #[test]
    fn agreement_is_per_thread_round_unique() {
        // Both simulators may propose different snapshots for the same
        // (thread, round); the agreed view is unique and is one of the
        // proposals. (Uniqueness is structural: `agreed` is written once.)
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(64);
        let mut bg = BgSimulation::new(3, 3, 5);
        let participants = ColorSet::full(3);
        let outcome = run_adversarial(
            &mut bg,
            participants,
            participants,
            &mut rng,
            |_| 0,
            500_000,
        );
        assert!(outcome.all_correct_terminated);
        for t in 0..3 {
            for r in 1..=5 {
                assert!(bg.agreed_view(t, r).is_some());
            }
        }
    }
}
