//! Wait-free atomic snapshot from single-writer registers
//! (Afek–Attiya–Dolev–Gafni–Merritt–Shavit, J. ACM 1993).
//!
//! The paper assumes atomic-snapshot memory as a primitive (Section 2);
//! this module *constructs* it from plain single-writer multi-reader
//! registers, so the assumption is discharged inside the repository:
//!
//! * an **update** embeds a full scan into the written register (the
//!   "helping" mechanism) and bumps a sequence number;
//! * a **scan** repeatedly double-collects; if two collects agree it
//!   returns the direct view, and once some process is seen *moving
//!   twice* the scanner borrows that process's embedded view, which is
//!   guaranteed to have been taken inside the scanner's interval.
//!
//! Every single-register read or write is one scheduler step, so the
//! algorithm runs under the same adversarial schedules as everything
//! else. The test-suite checks the atomic-snapshot axioms (comparability,
//! self-inclusion, per-process monotonicity) on histories produced by
//! random and exhaustive schedules.

use act_topology::ProcessId;

use crate::memory::RegisterArray;
use crate::scheduler::System;

/// The content of one single-writer register of the construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AfekCell<V> {
    /// The written value (`None` until the owner's first update).
    pub value: Option<V>,
    /// The owner's update sequence number.
    pub seq: u64,
    /// The scan embedded by the owner's last update (the helping view).
    pub embedded: Vec<Option<V>>,
}

impl<V: Clone> AfekCell<V> {
    fn empty(n: usize) -> Self {
        AfekCell {
            value: None,
            seq: 0,
            embedded: vec![None; n],
        }
    }
}

/// The shared memory of the construction: one single-writer register per
/// process.
#[derive(Clone, Debug)]
pub struct AfekShared<V> {
    regs: RegisterArray<AfekCell<V>>,
    reads: usize,
    writes: usize,
}

impl<V: Clone> AfekShared<V> {
    /// Creates the shared registers for `n` processes.
    pub fn new(n: usize) -> Self {
        AfekShared {
            regs: RegisterArray::from_values((0..n).map(|_| AfekCell::empty(n)).collect()),
            reads: 0,
            writes: 0,
        }
    }

    /// The number of processes.
    pub fn num_processes(&self) -> usize {
        self.regs.len()
    }

    /// Register operation counters `(reads, writes)`.
    pub fn op_counts(&self) -> (usize, usize) {
        (self.reads, self.writes)
    }

    fn read(&mut self, q: ProcessId) -> AfekCell<V> {
        self.reads += 1;
        self.regs.read(q).clone()
    }

    fn write(&mut self, p: ProcessId, cell: AfekCell<V>) {
        self.writes += 1;
        self.regs.write(p, cell);
    }
}

/// One wait-free scan, as a step machine (each register read = one step).
#[derive(Clone, Debug)]
pub struct AfekScan<V> {
    n: usize,
    phase: ScanPhase,
    first: Vec<AfekCell<V>>,
    second: Vec<AfekCell<V>>,
    /// How many times each process has been observed moving.
    moved: Vec<u8>,
    result: Option<Vec<Option<V>>>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScanPhase {
    FirstCollect(usize),
    SecondCollect(usize),
    Done,
}

impl<V: Clone> AfekScan<V> {
    /// Starts a scan in an `n`-process system.
    pub fn new(n: usize) -> Self {
        AfekScan {
            n,
            phase: ScanPhase::FirstCollect(0),
            first: Vec::with_capacity(n),
            second: Vec::with_capacity(n),
            moved: vec![0; n],
            result: None,
        }
    }

    /// The scan's result, once available.
    pub fn result(&self) -> Option<&[Option<V>]> {
        self.result.as_deref()
    }

    /// Executes one register read; returns whether the scan completed.
    pub fn step(&mut self, shared: &mut AfekShared<V>) -> bool {
        match self.phase {
            ScanPhase::Done => true,
            ScanPhase::FirstCollect(i) => {
                self.first.push(shared.read(ProcessId::new(i)));
                self.phase = if i + 1 == self.n {
                    ScanPhase::SecondCollect(0)
                } else {
                    ScanPhase::FirstCollect(i + 1)
                };
                false
            }
            ScanPhase::SecondCollect(i) => {
                self.second.push(shared.read(ProcessId::new(i)));
                if i + 1 < self.n {
                    self.phase = ScanPhase::SecondCollect(i + 1);
                    return false;
                }
                // Compare the two collects.
                if self
                    .first
                    .iter()
                    .zip(&self.second)
                    .all(|(a, b)| a.seq == b.seq)
                {
                    self.result = Some(self.second.iter().map(|c| c.value.clone()).collect());
                    self.phase = ScanPhase::Done;
                    return true;
                }
                // Track movers; borrow a double-mover's embedded view.
                for q in 0..self.n {
                    if self.first[q].seq != self.second[q].seq {
                        self.moved[q] += 1;
                        if self.moved[q] >= 2 {
                            self.result = Some(self.second[q].embedded.clone());
                            self.phase = ScanPhase::Done;
                            return true;
                        }
                    }
                }
                // Retry: the second collect becomes the first.
                self.first = std::mem::take(&mut self.second);
                self.phase = ScanPhase::SecondCollect(0);
                false
            }
        }
    }
}

/// One wait-free update: an embedded scan followed by a single write.
#[derive(Clone, Debug)]
pub struct AfekUpdate<V> {
    value: V,
    scan: AfekScan<V>,
    wrote: bool,
}

impl<V: Clone> AfekUpdate<V> {
    /// Starts an update of `value` in an `n`-process system.
    pub fn new(n: usize, value: V) -> Self {
        AfekUpdate {
            value,
            scan: AfekScan::new(n),
            wrote: false,
        }
    }

    /// Whether the update has completed.
    pub fn is_done(&self) -> bool {
        self.wrote
    }

    /// Executes one register operation for owner `p`; returns whether the
    /// update completed.
    pub fn step(&mut self, p: ProcessId, shared: &mut AfekShared<V>) -> bool {
        if self.wrote {
            return true;
        }
        if self.scan.result().is_none() {
            self.scan.step(shared);
            return false;
        }
        let embedded = self.scan.result().expect("scan completed").to_vec();
        let old = shared.read(p); // one extra read to fetch own seq
        shared.write(
            p,
            AfekCell {
                value: Some(self.value.clone()),
                seq: old.seq + 1,
                embedded,
            },
        );
        self.wrote = true;
        true
    }
}

/// A scripted system driving the construction: each process executes an
/// alternating sequence of updates and scans, recording every scan result
/// for the atomicity checker.
pub struct AfekSystem<V> {
    shared: AfekShared<V>,
    programs: Vec<Program<V>>,
    recorded: Vec<RecordedScan<V>>,
}

/// A per-process script: the updates to perform, with a scan after each.
enum Program<V> {
    Idle,
    Updating { queue: Vec<V>, op: AfekUpdate<V> },
    Scanning { queue: Vec<V>, op: AfekScan<V> },
}

/// A recorded scan: who, at which point of its script, saw what.
#[derive(Clone, Debug)]
pub struct RecordedScan<V> {
    /// The scanning process.
    pub process: ProcessId,
    /// The returned vector of values.
    pub view: Vec<Option<V>>,
}

impl<V: Clone> AfekSystem<V> {
    /// Creates the system; `scripts[i]` is the sequence of values process
    /// `i` will write (scanning after each write).
    pub fn new(scripts: Vec<Vec<V>>) -> Self {
        let n = scripts.len();
        let programs = scripts
            .into_iter()
            .map(|mut queue| {
                queue.reverse();
                match queue.pop() {
                    Some(v) => Program::Updating {
                        queue,
                        op: AfekUpdate::new(n, v),
                    },
                    None => Program::Idle,
                }
            })
            .collect();
        AfekSystem {
            shared: AfekShared::new(n),
            programs,
            recorded: Vec::new(),
        }
    }

    /// All scans recorded so far, in completion order.
    pub fn scans(&self) -> &[RecordedScan<V>] {
        &self.recorded
    }

    /// Register operation counters.
    pub fn op_counts(&self) -> (usize, usize) {
        self.shared.op_counts()
    }
}

impl<V: Clone> AfekSystem<V> {
    fn advance(&mut self, p: ProcessId) {
        let i = p.index();
        let n = self.shared.num_processes();
        let program = std::mem::replace(&mut self.programs[i], Program::Idle);
        self.programs[i] = match program {
            Program::Idle => Program::Idle,
            Program::Updating { mut queue, mut op } => {
                if op.step(p, &mut self.shared) {
                    let _ = &mut queue;
                    Program::Scanning {
                        queue,
                        op: AfekScan::new(n),
                    }
                } else {
                    Program::Updating { queue, op }
                }
            }
            Program::Scanning { mut queue, mut op } => {
                if op.step(&mut self.shared) {
                    self.recorded.push(RecordedScan {
                        process: p,
                        view: op.result().expect("done").to_vec(),
                    });
                    match queue.pop() {
                        Some(v) => Program::Updating {
                            queue,
                            op: AfekUpdate::new(n, v),
                        },
                        None => Program::Idle,
                    }
                } else {
                    Program::Scanning { queue, op }
                }
            }
        };
    }
}

impl<V: Clone> System for AfekSystem<V> {
    fn step(&mut self, p: ProcessId) -> bool {
        self.advance(p);
        self.has_terminated(p)
    }

    fn has_terminated(&self, p: ProcessId) -> bool {
        matches!(self.programs[p.index()], Program::Idle)
    }

    fn num_processes(&self) -> usize {
        self.shared.num_processes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{explore_schedules, run_adversarial};
    use act_topology::ColorSet;
    use rand::SeedableRng;

    /// Atomic-snapshot axioms on a history of scans over scripts with
    /// strictly increasing values per process: (1) scans are pointwise
    /// comparable; (2) a process's own latest completed write appears in
    /// its subsequent scans; (3) per-process scan sequences are monotone.
    fn check_axioms(scans: &[RecordedScan<u32>]) {
        let leq = |a: &Vec<Option<u32>>, b: &Vec<Option<u32>>| {
            a.iter().zip(b).all(|(x, y)| match (x, y) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(x), Some(y)) => x <= y,
            })
        };
        for (i, s1) in scans.iter().enumerate() {
            for s2 in &scans[i + 1..] {
                assert!(
                    leq(&s1.view, &s2.view) || leq(&s2.view, &s1.view),
                    "incomparable scans: {:?} vs {:?}",
                    s1.view,
                    s2.view
                );
            }
        }
        let mut last: std::collections::HashMap<ProcessId, Vec<Option<u32>>> =
            std::collections::HashMap::new();
        for s in scans {
            if let Some(prev) = last.get(&s.process) {
                assert!(leq(prev, &s.view), "scan of {} went backwards", s.process);
            }
            last.insert(s.process, s.view.clone());
        }
    }

    fn scripts(n: usize, writes: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| (0..writes).map(|w| (w * n + i + 1) as u32).collect())
            .collect()
    }

    #[test]
    fn solo_update_and_scan() {
        let mut sys = AfekSystem::new(vec![vec![7u32], vec![]]);
        let p0 = ProcessId::new(0);
        let mut guard = 0;
        while !sys.has_terminated(p0) {
            sys.step(p0);
            guard += 1;
            assert!(guard < 100, "wait-free");
        }
        assert_eq!(sys.scans().len(), 1);
        assert_eq!(sys.scans()[0].view, vec![Some(7), None]);
    }

    #[test]
    fn axioms_hold_under_random_schedules() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        for trial in 0..120 {
            let n = 2 + trial % 3;
            let mut sys = AfekSystem::new(scripts(n, 3));
            let participants = ColorSet::full(n);
            let outcome = run_adversarial(
                &mut sys,
                participants,
                participants,
                &mut rng,
                |_| 0,
                200_000,
            );
            assert!(outcome.all_correct_terminated, "wait-freedom");
            check_axioms(sys.scans());
        }
    }

    #[test]
    fn axioms_hold_with_crashed_writers() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(22);
        for budget in [0usize, 3, 7, 15] {
            let mut sys = AfekSystem::new(scripts(3, 2));
            let participants = ColorSet::full(3);
            let correct = ColorSet::from_indices([0, 2]);
            let outcome = run_adversarial(
                &mut sys,
                participants,
                correct,
                &mut rng,
                |_| budget,
                200_000,
            );
            assert!(outcome.all_correct_terminated, "crashes cannot block scans");
            check_axioms(sys.scans());
        }
    }

    #[test]
    fn exhaustive_two_process_histories_are_atomic() {
        let participants = ColorSet::full(2);
        let runs = explore_schedules(
            || AfekSystem::new(scripts(2, 1)),
            participants,
            participants,
            64,
            200_000,
            |sys, outcome| {
                assert!(outcome.all_correct_terminated);
                check_axioms(sys.scans());
            },
        );
        assert!(runs > 10, "explored {runs} interleavings");
    }

    #[test]
    fn helping_resolves_fast_writers() {
        // One scanner vs a writer that keeps moving: the scanner borrows
        // an embedded view after at most two observed moves, so it
        // finishes within a bounded number of its own steps regardless of
        // the writer's speed.
        let mut sys = AfekSystem::new(vec![vec![], (1..=50u32).collect()]);
        let scanner = ProcessId::new(0);
        let writer = ProcessId::new(1);
        // Give the scanner a standalone scan by hand.
        let mut scan = AfekScan::new(2);
        let mut scanner_steps = 0;
        loop {
            // Writer makes progress between every scanner step.
            for _ in 0..5 {
                sys.step(writer);
            }
            if scan.step(&mut sys.shared) {
                break;
            }
            scanner_steps += 1;
            assert!(scanner_steps < 10 * 2 * 4, "scan is wait-free bounded");
        }
        assert!(scan.result().is_some());
        let _ = scanner;
    }

    #[test]
    fn operation_counts_are_tracked() {
        let mut sys = AfekSystem::new(scripts(2, 1));
        let participants = ColorSet::full(2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let _ = run_adversarial(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            50_000,
        );
        let (reads, writes) = sys.op_counts();
        assert!(reads > 0 && writes > 0);
    }
}
