//! Deterministic, replayable scheduling of asynchronous process systems.
//!
//! A [`System`] bundles the shared memory and the per-process protocol
//! states; the scheduler chooses which process executes its next atomic
//! step. Runs are driven either by an explicit [`Schedule`], by a seeded
//! random generator (adversarial sampling), or by bounded exhaustive
//! exploration (small systems).

use act_topology::{ColorSet, ProcessId};

/// A system of `n` asynchronous processes sharing memory. One call to
/// [`System::step`] executes exactly one atomic shared-memory operation of
/// the chosen process.
pub trait System {
    /// Executes one atomic step of `p`. Stepping a terminated process is a
    /// no-op. Returns whether `p` is (now) terminated.
    fn step(&mut self, p: ProcessId) -> bool;

    /// Whether `p` has terminated (produced its output).
    fn has_terminated(&self, p: ProcessId) -> bool;

    /// The number of processes.
    fn num_processes(&self) -> usize;
}

/// An explicit schedule: the sequence of processes taking steps.
pub type Schedule = Vec<ProcessId>;

/// A schedule referenced a process the system does not have: step
/// `step` named `process`, but the system only has `num_processes`
/// processes. Returned by [`run_schedule`] (and trace replay) instead
/// of indexing out of range inside the system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleError {
    /// Index into the schedule of the offending step.
    pub step: usize,
    /// The out-of-range process the step named.
    pub process: ProcessId,
    /// The system's process count.
    pub num_processes: usize,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule step {} names process {}, but the system has only {} processes",
            self.step,
            self.process.index(),
            self.num_processes
        )
    }
}

impl std::error::Error for ScheduleError {}

/// The outcome of driving a system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total steps executed.
    pub steps: usize,
    /// Processes that terminated.
    pub terminated: ColorSet,
    /// Whether every targeted (correct) process terminated.
    pub all_correct_terminated: bool,
    /// The schedule actually executed (for replay).
    pub schedule: Schedule,
    /// The processes the run targeted: the `correct` set of an adversarial
    /// run or exploration, or the set of scheduled processes of an explicit
    /// replay.
    pub correct: ColorSet,
    /// Per-process initial crash budgets of an adversarial run (`None` for
    /// unbounded/correct processes). Empty for replays and exploration,
    /// where budgets do not apply.
    pub crash_budgets: Vec<Option<u32>>,
}

/// Replays an explicit schedule. Steps of already-terminated processes are
/// executed as no-ops (and still recorded).
///
/// Liveness is reported against the scheduled processes: the outcome's
/// `correct` set is the set of processes appearing in `schedule`, and
/// `all_correct_terminated` holds iff every one of them has terminated
/// after the replay.
///
/// Every step is bounds-checked against the system's process count
/// *before* any step executes, so a corrupted schedule returns
/// [`ScheduleError`] with the system untouched instead of indexing out
/// of range mid-run.
pub fn run_schedule<S: System>(
    sys: &mut S,
    schedule: &[ProcessId],
) -> Result<RunOutcome, ScheduleError> {
    let n = sys.num_processes();
    if let Some((step, &process)) = schedule.iter().enumerate().find(|(_, p)| p.index() >= n) {
        return Err(ScheduleError {
            step,
            process,
            num_processes: n,
        });
    }
    let mut scheduled = ColorSet::EMPTY;
    for &p in schedule {
        sys.step(p);
        scheduled = scheduled.with(p);
    }
    let terminated = terminated_set(sys);
    Ok(RunOutcome {
        steps: schedule.len(),
        terminated,
        all_correct_terminated: scheduled.is_subset_of(terminated),
        schedule: schedule.to_vec(),
        correct: scheduled,
        crash_budgets: Vec::new(),
    })
}

pub(crate) fn terminated_set<S: System>(sys: &S) -> ColorSet {
    (0..sys.num_processes())
        .map(ProcessId::new)
        .filter(|&p| sys.has_terminated(p))
        .collect()
}

/// Drives `sys` with a seeded random adversarial schedule:
///
/// * processes in `correct` are scheduled until they terminate;
/// * processes in `participants \ correct` are *faulty*: each takes at most
///   its crash budget of steps (chosen by `crash_budget(p)`), then stops;
/// * processes outside `participants` never move.
///
/// Returns when every correct process has terminated, or when `max_steps`
/// is reached (`all_correct_terminated` is then `false` — a liveness
/// violation if the protocol was supposed to terminate).
///
/// # Panics
///
/// Panics if `correct` is not a subset of `participants`, or is empty.
pub fn run_adversarial<S, R, F>(
    sys: &mut S,
    participants: ColorSet,
    correct: ColorSet,
    rng: &mut R,
    crash_budget: F,
    max_steps: usize,
) -> RunOutcome
where
    S: System,
    R: rand::Rng,
    F: FnMut(ProcessId) -> usize,
{
    let outcome = run_adversarial_inner(
        sys,
        participants,
        correct,
        rng,
        crash_budget,
        max_steps,
        None,
    );
    if !outcome.all_correct_terminated {
        LIVENESS_FAILURES.add(1);
        crate::trace::capture_liveness_artifact(participants, &outcome, max_steps);
    }
    outcome
}

/// The adversarial scheduling loop shared by [`run_adversarial`] and the
/// fault-injection wrapper ([`crate::fault::run_adversarial_with_faults`]):
/// when an injector is supplied, it gets a hook at every decision point
/// (crash events before eligibility, stall filtering of the eligible set,
/// and perturbation of the random pick). Liveness accounting and artifact
/// capture are the wrappers' responsibility.
pub(crate) fn run_adversarial_inner<S, R, F>(
    sys: &mut S,
    participants: ColorSet,
    correct: ColorSet,
    rng: &mut R,
    mut crash_budget: F,
    max_steps: usize,
    mut injector: Option<&mut crate::fault::FaultInjector>,
) -> RunOutcome
where
    S: System,
    R: rand::Rng,
    F: FnMut(ProcessId) -> usize,
{
    assert!(
        correct.is_subset_of(participants),
        "correct processes must participate"
    );
    assert!(!correct.is_empty(), "at least one process must be correct");
    let mut budgets: Vec<Option<usize>> = (0..sys.num_processes())
        .map(|i| {
            let p = ProcessId::new(i);
            if !participants.contains(p) {
                Some(0)
            } else if correct.contains(p) {
                None // unbounded
            } else {
                Some(crash_budget(p))
            }
        })
        .collect();
    let initial_budgets: Vec<Option<u32>> = budgets.iter().map(|b| b.map(|v| v as u32)).collect();
    let span = act_obs::span("scheduler.run_adversarial");

    let mut schedule = Vec::new();
    let mut steps = 0usize;
    let outcome = loop {
        // Injected crash events fire at their step index, zeroing the
        // target's remaining budget (correct processes are exempt — a
        // fair adversary may not crash them).
        if let Some(inj) = injector.as_deref_mut() {
            inj.apply_crashes(steps, correct, &mut budgets);
        }
        // Eligible: not terminated, with budget left.
        let mut eligible: Vec<ProcessId> = (0..sys.num_processes())
            .map(ProcessId::new)
            .filter(|&p| !sys.has_terminated(p) && budgets[p.index()] != Some(0))
            .collect();
        let correct_pending = correct.iter().any(|p| !sys.has_terminated(p));
        if !correct_pending {
            break RunOutcome {
                steps,
                terminated: terminated_set(sys),
                all_correct_terminated: true,
                schedule,
                correct,
                crash_budgets: initial_budgets,
            };
        }
        if eligible.is_empty() || steps >= max_steps {
            break RunOutcome {
                steps,
                terminated: terminated_set(sys),
                all_correct_terminated: false,
                schedule,
                correct,
                crash_budgets: initial_budgets,
            };
        }
        if let Some(inj) = injector.as_deref_mut() {
            // Stalled processes are withheld from the pick — unless that
            // would empty the eligible set, which an (eventually fair)
            // stall may not do.
            eligible = inj.filter_stalls(eligible, steps);
        }
        let mut idx = rng.gen_range(0..eligible.len());
        if let Some(inj) = injector.as_deref_mut() {
            idx = inj.perturb(steps, idx, eligible.len());
        }
        let p = eligible[idx];
        if let Some(b) = &mut budgets[p.index()] {
            *b -= 1;
        }
        sys.step(p);
        schedule.push(p);
        steps += 1;
    };
    if act_obs::enabled() {
        span.finish()
            .u64("steps", outcome.steps as u64)
            .u64("terminated", outcome.terminated.len() as u64)
            .bool("live", outcome.all_correct_terminated)
            .emit();
    }
    outcome
}

/// Process-global count of liveness failures observed by
/// [`run_adversarial`] (telemetry; see [`act_obs::Counter`]).
pub static LIVENESS_FAILURES: act_obs::Counter =
    act_obs::Counter::new("scheduler.liveness_failures");

/// Bounded exhaustive exploration: enumerates every interleaving of the
/// participants (faulty processes may stop at any point — modeled by
/// simply not scheduling them further), invoking `visit` on each maximal
/// run, until `max_runs` runs have been visited or the space is exhausted.
///
/// A run is maximal when every correct process has terminated. The
/// exploration aborts a branch after `max_depth` steps (counted as a
/// liveness failure, reported with `all_correct_terminated = false`).
///
/// Every branch re-executes its whole prefix on a fresh system from
/// `factory`, which makes exploration quadratic in depth but works for any
/// [`System`]. When the system is [`Clone`], prefer
/// [`explore_schedules_cloned`], which forks the system state at each
/// branch point instead and visits the identical run set.
///
/// Returns the number of runs visited.
pub fn explore_schedules<S, F, V>(
    factory: F,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    mut visit: V,
) -> usize
where
    S: System,
    F: Fn() -> S,
    V: FnMut(&S, &RunOutcome),
{
    assert!(
        correct.is_subset_of(participants),
        "correct processes must participate"
    );
    let span = act_obs::span("scheduler.explore");
    let mut stats = ExploreStats::default();
    let mut prefix: Schedule = Vec::new();
    explore_rec(
        &factory,
        participants,
        correct,
        max_depth,
        max_runs,
        &mut prefix,
        &mut stats,
        &mut visit,
    );
    stats.emit(span, "replay");
    stats.runs
}

/// Bounded exhaustive exploration over a [`Clone`] system: identical run
/// set, visit order, and outcomes as [`explore_schedules`] from the same
/// initial state, but each branch point clones the current system and
/// takes one step instead of replaying the whole prefix — linear instead
/// of quadratic in depth.
///
/// Returns the number of runs visited.
pub fn explore_schedules_cloned<S, V>(
    initial: &S,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    mut visit: V,
) -> usize
where
    S: System + Clone,
    V: FnMut(&S, &RunOutcome),
{
    assert!(
        correct.is_subset_of(participants),
        "correct processes must participate"
    );
    let span = act_obs::span("scheduler.explore");
    let mut stats = ExploreStats::default();
    let mut prefix: Schedule = Vec::new();
    explore_rec_cloned(
        initial,
        participants,
        correct,
        max_depth,
        max_runs,
        &mut prefix,
        &mut stats,
        &mut visit,
    );
    stats.emit(span, "cloned");
    stats.runs
}

/// The enumeration order of a streaming exploration ([`explore_iter`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreOrder {
    /// Depth-first: the run *sequence* is identical to
    /// [`explore_schedules`] / [`explore_schedules_cloned`] from the same
    /// initial state, including under depth aborts and run caps.
    DepthFirst,
    /// Breadth-first: shortest runs first. On a fully explored scope the
    /// run *set* is identical to [`DepthFirst`](ExploreOrder::DepthFirst)
    /// (only the order differs); under a `max_runs` cap the visited
    /// prefix differs, so exhaustiveness checks should leave the cap
    /// above the scope's run count.
    BreadthFirst,
}

/// A streaming, deterministic exploration of the schedule tree: the
/// pull-based (iterator) form of [`explore_schedules_cloned`].
///
/// Where the visitor-based explorers push every run through a callback
/// in one uninterruptible recursion, this iterator yields one
/// `(final system, outcome)` pair per maximal (or depth-aborted) run and
/// can be suspended, resumed, or abandoned between runs — which is what
/// long-running campaign runners need to interleave checkpointing with
/// enumeration. Memory is bounded by the live frontier
/// (`O(depth × branching)` for depth-first), never by the number of runs.
///
/// Construct with [`explore_iter`].
pub struct ExploreIter<S: System + Clone> {
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    order: ExploreOrder,
    frontier: std::collections::VecDeque<(S, Schedule)>,
    stats: ExploreStats,
    span: Option<act_obs::Span>,
    done: bool,
}

/// Streams the bounded exhaustive exploration of `initial` as an
/// iterator over `(final system, outcome)` pairs — the same run space as
/// [`explore_schedules_cloned`], enumerated in the chosen
/// [`ExploreOrder`] without ever materializing the run set.
pub fn explore_iter<S: System + Clone>(
    initial: &S,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    order: ExploreOrder,
) -> ExploreIter<S> {
    assert!(
        correct.is_subset_of(participants),
        "correct processes must participate"
    );
    let mut frontier = std::collections::VecDeque::new();
    frontier.push_back((initial.clone(), Schedule::new()));
    ExploreIter {
        participants,
        correct,
        max_depth,
        max_runs,
        order,
        frontier,
        stats: ExploreStats::default(),
        span: Some(act_obs::span("scheduler.explore")),
        done: false,
    }
}

impl<S: System + Clone> ExploreIter<S> {
    /// Runs yielded so far.
    pub fn runs(&self) -> usize {
        self.stats.runs
    }

    fn finish(&mut self) {
        self.done = true;
        if let Some(span) = self.span.take() {
            let strategy = match self.order {
                ExploreOrder::DepthFirst => "stream-dfs",
                ExploreOrder::BreadthFirst => "stream-bfs",
            };
            self.stats.emit(span, strategy);
        }
    }
}

impl<S: System + Clone> Iterator for ExploreIter<S> {
    type Item = (S, RunOutcome);

    fn next(&mut self) -> Option<(S, RunOutcome)> {
        if self.done {
            return None;
        }
        while self.stats.runs < self.max_runs {
            let node = match self.order {
                ExploreOrder::DepthFirst => self.frontier.pop_back(),
                ExploreOrder::BreadthFirst => self.frontier.pop_front(),
            };
            let Some((sys, prefix)) = node else { break };
            let correct_pending = self.correct.iter().any(|p| !sys.has_terminated(p));
            if !correct_pending || prefix.len() >= self.max_depth {
                let outcome = explored_outcome(&sys, self.correct, correct_pending, &prefix);
                self.stats.visit_run(&outcome);
                return Some((sys, outcome));
            }
            // Interior node: expand the children. Depth-first pushes them
            // in reverse so the lowest process pops first — the exact
            // preorder of the recursive explorers.
            let expand = |frontier: &mut std::collections::VecDeque<(S, Schedule)>,
                          p: ProcessId| {
                let mut child = sys.clone();
                child.step(p);
                let mut schedule = prefix.clone();
                schedule.push(p);
                frontier.push_back((child, schedule));
            };
            let children = self.participants.iter().filter(|&p| !sys.has_terminated(p));
            match self.order {
                ExploreOrder::DepthFirst => {
                    let children: Vec<ProcessId> = children.collect();
                    for p in children.into_iter().rev() {
                        expand(&mut self.frontier, p);
                    }
                }
                ExploreOrder::BreadthFirst => {
                    for p in children {
                        expand(&mut self.frontier, p);
                    }
                }
            }
        }
        self.finish();
        None
    }
}

/// Telemetry tallies of one exploration.
#[derive(Default)]
struct ExploreStats {
    runs: usize,
    steps: usize,
    liveness_failures: usize,
}

impl ExploreStats {
    fn visit_run(&mut self, outcome: &RunOutcome) {
        self.runs += 1;
        self.steps += outcome.steps;
        if !outcome.all_correct_terminated {
            self.liveness_failures += 1;
        }
    }

    fn emit(&self, span: act_obs::Span, strategy: &str) {
        if act_obs::enabled() {
            span.finish()
                .str("strategy", strategy)
                .u64("runs", self.runs as u64)
                .u64("steps", self.steps as u64)
                .u64("liveness_failures", self.liveness_failures as u64)
                .emit();
        }
    }
}

/// Builds the outcome of a maximal (or depth-aborted) explored run.
pub(crate) fn explored_outcome<S: System>(
    sys: &S,
    correct: ColorSet,
    correct_pending: bool,
    prefix: &Schedule,
) -> RunOutcome {
    RunOutcome {
        steps: prefix.len(),
        terminated: terminated_set(sys),
        all_correct_terminated: !correct_pending,
        schedule: prefix.clone(),
        correct,
        crash_budgets: Vec::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn explore_rec<S, F, V>(
    factory: &F,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    prefix: &mut Schedule,
    stats: &mut ExploreStats,
    visit: &mut V,
) where
    S: System,
    F: Fn() -> S,
    V: FnMut(&S, &RunOutcome),
{
    if stats.runs >= max_runs {
        return;
    }
    // Replay the prefix on a fresh system.
    let mut sys = factory();
    for &p in prefix.iter() {
        sys.step(p);
    }
    let correct_pending = correct.iter().any(|p| !sys.has_terminated(p));
    if !correct_pending || prefix.len() >= max_depth {
        let outcome = explored_outcome(&sys, correct, correct_pending, prefix);
        stats.visit_run(&outcome);
        visit(&sys, &outcome);
        return;
    }
    for p in participants.iter() {
        if sys.has_terminated(p) {
            continue;
        }
        prefix.push(p);
        explore_rec(
            factory,
            participants,
            correct,
            max_depth,
            max_runs,
            prefix,
            stats,
            visit,
        );
        prefix.pop();
        if stats.runs >= max_runs {
            return;
        }
    }
    // Additionally: branches where every remaining non-terminated faulty
    // process crashes here are covered by the sub-branches that only
    // schedule correct processes from now on, because crashing is simply
    // "never scheduled again".
}

#[allow(clippy::too_many_arguments)]
fn explore_rec_cloned<S, V>(
    sys: &S,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    prefix: &mut Schedule,
    stats: &mut ExploreStats,
    visit: &mut V,
) where
    S: System + Clone,
    V: FnMut(&S, &RunOutcome),
{
    if stats.runs >= max_runs {
        return;
    }
    let correct_pending = correct.iter().any(|p| !sys.has_terminated(p));
    if !correct_pending || prefix.len() >= max_depth {
        let outcome = explored_outcome(sys, correct, correct_pending, prefix);
        stats.visit_run(&outcome);
        visit(sys, &outcome);
        return;
    }
    for p in participants.iter() {
        if sys.has_terminated(p) {
            continue;
        }
        // Fork the system state instead of replaying the prefix.
        let mut child = sys.clone();
        child.step(p);
        prefix.push(p);
        explore_rec_cloned(
            &child,
            participants,
            correct,
            max_depth,
            max_runs,
            prefix,
            stats,
            visit,
        );
        prefix.pop();
        if stats.runs >= max_runs {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A toy system: each process must take exactly `k` steps to finish.
    #[derive(Clone)]
    struct Countdown {
        remaining: Vec<usize>,
    }

    impl Countdown {
        fn new(n: usize, k: usize) -> Self {
            Countdown {
                remaining: vec![k; n],
            }
        }
    }

    impl System for Countdown {
        fn step(&mut self, p: ProcessId) -> bool {
            let r = &mut self.remaining[p.index()];
            if *r > 0 {
                *r -= 1;
            }
            *r == 0
        }
        fn has_terminated(&self, p: ProcessId) -> bool {
            self.remaining[p.index()] == 0
        }
        fn num_processes(&self) -> usize {
            self.remaining.len()
        }
    }

    #[test]
    fn run_schedule_replays() {
        let mut sys = Countdown::new(2, 2);
        let p0 = ProcessId::new(0);
        let outcome = run_schedule(&mut sys, &[p0, p0]).expect("in-range schedule");
        assert_eq!(outcome.steps, 2);
        assert!(sys.has_terminated(p0));
        assert!(!sys.has_terminated(ProcessId::new(1)));
        assert_eq!(outcome.terminated, ColorSet::from_indices([0]));
    }

    #[test]
    fn replayed_completing_schedule_reports_liveness() {
        // Regression: `run_schedule` used to hardcode
        // `all_correct_terminated: false`, so even a schedule that ran
        // every scheduled process to completion was reported as a liveness
        // failure on replay.
        let mut sys = Countdown::new(2, 2);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let outcome = run_schedule(&mut sys, &[p0, p1, p0, p1]).expect("in-range schedule");
        assert_eq!(outcome.terminated, ColorSet::full(2));
        assert_eq!(outcome.correct, ColorSet::full(2));
        assert!(
            outcome.all_correct_terminated,
            "a completing schedule must report liveness truthfully"
        );

        // A partial schedule leaves p1 running: liveness fails for the
        // scheduled set.
        let mut sys = Countdown::new(2, 2);
        let outcome = run_schedule(&mut sys, &[p0, p0, p1]).expect("in-range schedule");
        assert_eq!(outcome.correct, ColorSet::full(2));
        assert!(!outcome.all_correct_terminated);

        // Liveness is judged against scheduled processes only: never
        // scheduling p1 at all is not a failure.
        let mut sys = Countdown::new(2, 2);
        let outcome = run_schedule(&mut sys, &[p0, p0]).expect("in-range schedule");
        assert_eq!(outcome.correct, ColorSet::from_indices([0]));
        assert!(outcome.all_correct_terminated);
    }

    #[test]
    fn out_of_range_schedule_is_a_typed_error_and_leaves_the_system_untouched() {
        let mut sys = Countdown::new(2, 2);
        let p0 = ProcessId::new(0);
        let bogus = ProcessId::new(5);
        let err = run_schedule(&mut sys, &[p0, bogus, p0]).expect_err("process 5 of 2");
        assert_eq!(
            err,
            ScheduleError {
                step: 1,
                process: bogus,
                num_processes: 2
            }
        );
        assert!(err.to_string().contains("names process 5"));
        // Validation happens before any step executes.
        assert_eq!(sys.remaining, vec![2, 2]);
    }

    #[test]
    fn adversarial_run_terminates_correct_processes() {
        let mut sys = Countdown::new(3, 4);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let participants = ColorSet::full(3);
        let correct = ColorSet::from_indices([0, 2]);
        let outcome = run_adversarial(&mut sys, participants, correct, &mut rng, |_| 2, 10_000);
        assert!(outcome.all_correct_terminated);
        assert!(sys.has_terminated(ProcessId::new(0)));
        assert!(sys.has_terminated(ProcessId::new(2)));
        // The faulty process took at most 2 of its 4 steps.
        assert!(!sys.has_terminated(ProcessId::new(1)));
    }

    #[test]
    fn adversarial_run_detects_livelock() {
        // A process that never finishes.
        struct Never;
        impl System for Never {
            fn step(&mut self, _p: ProcessId) -> bool {
                false
            }
            fn has_terminated(&self, _p: ProcessId) -> bool {
                false
            }
            fn num_processes(&self) -> usize {
                1
            }
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let p = ColorSet::from_indices([0]);
        let outcome = run_adversarial(&mut Never, p, p, &mut rng, |_| 0, 50);
        assert!(!outcome.all_correct_terminated);
        assert_eq!(outcome.steps, 50);
    }

    #[test]
    fn exhaustive_exploration_counts_interleavings() {
        // Two processes, one step each, both correct: the maximal runs are
        // the 2 orderings.
        let participants = ColorSet::full(2);
        let count = explore_schedules(
            || Countdown::new(2, 1),
            participants,
            participants,
            10,
            1000,
            |_sys, outcome| {
                assert!(outcome.all_correct_terminated);
                assert_eq!(outcome.steps, 2);
            },
        );
        assert_eq!(count, 2);
    }

    #[test]
    fn exploration_respects_run_cap() {
        let participants = ColorSet::full(3);
        let count = explore_schedules(
            || Countdown::new(3, 3),
            participants,
            participants,
            100,
            17,
            |_, _| {},
        );
        assert_eq!(count, 17);
    }

    #[test]
    fn cloned_and_factory_exploration_visit_identical_run_sets() {
        // Satellite regression: the clone-forking exploration must visit
        // exactly the same runs, in the same order, with the same
        // outcomes, as the prefix-replaying factory path — including under
        // faulty participants, depth aborts, and run caps.
        type Visited = Vec<(Schedule, ColorSet, bool)>;
        fn record(out: &mut Visited, o: &RunOutcome) {
            out.push((o.schedule.clone(), o.terminated, o.all_correct_terminated));
        }
        let cases = [
            // (n, k, participants, correct, max_depth, max_runs)
            (2, 1, ColorSet::full(2), ColorSet::full(2), 10, 1000),
            (
                3,
                2,
                ColorSet::full(3),
                ColorSet::from_indices([0]),
                8,
                1000,
            ),
            (3, 3, ColorSet::full(3), ColorSet::full(3), 4, 1000), // depth aborts
            (3, 3, ColorSet::full(3), ColorSet::full(3), 100, 17), // run cap
            (
                3,
                2,
                ColorSet::from_indices([0, 2]),
                ColorSet::from_indices([0, 2]),
                10,
                1000,
            ),
        ];
        for (n, k, participants, correct, max_depth, max_runs) in cases {
            let mut via_factory: Visited = Vec::new();
            let count_f = explore_schedules(
                || Countdown::new(n, k),
                participants,
                correct,
                max_depth,
                max_runs,
                |_sys, o| record(&mut via_factory, o),
            );
            let mut via_clone: Visited = Vec::new();
            let count_c = explore_schedules_cloned(
                &Countdown::new(n, k),
                participants,
                correct,
                max_depth,
                max_runs,
                |_sys, o| record(&mut via_clone, o),
            );
            assert_eq!(count_f, count_c, "run counts agree (n={n}, k={k})");
            assert_eq!(via_factory, via_clone, "identical run sets (n={n}, k={k})");
        }
    }

    #[test]
    fn streamed_and_collected_run_sets_are_identical() {
        // Satellite regression: the pull-based iterator must stream
        // exactly the run sequence the visitor-based explorers collect —
        // same schedules, same outcomes, same truncation under caps —
        // without ever holding the run set in memory.
        type Visited = Vec<(Schedule, RunOutcome)>;
        let cases = [
            // (n, k, participants, correct, max_depth, max_runs)
            (2, 1, ColorSet::full(2), ColorSet::full(2), 10, 1000),
            (
                3,
                2,
                ColorSet::full(3),
                ColorSet::from_indices([0]),
                8,
                1000,
            ),
            (3, 3, ColorSet::full(3), ColorSet::full(3), 4, 1000), // depth aborts
            (3, 3, ColorSet::full(3), ColorSet::full(3), 100, 17), // run cap
            (
                3,
                2,
                ColorSet::from_indices([0, 2]),
                ColorSet::from_indices([0, 2]),
                10,
                1000,
            ),
        ];
        for (n, k, participants, correct, max_depth, max_runs) in cases {
            let mut collected: Visited = Vec::new();
            let count = explore_schedules(
                || Countdown::new(n, k),
                participants,
                correct,
                max_depth,
                max_runs,
                |_sys, o| collected.push((o.schedule.clone(), o.clone())),
            );
            let streamed: Visited = explore_iter(
                &Countdown::new(n, k),
                participants,
                correct,
                max_depth,
                max_runs,
                ExploreOrder::DepthFirst,
            )
            .map(|(_sys, o)| (o.schedule.clone(), o))
            .collect();
            assert_eq!(streamed.len(), count, "run counts agree (n={n}, k={k})");
            assert_eq!(
                streamed, collected,
                "identical run sequences (n={n}, k={k})"
            );

            // Breadth-first visits the same run *set* when nothing was
            // truncated by the cap (orders differ, so compare sorted).
            if count < max_runs {
                let mut bfs: Visited = explore_iter(
                    &Countdown::new(n, k),
                    participants,
                    correct,
                    max_depth,
                    max_runs,
                    ExploreOrder::BreadthFirst,
                )
                .map(|(_sys, o)| (o.schedule.clone(), o))
                .collect();
                let mut dfs = streamed.clone();
                bfs.sort_by(|a, b| a.0.cmp(&b.0));
                dfs.sort_by(|a, b| a.0.cmp(&b.0));
                assert_eq!(bfs, dfs, "BFS and DFS agree as sets (n={n}, k={k})");
            }
        }
    }

    #[test]
    fn breadth_first_streaming_is_exhaustive_with_analytic_count() {
        // Interleavings of n processes taking k steps each: the
        // multinomial (nk)! / (k!)^n.
        fn multinomial(n: usize, k: usize) -> usize {
            let fact = |m: usize| (1..=m).product::<usize>();
            fact(n * k) / fact(k).pow(n as u32)
        }
        for (n, k) in [(2, 1), (2, 2), (3, 1), (3, 2)] {
            let participants = ColorSet::full(n);
            let runs = explore_iter(
                &Countdown::new(n, k),
                participants,
                participants,
                n * k + 1,
                usize::MAX,
                ExploreOrder::BreadthFirst,
            )
            .count();
            assert_eq!(runs, multinomial(n, k), "n={n}, k={k}");
        }
    }

    #[test]
    fn iterator_suspends_and_resumes_between_runs() {
        let participants = ColorSet::full(3);
        let mut iter = explore_iter(
            &Countdown::new(3, 2),
            participants,
            participants,
            100,
            usize::MAX,
            ExploreOrder::DepthFirst,
        );
        let first: Vec<Schedule> = iter.by_ref().take(5).map(|(_, o)| o.schedule).collect();
        assert_eq!(iter.runs(), 5);
        let rest: Vec<Schedule> = iter.map(|(_, o)| o.schedule).collect();
        let mut replayed: Vec<Schedule> = Vec::new();
        explore_schedules(
            || Countdown::new(3, 2),
            participants,
            participants,
            100,
            usize::MAX,
            |_, o| replayed.push(o.schedule.clone()),
        );
        let resumed: Vec<Schedule> = first.into_iter().chain(rest).collect();
        assert_eq!(resumed, replayed, "a paused iterator loses no runs");
    }

    #[test]
    #[should_panic(expected = "must participate")]
    fn correct_outside_participants_rejected() {
        let mut sys = Countdown::new(2, 1);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let _ = run_adversarial(
            &mut sys,
            ColorSet::from_indices([0]),
            ColorSet::from_indices([1]),
            &mut rng,
            |_| 0,
            10,
        );
    }
}
