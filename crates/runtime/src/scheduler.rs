//! Deterministic, replayable scheduling of asynchronous process systems.
//!
//! A [`System`] bundles the shared memory and the per-process protocol
//! states; the scheduler chooses which process executes its next atomic
//! step. Runs are driven either by an explicit [`Schedule`], by a seeded
//! random generator (adversarial sampling), or by bounded exhaustive
//! exploration (small systems).

use act_topology::{ColorSet, ProcessId};

/// A system of `n` asynchronous processes sharing memory. One call to
/// [`System::step`] executes exactly one atomic shared-memory operation of
/// the chosen process.
pub trait System {
    /// Executes one atomic step of `p`. Stepping a terminated process is a
    /// no-op. Returns whether `p` is (now) terminated.
    fn step(&mut self, p: ProcessId) -> bool;

    /// Whether `p` has terminated (produced its output).
    fn has_terminated(&self, p: ProcessId) -> bool;

    /// The number of processes.
    fn num_processes(&self) -> usize;
}

/// An explicit schedule: the sequence of processes taking steps.
pub type Schedule = Vec<ProcessId>;

/// The outcome of driving a system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total steps executed.
    pub steps: usize,
    /// Processes that terminated.
    pub terminated: ColorSet,
    /// Whether every targeted (correct) process terminated.
    pub all_correct_terminated: bool,
    /// The schedule actually executed (for replay).
    pub schedule: Schedule,
}

/// Replays an explicit schedule. Steps of already-terminated processes are
/// executed as no-ops (and still recorded).
pub fn run_schedule<S: System>(sys: &mut S, schedule: &[ProcessId]) -> RunOutcome {
    for &p in schedule {
        sys.step(p);
    }
    let terminated = terminated_set(sys);
    RunOutcome {
        steps: schedule.len(),
        terminated,
        all_correct_terminated: false,
        schedule: schedule.to_vec(),
    }
}

fn terminated_set<S: System>(sys: &S) -> ColorSet {
    (0..sys.num_processes())
        .map(ProcessId::new)
        .filter(|&p| sys.has_terminated(p))
        .collect()
}

/// Drives `sys` with a seeded random adversarial schedule:
///
/// * processes in `correct` are scheduled until they terminate;
/// * processes in `participants \ correct` are *faulty*: each takes at most
///   its crash budget of steps (chosen by `crash_budget(p)`), then stops;
/// * processes outside `participants` never move.
///
/// Returns when every correct process has terminated, or when `max_steps`
/// is reached (`all_correct_terminated` is then `false` — a liveness
/// violation if the protocol was supposed to terminate).
///
/// # Panics
///
/// Panics if `correct` is not a subset of `participants`, or is empty.
pub fn run_adversarial<S, R, F>(
    sys: &mut S,
    participants: ColorSet,
    correct: ColorSet,
    rng: &mut R,
    mut crash_budget: F,
    max_steps: usize,
) -> RunOutcome
where
    S: System,
    R: rand::Rng,
    F: FnMut(ProcessId) -> usize,
{
    assert!(
        correct.is_subset_of(participants),
        "correct processes must participate"
    );
    assert!(!correct.is_empty(), "at least one process must be correct");
    let mut budgets: Vec<Option<usize>> = (0..sys.num_processes())
        .map(|i| {
            let p = ProcessId::new(i);
            if !participants.contains(p) {
                Some(0)
            } else if correct.contains(p) {
                None // unbounded
            } else {
                Some(crash_budget(p))
            }
        })
        .collect();

    let mut schedule = Vec::new();
    let mut steps = 0usize;
    loop {
        // Eligible: not terminated, with budget left.
        let eligible: Vec<ProcessId> = (0..sys.num_processes())
            .map(ProcessId::new)
            .filter(|&p| !sys.has_terminated(p) && budgets[p.index()] != Some(0))
            .collect();
        let correct_pending = correct.iter().any(|p| !sys.has_terminated(p));
        if !correct_pending {
            return RunOutcome {
                steps,
                terminated: terminated_set(sys),
                all_correct_terminated: true,
                schedule,
            };
        }
        if eligible.is_empty() || steps >= max_steps {
            return RunOutcome {
                steps,
                terminated: terminated_set(sys),
                all_correct_terminated: false,
                schedule,
            };
        }
        let p = eligible[rng.gen_range(0..eligible.len())];
        if let Some(b) = &mut budgets[p.index()] {
            *b -= 1;
        }
        sys.step(p);
        schedule.push(p);
        steps += 1;
    }
}

/// Bounded exhaustive exploration: enumerates every interleaving of the
/// participants (faulty processes may stop at any point — modeled by
/// simply not scheduling them further), invoking `visit` on each maximal
/// run, until `max_runs` runs have been visited or the space is exhausted.
///
/// A run is maximal when every correct process has terminated. The
/// exploration aborts a branch after `max_depth` steps (counted as a
/// liveness failure, reported with `all_correct_terminated = false`).
///
/// Returns the number of runs visited.
pub fn explore_schedules<S, F, V>(
    factory: F,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    mut visit: V,
) -> usize
where
    S: System,
    F: Fn() -> S,
    V: FnMut(&S, &RunOutcome),
{
    assert!(
        correct.is_subset_of(participants),
        "correct processes must participate"
    );
    let mut count = 0usize;
    let mut prefix: Schedule = Vec::new();
    explore_rec(
        &factory,
        participants,
        correct,
        max_depth,
        max_runs,
        &mut prefix,
        &mut count,
        &mut visit,
    );
    count
}

#[allow(clippy::too_many_arguments)]
fn explore_rec<S, F, V>(
    factory: &F,
    participants: ColorSet,
    correct: ColorSet,
    max_depth: usize,
    max_runs: usize,
    prefix: &mut Schedule,
    count: &mut usize,
    visit: &mut V,
) where
    S: System,
    F: Fn() -> S,
    V: FnMut(&S, &RunOutcome),
{
    if *count >= max_runs {
        return;
    }
    // Replay the prefix on a fresh system.
    let mut sys = factory();
    for &p in prefix.iter() {
        sys.step(p);
    }
    let correct_pending = correct.iter().any(|p| !sys.has_terminated(p));
    if !correct_pending || prefix.len() >= max_depth {
        *count += 1;
        let outcome = RunOutcome {
            steps: prefix.len(),
            terminated: (0..sys.num_processes())
                .map(ProcessId::new)
                .filter(|&p| sys.has_terminated(p))
                .collect(),
            all_correct_terminated: !correct_pending,
            schedule: prefix.clone(),
        };
        visit(&sys, &outcome);
        return;
    }
    for p in participants.iter() {
        if sys.has_terminated(p) {
            continue;
        }
        prefix.push(p);
        explore_rec(
            factory,
            participants,
            correct,
            max_depth,
            max_runs,
            prefix,
            count,
            visit,
        );
        prefix.pop();
        if *count >= max_runs {
            return;
        }
    }
    // Additionally: branches where every remaining non-terminated faulty
    // process crashes here are covered by the sub-branches that only
    // schedule correct processes from now on, because crashing is simply
    // "never scheduled again".
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A toy system: each process must take exactly `k` steps to finish.
    struct Countdown {
        remaining: Vec<usize>,
    }

    impl Countdown {
        fn new(n: usize, k: usize) -> Self {
            Countdown {
                remaining: vec![k; n],
            }
        }
    }

    impl System for Countdown {
        fn step(&mut self, p: ProcessId) -> bool {
            let r = &mut self.remaining[p.index()];
            if *r > 0 {
                *r -= 1;
            }
            *r == 0
        }
        fn has_terminated(&self, p: ProcessId) -> bool {
            self.remaining[p.index()] == 0
        }
        fn num_processes(&self) -> usize {
            self.remaining.len()
        }
    }

    #[test]
    fn run_schedule_replays() {
        let mut sys = Countdown::new(2, 2);
        let p0 = ProcessId::new(0);
        let outcome = run_schedule(&mut sys, &[p0, p0]);
        assert_eq!(outcome.steps, 2);
        assert!(sys.has_terminated(p0));
        assert!(!sys.has_terminated(ProcessId::new(1)));
        assert_eq!(outcome.terminated, ColorSet::from_indices([0]));
    }

    #[test]
    fn adversarial_run_terminates_correct_processes() {
        let mut sys = Countdown::new(3, 4);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let participants = ColorSet::full(3);
        let correct = ColorSet::from_indices([0, 2]);
        let outcome = run_adversarial(&mut sys, participants, correct, &mut rng, |_| 2, 10_000);
        assert!(outcome.all_correct_terminated);
        assert!(sys.has_terminated(ProcessId::new(0)));
        assert!(sys.has_terminated(ProcessId::new(2)));
        // The faulty process took at most 2 of its 4 steps.
        assert!(!sys.has_terminated(ProcessId::new(1)));
    }

    #[test]
    fn adversarial_run_detects_livelock() {
        // A process that never finishes.
        struct Never;
        impl System for Never {
            fn step(&mut self, _p: ProcessId) -> bool {
                false
            }
            fn has_terminated(&self, _p: ProcessId) -> bool {
                false
            }
            fn num_processes(&self) -> usize {
                1
            }
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let p = ColorSet::from_indices([0]);
        let outcome = run_adversarial(&mut Never, p, p, &mut rng, |_| 0, 50);
        assert!(!outcome.all_correct_terminated);
        assert_eq!(outcome.steps, 50);
    }

    #[test]
    fn exhaustive_exploration_counts_interleavings() {
        // Two processes, one step each, both correct: the maximal runs are
        // the 2 orderings.
        let participants = ColorSet::full(2);
        let count = explore_schedules(
            || Countdown::new(2, 1),
            participants,
            participants,
            10,
            1000,
            |_sys, outcome| {
                assert!(outcome.all_correct_terminated);
                assert_eq!(outcome.steps, 2);
            },
        );
        assert_eq!(count, 2);
    }

    #[test]
    fn exploration_respects_run_cap() {
        let participants = ColorSet::full(3);
        let count = explore_schedules(
            || Countdown::new(3, 3),
            participants,
            participants,
            100,
            17,
            |_, _| {},
        );
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "must participate")]
    fn correct_outside_participants_rejected() {
        let mut sys = Countdown::new(2, 1);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let _ = run_adversarial(
            &mut sys,
            ColorSet::from_indices([0]),
            ColorSet::from_indices([1]),
            &mut rng,
            |_| 0,
            10,
        );
    }
}
