//! Simulated shared memory: atomic registers and atomic-snapshot memory.
//!
//! The paper's base model is asynchronous processes over atomic-snapshot
//! memory (Section 2). The simulator represents memory states explicitly
//! and sequentially — each process step is one atomic operation, and the
//! scheduler chooses the interleaving — which makes runs deterministic and
//! replayable. Linearizability is by construction.

use std::fmt;

use act_topology::{ColorSet, ProcessId};

/// A single-writer multi-reader atomic register array: one slot per
/// process, readable by all.
///
/// # Examples
///
/// ```
/// use act_runtime::RegisterArray;
/// use act_topology::ProcessId;
///
/// let mut regs: RegisterArray<u32> = RegisterArray::new(3, 0);
/// regs.write(ProcessId::new(1), 42);
/// assert_eq!(*regs.read(ProcessId::new(1)), 42);
/// ```
#[derive(Clone, Debug)]
pub struct RegisterArray<T> {
    slots: Vec<T>,
}

impl<T: Clone> RegisterArray<T> {
    /// Creates an array of `n` registers, all holding `initial`.
    pub fn new(n: usize, initial: T) -> Self {
        RegisterArray {
            slots: vec![initial; n],
        }
    }
}

impl<T> RegisterArray<T> {
    /// Creates an array from per-process initial values.
    pub fn from_values(values: Vec<T>) -> Self {
        RegisterArray { slots: values }
    }

    /// The number of registers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes `value` into `p`'s register (only `p` may do this).
    pub fn write(&mut self, p: ProcessId, value: T) {
        self.slots[p.index()] = value;
    }

    /// Reads `q`'s register.
    pub fn read(&self, q: ProcessId) -> &T {
        &self.slots[q.index()]
    }

    /// Reads the whole array (a *scan*; note this is NOT atomic in a real
    /// system — use [`SnapshotMemory`] for atomic snapshots).
    pub fn scan(&self) -> &[T] {
        &self.slots
    }
}

/// Simulated atomic-snapshot memory (Section 2 of the paper): a vector of
/// per-process slots supporting `update` and an atomic `snapshot`.
///
/// `None` marks a slot never written — the owning process is not yet
/// *participating*.
#[derive(Clone)]
pub struct SnapshotMemory<T> {
    slots: Vec<Option<T>>,
    updates: usize,
    snapshots: usize,
}

impl<T: Clone> SnapshotMemory<T> {
    /// Creates a memory with `n` empty slots.
    pub fn new(n: usize) -> Self {
        SnapshotMemory {
            slots: vec![None; n],
            updates: 0,
            snapshots: 0,
        }
    }

    /// The number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the memory has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `update(v)` by process `p`: atomically replaces `p`'s slot.
    pub fn update(&mut self, p: ProcessId, value: T) {
        self.slots[p.index()] = Some(value);
        self.updates += 1;
    }

    /// `snapshot()`: atomically reads all slots.
    pub fn snapshot(&mut self) -> Vec<Option<T>> {
        self.snapshots += 1;
        self.slots.clone()
    }

    /// A snapshot without mutating operation counters (for assertions).
    pub fn peek(&self) -> &[Option<T>] {
        &self.slots
    }

    /// The set of processes whose slot has been written — the
    /// *participating set* when first writes are initial states.
    pub fn participants(&self) -> ColorSet {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| ProcessId::new(i))
            .collect()
    }

    /// Operation counters `(updates, snapshots)` — exposed for the
    /// step-complexity experiments.
    pub fn op_counts(&self) -> (usize, usize) {
        (self.updates, self.snapshots)
    }
}

impl<T: fmt::Debug> fmt::Debug for SnapshotMemory<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotMemory")
            .field("slots", &self.slots)
            .field("updates", &self.updates)
            .field("snapshots", &self.snapshots)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_read_back_writes() {
        let mut r: RegisterArray<i64> = RegisterArray::new(2, -1);
        assert_eq!(*r.read(ProcessId::new(0)), -1);
        r.write(ProcessId::new(0), 7);
        assert_eq!(*r.read(ProcessId::new(0)), 7);
        assert_eq!(*r.read(ProcessId::new(1)), -1);
        assert_eq!(r.scan(), &[7, -1]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn from_values_preserves_order() {
        let r = RegisterArray::from_values(vec!["a", "b"]);
        assert_eq!(*r.read(ProcessId::new(1)), "b");
    }

    #[test]
    fn snapshot_memory_tracks_participation() {
        let mut m: SnapshotMemory<u32> = SnapshotMemory::new(3);
        assert_eq!(m.participants(), ColorSet::EMPTY);
        m.update(ProcessId::new(2), 5);
        assert_eq!(m.participants(), ColorSet::from_indices([2]));
        let snap = m.snapshot();
        assert_eq!(snap, vec![None, None, Some(5)]);
        assert_eq!(m.op_counts(), (1, 1));
    }

    #[test]
    fn update_overwrites() {
        let mut m: SnapshotMemory<u32> = SnapshotMemory::new(1);
        let p = ProcessId::new(0);
        m.update(p, 1);
        m.update(p, 2);
        assert_eq!(m.peek(), &[Some(2)]);
        assert_eq!(m.op_counts(), (2, 0));
    }
}
