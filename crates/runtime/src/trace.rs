//! Run traces: serializable schedules for deterministic replay.
//!
//! Every run of the simulator is fully determined by its schedule (the
//! sequence of process steps), so a trace — participants plus schedule —
//! reproduces a run bit for bit. Traces serialize with serde, which is
//! how failing adversarial runs found by randomized experiments are kept
//! as regression artifacts: when a run fails liveness and telemetry is
//! enabled (see [`act_obs`]), the scheduler captures a [`TraceArtifact`]
//! under the artifact directory for later replay.

use std::path::PathBuf;

use act_topology::{ColorSet, ProcessId};
use serde::{Deserialize, Serialize};

use crate::scheduler::{RunOutcome, System};

/// A recorded run: the participants and the exact schedule executed,
/// together with the adversarial configuration that produced it (the
/// correct set and per-process crash budgets), so a captured liveness
/// failure replays with full context.
///
/// # Format compatibility
///
/// The serialized form adds `correct` and `crash_budgets` on top of the
/// original `{participants, steps}` schema. Both are optional:
/// deserialization accepts old JSON without them (they become `None`),
/// which keeps historical regression artifacts replayable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Trace {
    /// The participating processes.
    pub participants: ColorSet,
    /// The schedule, as process indices.
    pub steps: Vec<u32>,
    /// The processes the run was required to terminate (the correct set
    /// of an adversarial run). `None` for traces predating this field.
    pub correct: Option<ColorSet>,
    /// Per-process initial crash budgets (`None` entries are unbounded /
    /// correct processes). `None` for traces predating this field or runs
    /// without budgets.
    pub crash_budgets: Option<Vec<Option<u32>>>,
}

// Hand-written (rather than derived) so that JSON predating the
// `correct` / `crash_budgets` fields still deserializes: missing fields
// become `None` instead of an error.
impl Deserialize for Trace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let participants = ColorSet::from_value(v.field("participants")?)?;
        let steps = Vec::<u32>::from_value(v.field("steps")?)?;
        let correct = match v.field("correct") {
            Ok(val) => Option::<ColorSet>::from_value(val)?,
            Err(_) => None,
        };
        let crash_budgets = match v.field("crash_budgets") {
            Ok(val) => Option::<Vec<Option<u32>>>::from_value(val)?,
            Err(_) => None,
        };
        Ok(Trace {
            participants,
            steps,
            correct,
            crash_budgets,
        })
    }
}

impl Trace {
    /// Captures a trace from a completed run, including the run's correct
    /// set and crash budgets when the outcome carries them.
    pub fn from_outcome(participants: ColorSet, outcome: &RunOutcome) -> Trace {
        Trace {
            participants,
            steps: outcome.schedule.iter().map(|p| p.index() as u32).collect(),
            correct: (!outcome.correct.is_empty()).then_some(outcome.correct),
            crash_budgets: (!outcome.crash_budgets.is_empty())
                .then(|| outcome.crash_budgets.clone()),
        }
    }

    /// The schedule as process ids.
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.steps
            .iter()
            .map(|&i| ProcessId::new(i as usize))
            .collect()
    }

    /// Replays the trace on a fresh system, returning the set of
    /// processes that terminated.
    pub fn replay<S: System>(&self, sys: &mut S) -> ColorSet {
        for p in self.schedule() {
            sys.step(p);
        }
        (0..sys.num_processes())
            .map(ProcessId::new)
            .filter(|&p| sys.has_terminated(p))
            .collect()
    }

    /// Whether the recorded correct set terminated, judged against the
    /// `terminated` set a replay returned. `None` when the trace predates
    /// the `correct` field.
    pub fn correct_terminated(&self, terminated: ColorSet) -> Option<bool> {
        self.correct.map(|c| c.is_subset_of(terminated))
    }

    /// The number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// A replayable capture of a failing run, written as pretty-printed JSON
/// under the telemetry artifact directory (see [`act_obs::artifacts_dir`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceArtifact {
    /// Artifact schema version (currently 1).
    pub schema_version: u32,
    /// Why the run was captured (e.g. `"liveness-failure"`).
    pub reason: String,
    /// The step bound the run was driven under.
    pub max_steps: u64,
    /// The captured trace.
    pub trace: Trace,
}

impl TraceArtifact {
    /// Reads an artifact back from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<TraceArtifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))
    }
}

/// Captures a liveness-failing adversarial run as a JSON artifact when
/// telemetry artifact capture is enabled (see [`act_obs::artifacts_dir`]).
/// Returns the written path, or `None` when capture is disabled or the
/// write failed.
pub(crate) fn capture_liveness_artifact(
    participants: ColorSet,
    outcome: &RunOutcome,
    max_steps: usize,
) -> Option<PathBuf> {
    let dir = act_obs::artifacts_dir()?;
    std::fs::create_dir_all(&dir).ok()?;
    let artifact = TraceArtifact {
        schema_version: 1,
        reason: "liveness-failure".to_string(),
        max_steps: max_steps as u64,
        trace: Trace::from_outcome(participants, outcome),
    };
    let path = dir.join(format!(
        "liveness-{}-{}.json",
        std::process::id(),
        act_obs::next_artifact_id()
    ));
    let json = serde_json::to_string_pretty(&artifact).ok()?;
    std::fs::write(&path, json).ok()?;
    act_obs::event("artifact.captured")
        .str("path", &path.display().to_string())
        .str("reason", "liveness-failure")
        .u64("trace_steps", artifact.trace.len() as u64)
        .emit();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::immediate::IsSystem;
    use crate::scheduler::run_adversarial;
    use rand::SeedableRng;

    fn fresh() -> IsSystem<u8> {
        IsSystem::new(vec![Some(1), Some(2), Some(3)])
    }

    #[test]
    fn replay_reproduces_views_exactly() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for _ in 0..50 {
            let mut sys = fresh();
            let participants = ColorSet::full(3);
            let outcome = run_adversarial(
                &mut sys,
                participants,
                participants,
                &mut rng,
                |_| 0,
                50_000,
            );
            let trace = Trace::from_outcome(participants, &outcome);

            let mut replayed = fresh();
            let terminated = trace.replay(&mut replayed);
            assert_eq!(terminated, outcome.terminated);
            assert_eq!(replayed.views(), sys.views(), "replay is bit-for-bit");
            assert_eq!(trace.correct_terminated(terminated), Some(true));
        }
    }

    #[test]
    fn traces_serialize_round_trip() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut sys = fresh();
        let participants = ColorSet::full(3);
        let outcome = run_adversarial(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            50_000,
        );
        let trace = Trace::from_outcome(participants, &outcome);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.len(), outcome.steps);
        assert!(!back.is_empty());
        // The adversarial context rides along.
        assert_eq!(back.correct, Some(participants));
        assert_eq!(back.crash_budgets.as_ref().map(Vec::len), Some(3));
    }

    #[test]
    fn old_trace_json_without_context_still_deserializes() {
        // Backward compatibility: artifacts written before the `correct` /
        // `crash_budgets` fields existed carry only participants + steps.
        let old = r#"{"participants":7,"steps":[0,1,2,0,1,2]}"#;
        let trace: Trace = serde_json::from_str(old).expect("old schema parses");
        assert_eq!(trace.participants, ColorSet::full(3));
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.correct, None);
        assert_eq!(trace.crash_budgets, None);
        assert_eq!(trace.correct_terminated(ColorSet::full(3)), None);
        // And it still replays.
        let mut sys = fresh();
        let terminated = trace.replay(&mut sys);
        assert!(terminated.is_subset_of(ColorSet::full(3)));
    }

    #[test]
    fn adversarial_context_is_captured_from_outcomes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(44);
        let mut sys = fresh();
        let participants = ColorSet::full(3);
        let correct = ColorSet::from_indices([0, 2]);
        let outcome = run_adversarial(&mut sys, participants, correct, &mut rng, |_| 2, 50_000);
        let trace = Trace::from_outcome(participants, &outcome);
        assert_eq!(trace.correct, Some(correct));
        let budgets = trace.crash_budgets.clone().expect("budgets captured");
        assert_eq!(budgets, vec![None, Some(2), None]);
        // Round-trips through JSON with the context intact.
        let back: Trace = serde_json::from_str(&serde_json::to_string(&trace).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn truncated_trace_leaves_processes_running() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(43);
        let mut sys = fresh();
        let participants = ColorSet::full(3);
        let outcome = run_adversarial(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            50_000,
        );
        let mut trace = Trace::from_outcome(participants, &outcome);
        trace.steps.truncate(1);
        let mut replayed = fresh();
        let terminated = trace.replay(&mut replayed);
        assert!(terminated.len() < 3, "one step cannot finish everyone");
    }
}
