//! Run traces: serializable schedules for deterministic replay.
//!
//! Every run of the simulator is fully determined by its schedule (the
//! sequence of process steps), so a trace — participants plus schedule —
//! reproduces a run bit for bit. Traces serialize with serde, which is
//! how failing adversarial runs found by randomized experiments are kept
//! as regression artifacts: when a run fails liveness and telemetry is
//! enabled (see [`act_obs`]), the scheduler captures a [`TraceArtifact`]
//! under the artifact directory for later replay.

use std::path::PathBuf;

use act_topology::{ColorSet, ProcessId};
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::scheduler::{RunOutcome, ScheduleError, System};

/// A recorded run: the participants and the exact schedule executed,
/// together with the adversarial configuration that produced it (the
/// correct set and per-process crash budgets), so a captured liveness
/// failure replays with full context.
///
/// # Format compatibility
///
/// The serialized form adds `correct` and `crash_budgets` (PR 2) and
/// `fault_plan` (the chaos layer) on top of the original
/// `{participants, steps}` schema. All three are optional:
/// deserialization accepts old JSON without them (they become `None`),
/// which keeps historical regression artifacts replayable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Trace {
    /// The participating processes.
    pub participants: ColorSet,
    /// The schedule, as process indices.
    pub steps: Vec<u32>,
    /// The processes the run was required to terminate (the correct set
    /// of an adversarial run). `None` for traces predating this field.
    pub correct: Option<ColorSet>,
    /// Per-process initial crash budgets (`None` entries are unbounded /
    /// correct processes). `None` for traces predating this field or runs
    /// without budgets.
    pub crash_budgets: Option<Vec<Option<u32>>>,
    /// The fault plan that was injected into the run, when it was driven
    /// through the chaos layer (see [`crate::fault`]). Recorded for
    /// provenance: replay needs only the schedule (the plan already
    /// shaped it), so replays never re-inject.
    pub fault_plan: Option<FaultPlan>,
}

// Hand-written (rather than derived) so that JSON predating the
// `correct` / `crash_budgets` / `fault_plan` fields still deserializes:
// missing fields become `None` instead of an error.
impl Deserialize for Trace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let participants = ColorSet::from_value(v.field("participants")?)?;
        let steps = Vec::<u32>::from_value(v.field("steps")?)?;
        let correct = match v.field("correct") {
            Ok(val) => Option::<ColorSet>::from_value(val)?,
            Err(_) => None,
        };
        let crash_budgets = match v.field("crash_budgets") {
            Ok(val) => Option::<Vec<Option<u32>>>::from_value(val)?,
            Err(_) => None,
        };
        let fault_plan = match v.field("fault_plan") {
            Ok(val) => Option::<FaultPlan>::from_value(val)?,
            Err(_) => None,
        };
        Ok(Trace {
            participants,
            steps,
            correct,
            crash_budgets,
            fault_plan,
        })
    }
}

impl Trace {
    /// Captures a trace from a completed run, including the run's correct
    /// set and crash budgets when the outcome carries them.
    pub fn from_outcome(participants: ColorSet, outcome: &RunOutcome) -> Trace {
        Trace {
            participants,
            steps: outcome.schedule.iter().map(|p| p.index() as u32).collect(),
            correct: (!outcome.correct.is_empty()).then_some(outcome.correct),
            crash_budgets: (!outcome.crash_budgets.is_empty())
                .then(|| outcome.crash_budgets.clone()),
            fault_plan: None,
        }
    }

    /// Attaches the fault plan that shaped this run (provenance only;
    /// replay never re-injects).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Trace {
        self.fault_plan = Some(plan);
        self
    }

    /// The schedule as process ids.
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.steps
            .iter()
            .map(|&i| ProcessId::new(i as usize))
            .collect()
    }

    /// Replays the trace on a fresh system, returning the set of
    /// processes that terminated. The schedule is bounds-checked against
    /// the system first: a corrupted trace yields [`ScheduleError`]
    /// instead of an out-of-range index panic.
    pub fn replay<S: System>(&self, sys: &mut S) -> Result<ColorSet, ScheduleError> {
        self.replay_outcome(sys).map(|o| o.terminated)
    }

    /// Replays the trace and reconstructs the full [`RunOutcome`] of the
    /// original run: the schedule is re-executed, and when the trace
    /// carries adversarial context (`correct`, `crash_budgets`) the
    /// outcome is judged against the *recorded* correct set instead of
    /// the scheduled one — so a replayed artifact reproduces the
    /// captured outcome field for field.
    pub fn replay_outcome<S: System>(&self, sys: &mut S) -> Result<RunOutcome, ScheduleError> {
        let mut outcome = crate::scheduler::run_schedule(sys, &self.schedule())?;
        if let Some(correct) = self.correct {
            outcome.all_correct_terminated = correct.is_subset_of(outcome.terminated);
            outcome.correct = correct;
        }
        if let Some(budgets) = &self.crash_budgets {
            outcome.crash_budgets = budgets.clone();
        }
        Ok(outcome)
    }

    /// Whether the recorded correct set terminated, judged against the
    /// `terminated` set a replay returned. `None` when the trace predates
    /// the `correct` field.
    pub fn correct_terminated(&self, terminated: ColorSet) -> Option<bool> {
        self.correct.map(|c| c.is_subset_of(terminated))
    }

    /// The number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// A replayable capture of a failing run, written as pretty-printed JSON
/// under the telemetry artifact directory (see [`act_obs::artifacts_dir`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceArtifact {
    /// Artifact schema version (currently 1).
    pub schema_version: u32,
    /// Why the run was captured (e.g. `"liveness-failure"`).
    pub reason: String,
    /// The step bound the run was driven under.
    pub max_steps: u64,
    /// The captured trace.
    pub trace: Trace,
}

impl TraceArtifact {
    /// Reads an artifact back from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<TraceArtifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))
    }
}

/// Captures a liveness-failing adversarial run as a JSON artifact when
/// telemetry artifact capture is enabled (see [`act_obs::artifacts_dir`]).
/// Returns the written path, or `None` when capture is disabled or the
/// write failed.
pub(crate) fn capture_liveness_artifact(
    participants: ColorSet,
    outcome: &RunOutcome,
    max_steps: usize,
) -> Option<PathBuf> {
    capture_artifact(participants, outcome, max_steps, "liveness-failure", None)
}

/// Captures a failing fault-injected run, recording the plan that shaped
/// it alongside the schedule (see [`crate::fault`]).
pub(crate) fn capture_fault_artifact(
    participants: ColorSet,
    outcome: &RunOutcome,
    max_steps: usize,
    plan: &FaultPlan,
) -> Option<PathBuf> {
    capture_artifact(
        participants,
        outcome,
        max_steps,
        "fault-liveness-failure",
        Some(plan.clone()),
    )
}

/// Writes a [`TraceArtifact`] for a failing run under the artifact
/// directory. The filename is prefixed by the first word of `reason`,
/// so liveness and fault captures sort apart.
fn capture_artifact(
    participants: ColorSet,
    outcome: &RunOutcome,
    max_steps: usize,
    reason: &str,
    fault_plan: Option<FaultPlan>,
) -> Option<PathBuf> {
    let dir = act_obs::artifacts_dir()?;
    std::fs::create_dir_all(&dir).ok()?;
    let mut trace = Trace::from_outcome(participants, outcome);
    if let Some(plan) = fault_plan {
        trace = trace.with_fault_plan(plan);
    }
    let artifact = TraceArtifact {
        schema_version: 1,
        reason: reason.to_string(),
        max_steps: max_steps as u64,
        trace,
    };
    let prefix = reason.split('-').next().unwrap_or("run");
    let path = dir.join(format!(
        "{prefix}-{}-{}.json",
        std::process::id(),
        act_obs::next_artifact_id()
    ));
    let json = serde_json::to_string_pretty(&artifact).ok()?;
    std::fs::write(&path, json).ok()?;
    act_obs::event("artifact.captured")
        .str("path", &path.display().to_string())
        .str("reason", reason)
        .u64("trace_steps", artifact.trace.len() as u64)
        .emit();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::immediate::IsSystem;
    use crate::scheduler::run_adversarial;
    use rand::SeedableRng;

    fn fresh() -> IsSystem<u8> {
        IsSystem::new(vec![Some(1), Some(2), Some(3)])
    }

    #[test]
    fn replay_reproduces_views_exactly() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for _ in 0..50 {
            let mut sys = fresh();
            let participants = ColorSet::full(3);
            let outcome = run_adversarial(
                &mut sys,
                participants,
                participants,
                &mut rng,
                |_| 0,
                50_000,
            );
            let trace = Trace::from_outcome(participants, &outcome);

            let mut replayed = fresh();
            let terminated = trace.replay(&mut replayed).expect("recorded schedule");
            assert_eq!(terminated, outcome.terminated);
            assert_eq!(replayed.views(), sys.views(), "replay is bit-for-bit");
            assert_eq!(trace.correct_terminated(terminated), Some(true));

            // The full outcome is reconstructed field for field.
            let mut replayed = fresh();
            let replayed_outcome = trace
                .replay_outcome(&mut replayed)
                .expect("recorded schedule");
            assert_eq!(replayed_outcome, outcome);
        }
    }

    #[test]
    fn traces_serialize_round_trip() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut sys = fresh();
        let participants = ColorSet::full(3);
        let outcome = run_adversarial(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            50_000,
        );
        let trace = Trace::from_outcome(participants, &outcome);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.len(), outcome.steps);
        assert!(!back.is_empty());
        // The adversarial context rides along.
        assert_eq!(back.correct, Some(participants));
        assert_eq!(back.crash_budgets.as_ref().map(Vec::len), Some(3));
    }

    #[test]
    fn old_trace_json_without_context_still_deserializes() {
        // Backward compatibility: artifacts written before the `correct` /
        // `crash_budgets` fields existed carry only participants + steps.
        let old = r#"{"participants":7,"steps":[0,1,2,0,1,2]}"#;
        let trace: Trace = serde_json::from_str(old).expect("old schema parses");
        assert_eq!(trace.participants, ColorSet::full(3));
        assert_eq!(trace.len(), 6);
        assert_eq!(trace.correct, None);
        assert_eq!(trace.crash_budgets, None);
        assert_eq!(trace.correct_terminated(ColorSet::full(3)), None);
        assert_eq!(trace.fault_plan, None);
        // And it still replays.
        let mut sys = fresh();
        let terminated = trace.replay(&mut sys).expect("old schedule still replays");
        assert!(terminated.is_subset_of(ColorSet::full(3)));
    }

    #[test]
    fn adversarial_context_is_captured_from_outcomes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(44);
        let mut sys = fresh();
        let participants = ColorSet::full(3);
        let correct = ColorSet::from_indices([0, 2]);
        let outcome = run_adversarial(&mut sys, participants, correct, &mut rng, |_| 2, 50_000);
        let trace = Trace::from_outcome(participants, &outcome);
        assert_eq!(trace.correct, Some(correct));
        let budgets = trace.crash_budgets.clone().expect("budgets captured");
        assert_eq!(budgets, vec![None, Some(2), None]);
        // Round-trips through JSON with the context intact.
        let back: Trace = serde_json::from_str(&serde_json::to_string(&trace).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn truncated_trace_leaves_processes_running() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(43);
        let mut sys = fresh();
        let participants = ColorSet::full(3);
        let outcome = run_adversarial(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            50_000,
        );
        let mut trace = Trace::from_outcome(participants, &outcome);
        trace.steps.truncate(1);
        let mut replayed = fresh();
        let terminated = trace
            .replay(&mut replayed)
            .expect("truncation stays in range");
        assert!(terminated.len() < 3, "one step cannot finish everyone");
    }

    #[test]
    fn corrupted_trace_replays_to_a_typed_error() {
        let trace = Trace {
            participants: ColorSet::full(3),
            steps: vec![0, 9, 1],
            correct: None,
            crash_budgets: None,
            fault_plan: None,
        };
        let mut sys = fresh();
        let err = trace.replay(&mut sys).expect_err("process 9 of 3");
        assert_eq!(err.step, 1);
        assert_eq!(err.process.index(), 9);
        assert_eq!(err.num_processes, 3);
    }
}
