//! Run traces: serializable schedules for deterministic replay.
//!
//! Every run of the simulator is fully determined by its schedule (the
//! sequence of process steps), so a trace — participants plus schedule —
//! reproduces a run bit for bit. Traces serialize with serde, which is
//! how failing adversarial runs found by randomized experiments are kept
//! as regression artifacts.

use act_topology::{ColorSet, ProcessId};
use serde::{Deserialize, Serialize};

use crate::scheduler::{RunOutcome, System};

/// A recorded run: the participants and the exact schedule executed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// The participating processes.
    pub participants: ColorSet,
    /// The schedule, as process indices.
    pub steps: Vec<u32>,
}

impl Trace {
    /// Captures a trace from a completed run.
    pub fn from_outcome(participants: ColorSet, outcome: &RunOutcome) -> Trace {
        Trace {
            participants,
            steps: outcome.schedule.iter().map(|p| p.index() as u32).collect(),
        }
    }

    /// The schedule as process ids.
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.steps
            .iter()
            .map(|&i| ProcessId::new(i as usize))
            .collect()
    }

    /// Replays the trace on a fresh system, returning the set of
    /// processes that terminated.
    pub fn replay<S: System>(&self, sys: &mut S) -> ColorSet {
        for p in self.schedule() {
            sys.step(p);
        }
        (0..sys.num_processes())
            .map(ProcessId::new)
            .filter(|&p| sys.has_terminated(p))
            .collect()
    }

    /// The number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::immediate::IsSystem;
    use crate::scheduler::run_adversarial;
    use rand::SeedableRng;

    fn fresh() -> IsSystem<u8> {
        IsSystem::new(vec![Some(1), Some(2), Some(3)])
    }

    #[test]
    fn replay_reproduces_views_exactly() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for _ in 0..50 {
            let mut sys = fresh();
            let participants = ColorSet::full(3);
            let outcome = run_adversarial(
                &mut sys,
                participants,
                participants,
                &mut rng,
                |_| 0,
                50_000,
            );
            let trace = Trace::from_outcome(participants, &outcome);

            let mut replayed = fresh();
            let terminated = trace.replay(&mut replayed);
            assert_eq!(terminated, outcome.terminated);
            assert_eq!(replayed.views(), sys.views(), "replay is bit-for-bit");
        }
    }

    #[test]
    fn traces_serialize_round_trip() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut sys = fresh();
        let participants = ColorSet::full(3);
        let outcome = run_adversarial(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            50_000,
        );
        let trace = Trace::from_outcome(participants, &outcome);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.len(), outcome.steps);
        assert!(!back.is_empty());
    }

    #[test]
    fn truncated_trace_leaves_processes_running() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(43);
        let mut sys = fresh();
        let participants = ColorSet::full(3);
        let outcome = run_adversarial(
            &mut sys,
            participants,
            participants,
            &mut rng,
            |_| 0,
            50_000,
        );
        let mut trace = Trace::from_outcome(participants, &outcome);
        trace.steps.truncate(1);
        let mut replayed = fresh();
        let terminated = trace.replay(&mut replayed);
        assert!(terminated.len() < 3, "one step cannot finish everyone");
    }
}
