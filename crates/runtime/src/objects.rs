//! Shared α-adaptive set-consensus objects (Definition 4 of the paper).
//!
//! The *α-set-consensus model* equips processes with linearizable objects
//! whose `propose` operation guarantees:
//!
//! * **termination** — every invocation returns;
//! * **validity** — the returned value was previously proposed;
//! * **α-agreement** — at any point, the number of distinct returned
//!   values does not exceed `α(P)` for the current participating set `P`.
//!
//! The implementation is an *adversarially generous* linearizable object:
//! it returns the proposer's own value whenever doing so keeps the
//! distinct-count within `α(P)`, and otherwise falls back to an
//! already-returned (or the oldest) value — so tests exercising the bound
//! see the worst legal behaviour.

use act_topology::{ColorSet, ProcessId};

/// The agreement bound: a function from participating sets to the maximal
/// number of distinct outputs (an `AgreementFunction` table, abstracted to
/// avoid a dependency cycle).
pub trait AgreementBound {
    /// `α(P)` for the participating set `P`.
    fn bound(&self, participants: ColorSet) -> usize;
}

impl<F: Fn(ColorSet) -> usize> AgreementBound for F {
    fn bound(&self, participants: ColorSet) -> usize {
        self(participants)
    }
}

/// A linearizable α-adaptive set-consensus object. Each `propose` is one
/// atomic step in the simulated world.
#[derive(Clone, Debug)]
pub struct AdaptiveConsensusObject<B> {
    alpha: B,
    participants: ColorSet,
    proposals: Vec<(ProcessId, u64)>,
    returned: Vec<u64>,
}

impl<B: AgreementBound> AdaptiveConsensusObject<B> {
    /// Creates the object with the given agreement bound.
    pub fn new(alpha: B) -> Self {
        AdaptiveConsensusObject {
            alpha,
            participants: ColorSet::EMPTY,
            proposals: Vec::new(),
            returned: Vec::new(),
        }
    }

    /// The current participating set (processes that have proposed).
    pub fn participants(&self) -> ColorSet {
        self.participants
    }

    /// The distinct values returned so far.
    pub fn returned_values(&self) -> Vec<u64> {
        let mut v = self.returned.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Atomically proposes `value` on behalf of `p`. Returns the decided
    /// value, or `None` while the current participation has agreement
    /// power 0 — Definition 3 requires `α(P) ≥ 1` before the model makes
    /// progress, so callers retry after participation grows (the proposal
    /// is registered either way).
    pub fn propose(&mut self, p: ProcessId, value: u64) -> Option<u64> {
        self.participants = self.participants.with(p);
        if !self.proposals.iter().any(|&(q, _)| q == p) {
            self.proposals.push((p, value));
        }
        let budget = self.alpha.bound(self.participants);
        if budget == 0 {
            return None;
        }
        let mut distinct = self.returned_values();
        let decided = if distinct.contains(&value) || distinct.len() < budget {
            value
        } else {
            // Must reuse: pick deterministically among already returned.
            distinct.sort_unstable();
            distinct[0]
        };
        self.returned.push(decided);
        debug_assert!(self.returned_values().len() <= budget);
        Some(decided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k_bound(k: usize) -> impl AgreementBound {
        move |p: ColorSet| p.len().min(k)
    }

    #[test]
    fn validity_and_termination() {
        let mut obj = AdaptiveConsensusObject::new(k_bound(2));
        let d = obj.propose(ProcessId::new(0), 42);
        assert_eq!(d, Some(42), "first proposer gets its own value");
        assert_eq!(obj.participants(), ColorSet::from_indices([0]));
    }

    #[test]
    fn agreement_bound_is_enforced() {
        let mut obj = AdaptiveConsensusObject::new(k_bound(2));
        let d0 = obj.propose(ProcessId::new(0), 10).unwrap();
        let d1 = obj.propose(ProcessId::new(1), 11).unwrap();
        let d2 = obj.propose(ProcessId::new(2), 12).unwrap();
        assert_eq!(d0, 10);
        assert_eq!(d1, 11, "two distinct values allowed at α = 2");
        assert!(d2 == 10 || d2 == 11, "third must reuse");
        assert!(obj.returned_values().len() <= 2);
    }

    #[test]
    fn adaptivity_grows_with_participation() {
        // α(P) = |P|: everyone keeps its own value.
        let mut obj = AdaptiveConsensusObject::new(|p: ColorSet| p.len());
        for i in 0..4 {
            let d = obj.propose(ProcessId::new(i), i as u64 * 7);
            assert_eq!(d, Some(i as u64 * 7));
        }
        assert_eq!(obj.returned_values().len(), 4);
    }

    #[test]
    fn consensus_bound_forces_single_value() {
        let mut obj = AdaptiveConsensusObject::new(k_bound(1));
        let d0 = obj.propose(ProcessId::new(2), 5).unwrap();
        for i in 0..2 {
            assert_eq!(obj.propose(ProcessId::new(i), 100 + i as u64), Some(d0));
        }
    }

    #[test]
    fn repeated_proposals_stay_valid() {
        let mut obj = AdaptiveConsensusObject::new(k_bound(2));
        let mut all_proposed = Vec::new();
        for round in 0..5u64 {
            for i in 0..3 {
                let v = round * 10 + i as u64;
                all_proposed.push(v);
                let d = obj.propose(ProcessId::new(i), v).unwrap();
                assert!(all_proposed.contains(&d), "validity");
            }
            assert!(
                obj.returned_values().len() <= 2,
                "α-agreement at every point"
            );
        }
    }

    #[test]
    fn powerless_participation_defers() {
        // A 1-resilient-style bound: no progress while only one process
        // participates; decisions flow once a second one arrives.
        let mut obj = AdaptiveConsensusObject::new(|p: ColorSet| if p.len() >= 2 { 1 } else { 0 });
        assert_eq!(obj.propose(ProcessId::new(0), 1), None);
        assert_eq!(obj.propose(ProcessId::new(1), 2), Some(2));
        assert_eq!(obj.propose(ProcessId::new(0), 1), Some(2));
    }
}
