//! A thread-backed atomic-snapshot memory.
//!
//! The deterministic simulator ([`crate::SnapshotMemory`]) is the tool of
//! choice for the paper's experiments (replayable adversarial schedules);
//! this module provides the same interface behind real threads for
//! examples and stress tests that want genuine concurrency. A global lock
//! makes every operation trivially linearizable — the point here is the
//! memory *semantics*, not lock-free performance.

use std::sync::Arc;

use act_topology::{ColorSet, ProcessId};
use parking_lot::Mutex;

/// A shareable, linearizable atomic-snapshot memory.
///
/// Cloning yields another handle to the same memory.
///
/// # Examples
///
/// ```
/// use act_runtime::SharedSnapshotMemory;
/// use act_topology::ProcessId;
///
/// let mem: SharedSnapshotMemory<u32> = SharedSnapshotMemory::new(2);
/// let m2 = mem.clone();
/// std::thread::spawn(move || m2.update(ProcessId::new(1), 9)).join().unwrap();
/// assert_eq!(mem.snapshot()[1], Some(9));
/// ```
#[derive(Clone, Debug)]
pub struct SharedSnapshotMemory<T> {
    inner: Arc<Mutex<Vec<Option<T>>>>,
}

impl<T: Clone> SharedSnapshotMemory<T> {
    /// Creates a memory with `n` empty slots.
    pub fn new(n: usize) -> Self {
        SharedSnapshotMemory {
            inner: Arc::new(Mutex::new(vec![None; n])),
        }
    }

    /// Atomically replaces `p`'s slot.
    pub fn update(&self, p: ProcessId, value: T) {
        self.inner.lock()[p.index()] = Some(value);
    }

    /// Atomically reads all slots.
    pub fn snapshot(&self) -> Vec<Option<T>> {
        self.inner.lock().clone()
    }

    /// The set of processes that have written.
    pub fn participants(&self) -> ColorSet {
        self.inner
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| ProcessId::new(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_updates_are_all_visible() {
        let n = 8;
        let mem: SharedSnapshotMemory<usize> = SharedSnapshotMemory::new(n);
        crossbeam::scope(|s| {
            for i in 0..n {
                let mem = mem.clone();
                s.spawn(move |_| {
                    for round in 0..100 {
                        mem.update(ProcessId::new(i), round * n + i);
                        let snap = mem.snapshot();
                        // Own slot is always visible (single writer).
                        assert_eq!(snap[i], Some(round * n + i));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(mem.participants(), ColorSet::full(n));
        let snap = mem.snapshot();
        for (i, slot) in snap.iter().enumerate() {
            assert_eq!(*slot, Some(99 * n + i));
        }
    }

    #[test]
    fn snapshots_are_consistent_cuts() {
        // Two processes alternate writes of matched pairs; any snapshot
        // must never observe slot1 ahead of slot0 (process 1 writes only
        // after reading process 0's latest).
        let mem: SharedSnapshotMemory<usize> = SharedSnapshotMemory::new(2);
        mem.update(ProcessId::new(0), 0);
        crossbeam::scope(|s| {
            let writer = mem.clone();
            s.spawn(move |_| {
                for v in 1..500 {
                    writer.update(ProcessId::new(0), v);
                }
            });
            let chaser = mem.clone();
            s.spawn(move |_| {
                for _ in 0..500 {
                    let seen = chaser.snapshot()[0].unwrap();
                    chaser.update(ProcessId::new(1), seen);
                    let after = chaser.snapshot();
                    assert!(after[0].unwrap() >= after[1].unwrap());
                }
            });
        })
        .unwrap();
    }
}
