//! The fully *executed* `R_A^*` stack: iterating Algorithm 1 inside the
//! α-model produces genuine runs of the affine model, on which the `µ_Q`
//! machinery (and hence the whole Section-6 simulation) operates.
//!
//! This closes the loop between the two directions of the equivalence:
//! Section 5 solves `R_A` *in* the α-model (Algorithm 1, real schedules);
//! Section 6 simulates the α-model *in* `R_A^*`. Here the affine-model
//! iterations are not sampled from recipes but executed step by step —
//! two Borowsky–Gafni immediate snapshots plus the waiting phase per
//! iteration, under adversarial interleavings.

use std::collections::HashMap;

use act_adversary::AgreementFunction;
use act_affine::AffineTask;
use act_runtime::{run_adversarial, AdaptiveConsensusObject};
use act_topology::{ColorSet, ProcessId};
use rand::Rng;

use crate::algorithm1::{outputs_to_simplex, AlgorithmOneSystem};
use crate::leader::LeaderMap;
use crate::simulation::AffineIteration;

/// Executes `iterations` rounds of Algorithm 1 among `participants`
/// (failure-free, as in the IIS/affine model) under random schedules,
/// returning the realized affine-model iterations.
///
/// Every returned facet is asserted to lie in the given affine task — the
/// executable form of Theorem 7 applied round after round.
///
/// # Panics
///
/// Panics if a round fails to terminate or leaves the affine task
/// (impossible by Theorem 7 — asserted, not assumed).
pub fn execute_affine_iterations<R: Rng>(
    task: &AffineTask,
    alpha: &AgreementFunction,
    participants: ColorSet,
    iterations: usize,
    rng: &mut R,
) -> Vec<AffineIteration> {
    let complex = task.complex();
    let mut out = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let mut sys = AlgorithmOneSystem::new(alpha, participants);
        let outcome = run_adversarial(&mut sys, participants, participants, rng, |_| 0, 400_000);
        assert!(
            outcome.all_correct_terminated,
            "Algorithm 1 is live (Lemma 5)"
        );
        let outputs = sys.outputs();
        let facet = outputs_to_simplex(complex, &outputs)
            .expect("Algorithm 1 outputs identify Chr² vertices");
        assert!(
            complex.contains_simplex(&facet),
            "Algorithm 1 outputs stay in R_A (Lemma 6)"
        );
        let vertices: HashMap<ProcessId, act_topology::VertexId> = facet
            .vertices()
            .iter()
            .map(|&v| (complex.color(v), v))
            .collect();
        out.push(AffineIteration { facet, vertices });
    }
    out
}

/// α-adaptive set consensus over *executed* affine iterations: every
/// process adopts the proposal of its `µ_Q` leader in the first executed
/// round and decides. Returns `(process, decided value)` pairs.
///
/// The distinct-decision count is bounded by `α(carrier)` (Property 10) —
/// the caller should assert it, and the tests do.
pub fn executed_set_consensus(
    task: &AffineTask,
    alpha: &AgreementFunction,
    iteration: &AffineIteration,
    q: ColorSet,
    proposals: &HashMap<ProcessId, u64>,
) -> Vec<(ProcessId, u64)> {
    let lm = LeaderMap::new(task.complex(), alpha);
    q.iter()
        .filter(|p| iteration.vertices.contains_key(p))
        .map(|p| {
            let leader = lm.mu_q(iteration.vertices[&p], q);
            (p, proposals[&leader])
        })
        .collect()
}

/// End-to-end `α(P)`-set consensus **in the α-model itself**: run
/// Algorithm 1 once under an adversarial schedule (with crashes up to the
/// model's bound), then have every decided process adopt the proposal of
/// its `µ_Q` leader. Property 10 bounds the distinct decisions by
/// `α(carrier)`; validity holds because leaders are observed processes.
///
/// This is the paper's headline capability made executable: the α-model
/// solves its own level of set consensus in a single `R_A` computation.
///
/// Returns the decisions of the processes that completed Algorithm 1
/// (all correct ones — asserted).
///
/// # Panics
///
/// Panics if the fault pattern is inadmissible or liveness fails (a bug).
pub fn alpha_model_set_consensus<R: Rng>(
    task: &AffineTask,
    alpha: &AgreementFunction,
    participants: ColorSet,
    correct: ColorSet,
    proposals: &HashMap<ProcessId, u64>,
    rng: &mut R,
) -> Vec<(ProcessId, u64)> {
    let power = alpha.alpha(participants);
    assert!(
        power >= 1 && participants.minus(correct).len() < power,
        "fault pattern must be admissible in the α-model"
    );
    let mut sys = AlgorithmOneSystem::new(alpha, participants);
    let outcome = run_adversarial(
        &mut sys,
        participants,
        correct,
        rng,
        |_| 7, // crashed processes stop after a few steps
        400_000,
    );
    assert!(outcome.all_correct_terminated, "Lemma 5: liveness");
    let outputs = sys.outputs();
    let complex = task.complex();
    let simplex = outputs_to_simplex(complex, &outputs).expect("outputs identify Chr² vertices");
    assert!(complex.contains_simplex(&simplex), "Lemma 6: safety");
    let lm = LeaderMap::new(complex, alpha);
    simplex
        .vertices()
        .iter()
        .map(|&v| {
            let p = complex.color(v);
            let leader = lm.mu_q(v, participants);
            (p, proposals[&leader])
        })
        .collect()
}

/// The α-set-consensus model (Definition 4), executably: processes solve a
/// task by one access to a shared α-adaptive set-consensus object. Used to
/// demonstrate the Theorem 1/2 equivalence chain: the decisions produced
/// by the executed affine stack obey the same specification as the
/// object-based model.
pub fn object_model_set_consensus(
    alpha: &AgreementFunction,
    order: &[ProcessId],
    proposals: &HashMap<ProcessId, u64>,
) -> Vec<(ProcessId, u64)> {
    let table = alpha.clone();
    let mut object = AdaptiveConsensusObject::new(move |p: ColorSet| table.alpha(p));
    // Processes whose propose defers (participation still powerless)
    // retry after the others have joined.
    let mut decisions = Vec::with_capacity(order.len());
    let mut pending: Vec<ProcessId> = Vec::new();
    for &p in order {
        match object.propose(p, proposals[&p]) {
            Some(v) => decisions.push((p, v)),
            None => pending.push(p),
        }
    }
    for p in pending {
        let v = object
            .propose(p, proposals[&p])
            .expect("full participation has positive power");
        decisions.push((p, v));
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::{zoo, Adversary};
    use act_affine::fair_affine_task;
    use rand::SeedableRng;

    fn proposals(q: ColorSet) -> HashMap<ProcessId, u64> {
        q.iter().map(|p| (p, 500 + p.index() as u64)).collect()
    }

    #[test]
    fn executed_iterations_stay_in_r_a() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(71);
        let models = vec![
            AgreementFunction::k_concurrency(3, 1),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
        ];
        for alpha in models {
            let task = fair_affine_task(&alpha);
            let iterations =
                execute_affine_iterations(&task, &alpha, ColorSet::full(3), 10, &mut rng);
            assert_eq!(iterations.len(), 10);
            for it in &iterations {
                assert_eq!(it.vertices.len(), 3);
            }
        }
    }

    #[test]
    fn executed_set_consensus_obeys_alpha() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(72);
        let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
        let task = fair_affine_task(&alpha);
        let full = ColorSet::full(3);
        let props = proposals(full);
        for _ in 0..30 {
            let its = execute_affine_iterations(&task, &alpha, full, 1, &mut rng);
            let decisions = executed_set_consensus(&task, &alpha, &its[0], full, &props);
            assert_eq!(decisions.len(), 3);
            let mut values: Vec<u64> = decisions.iter().map(|&(_, v)| v).collect();
            values.sort_unstable();
            values.dedup();
            assert!(
                values.len() <= alpha.alpha(full),
                "α-agreement on executed runs"
            );
            for v in values {
                assert!(props.values().any(|&p| p == v), "validity");
            }
        }
    }

    #[test]
    fn object_model_matches_the_same_specification() {
        // Theorem 2's equivalence, behaviourally: both the object model and
        // the executed affine stack satisfy termination, validity and
        // α-agreement for the same α.
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let full = ColorSet::full(3);
        let props = proposals(full);
        let order: Vec<ProcessId> = full.iter().collect();
        let decisions = object_model_set_consensus(&alpha, &order, &props);
        assert_eq!(decisions.len(), 3);
        let mut values: Vec<u64> = decisions.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        values.dedup();
        assert!(values.len() <= alpha.alpha(full));
        for (p, v) in decisions {
            assert!(props.values().any(|&x| x == v));
            let _ = p;
        }
    }

    #[test]
    fn alpha_model_solves_its_own_set_consensus() {
        // The end-to-end claim, with real crashes: for every named fair
        // model and every admissible fault pattern, one Algorithm-1 run +
        // µ_Q yields ≤ α(P) distinct valid decisions for all correct
        // processes.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(74);
        let models = vec![
            AgreementFunction::k_concurrency(3, 1),
            AgreementFunction::k_concurrency(3, 2),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
            AgreementFunction::of_adversary(&Adversary::wait_free(3)),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
        ];
        for alpha in &models {
            let task = fair_affine_task(alpha);
            let full = ColorSet::full(3);
            let power = alpha.alpha(full);
            let props = proposals(full);
            for faulty in full.subsets() {
                if faulty.len() + 1 > power || faulty == full {
                    continue;
                }
                for _ in 0..6 {
                    let decisions = alpha_model_set_consensus(
                        &task,
                        alpha,
                        full,
                        full.minus(faulty),
                        &props,
                        &mut rng,
                    );
                    // Every correct process decided.
                    let deciders: ColorSet = decisions.iter().map(|&(p, _)| p).collect();
                    assert!(full.minus(faulty).is_subset_of(deciders));
                    let mut values: Vec<u64> = decisions.iter().map(|&(_, v)| v).collect();
                    values.sort_unstable();
                    values.dedup();
                    assert!(values.len() <= power, "α-agreement in the α-model");
                    for v in values {
                        assert!(props.values().any(|&x| x == v), "validity");
                    }
                }
            }
        }
    }

    #[test]
    fn partial_participation_executions() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(73);
        let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
        let task = fair_affine_task(&alpha);
        // {p2} alone has power 1 in the figure-5b model.
        let solo = ColorSet::from_indices([1]);
        assert_eq!(alpha.alpha(solo), 1);
        let its = execute_affine_iterations(&task, &alpha, solo, 3, &mut rng);
        for it in its {
            assert_eq!(it.vertices.len(), 1);
            let props = proposals(solo);
            let d = executed_set_consensus(&task, &alpha, &it, solo, &props);
            assert_eq!(d, vec![(ProcessId::new(1), 501)]);
        }
    }
}
