//! Protocol complexes of executable protocols.
//!
//! The combinatorial-topology view of distributed computing studies the
//! *protocol complex*: vertices are `(process, output)` pairs, and a set
//! of vertices forms a simplex when some run produces those outputs
//! together. This module builds protocol complexes directly from
//! schedulable [`System`]s — exhaustively for small systems, empirically
//! (sampled schedules, a sub-complex of the truth) for larger ones — and
//! is how the repository connects *executed* protocols back to the
//! chromatic complexes of the theory: the protocol complex of the
//! one-shot immediate snapshot *is* `Chr s`, and the protocol complex of
//! Algorithm 1 is a sub-complex of `R_A`.

use std::collections::{BTreeMap, BTreeSet};

use act_runtime::{explore_schedules, run_adversarial, System};
use act_topology::{ColorSet, Complex, ProcessId};
use rand::Rng;

/// A schedulable system whose processes produce observable outputs.
pub trait OutputSystem: System {
    /// The per-process output type (orderable so complexes are canonical).
    type Output: Clone + Ord;

    /// The output of `p`, once decided.
    fn output_of(&self, p: ProcessId) -> Option<Self::Output>;
}

impl<V: Clone + Ord> OutputSystem for act_runtime::IsSystem<V> {
    type Output = Vec<(ProcessId, V)>;

    fn output_of(&self, p: ProcessId) -> Option<Self::Output> {
        act_runtime::IsSystem::output_of(self, p)
    }
}

/// Builds the protocol complex of a system by **bounded-exhaustive**
/// schedule exploration: every maximal interleaving (and every truncated
/// branch) contributes the simplex of outputs decided in it.
///
/// Returns the complex (a level-0 labeled complex: one vertex per
/// distinct `(process, output)`, label = output index) together with the
/// output table, so labels can be decoded.
///
/// Only complete for systems whose exploration fits in `max_runs`; the
/// returned complex is always a sub-complex of the true protocol complex.
pub fn explored_protocol_complex<S, F>(
    factory: F,
    participants: ColorSet,
    max_depth: usize,
    max_runs: usize,
) -> (Complex, Vec<S::Output>)
where
    S: OutputSystem,
    F: Fn() -> S,
{
    let mut simplices: BTreeSet<Vec<(ProcessId, S::Output)>> = BTreeSet::new();
    explore_schedules(
        &factory,
        participants,
        participants,
        max_depth,
        max_runs,
        |sys, _outcome| {
            let mut outputs: Vec<(ProcessId, S::Output)> = participants
                .iter()
                .filter_map(|p| sys.output_of(p).map(|o| (p, o)))
                .collect();
            outputs.sort();
            if !outputs.is_empty() {
                simplices.insert(outputs);
            }
        },
    );
    assemble(participants, simplices)
}

/// Builds an **empirical** protocol complex from sampled adversarial
/// schedules (with the given per-run crash budgets), a sub-complex of the
/// true protocol complex that grows with the sample count.
pub fn sampled_protocol_complex<S, F, R>(
    factory: F,
    participants: ColorSet,
    rng: &mut R,
    samples: usize,
    crash_budget: usize,
    max_steps: usize,
) -> (Complex, Vec<S::Output>)
where
    S: OutputSystem,
    F: Fn() -> S,
    R: Rng,
{
    let mut simplices: BTreeSet<Vec<(ProcessId, S::Output)>> = BTreeSet::new();
    for trial in 0..samples {
        let mut sys = factory();
        // Vary the correct set and budgets across samples.
        let all: Vec<ProcessId> = participants.iter().collect();
        let correct = if crash_budget > 0 && trial % 3 == 0 && all.len() > 1 {
            participants.without(all[trial % all.len()])
        } else {
            participants
        };
        let _ = run_adversarial(
            &mut sys,
            participants,
            correct,
            rng,
            |_| crash_budget,
            max_steps,
        );
        let mut outputs: Vec<(ProcessId, S::Output)> = participants
            .iter()
            .filter_map(|p| sys.output_of(p).map(|o| (p, o)))
            .collect();
        outputs.sort();
        if !outputs.is_empty() {
            simplices.insert(outputs);
        }
    }
    assemble(participants, simplices)
}

fn assemble<O: Clone + Ord>(
    participants: ColorSet,
    simplices: BTreeSet<Vec<(ProcessId, O)>>,
) -> (Complex, Vec<O>) {
    let n = participants
        .iter()
        .map(|p| p.index() + 1)
        .max()
        .unwrap_or(1);
    // Intern vertices.
    let mut vertex_index: BTreeMap<(ProcessId, O), usize> = BTreeMap::new();
    let mut vertices: Vec<(ProcessId, u64)> = Vec::new();
    let mut outputs: Vec<O> = Vec::new();
    let mut facets: Vec<Vec<usize>> = Vec::new();
    for simplex in &simplices {
        let mut facet = Vec::with_capacity(simplex.len());
        for (p, o) in simplex {
            let next = vertex_index.len();
            let idx = *vertex_index.entry((*p, o.clone())).or_insert_with(|| {
                vertices.push((*p, outputs.len() as u64));
                outputs.push(o.clone());
                next
            });
            facet.push(idx);
        }
        facets.push(facet);
    }
    if vertices.is_empty() {
        // Degenerate: no outputs at all; produce a void complex over a
        // dummy vertex table.
        let c = Complex::from_labeled_vertices(n, Vec::new(), Vec::new());
        return (c, outputs);
    }
    let full = Complex::from_labeled_vertices(n, vertices, facets);
    // Prune non-maximal simplices.
    let pruned = full.sub_complex(full.facets().to_vec());
    (pruned, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_runtime::IsSystem;
    use rand::SeedableRng;

    #[test]
    fn is_protocol_complex_of_two_processes_is_chr_edge() {
        // The protocol complex of the one-shot immediate snapshot on 2
        // processes is Chr of an edge: 3 facets, 4 vertices — recovered
        // purely from executed schedules.
        let participants = ColorSet::full(2);
        let (complex, _outputs) = explored_protocol_complex(
            || IsSystem::new(vec![Some(0u8), Some(1u8)]),
            participants,
            40,
            1_000_000,
        );
        let chr = Complex::standard(2).chromatic_subdivision();
        assert_eq!(complex.facet_count(), chr.facet_count());
        assert_eq!(complex.used_vertices().len(), chr.num_vertices());
        assert_eq!(complex.f_vector(), chr.f_vector());
        assert!(complex.is_chromatic());
        assert!(complex.is_pure());
    }

    #[test]
    fn sampled_is_protocol_complex_of_three_processes_reaches_chr() {
        // Sampling (with crashes disabled) recovers all 13 facets of Chr s.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(81);
        let participants = ColorSet::full(3);
        let (complex, _) = sampled_protocol_complex(
            || IsSystem::new(vec![Some(0u8), Some(1u8), Some(2u8)]),
            participants,
            &mut rng,
            600,
            0,
            100_000,
        );
        let chr = Complex::standard(3).chromatic_subdivision();
        assert_eq!(complex.facet_count(), chr.facet_count());
        assert_eq!(complex.f_vector(), chr.f_vector());
    }

    #[test]
    fn crashes_add_proper_faces_not_new_facets() {
        // With crash injection the sampled complex still has the same
        // maximal simplices (faces from truncated runs are absorbed).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(82);
        let participants = ColorSet::full(3);
        let (complex, _) = sampled_protocol_complex(
            || IsSystem::new(vec![Some(0u8), Some(1u8), Some(2u8)]),
            participants,
            &mut rng,
            800,
            3,
            100_000,
        );
        let chr = Complex::standard(3).chromatic_subdivision();
        assert!(complex.facet_count() <= chr.facet_count());
        assert!(complex.is_chromatic());
    }

    #[test]
    fn algorithm_one_protocol_complex_is_inside_r_a() {
        // The empirical protocol complex of Algorithm 1 embeds into R_A:
        // every sampled facet, resolved through its output structure,
        // is a simplex of R_A.
        use crate::algorithm1::AlgorithmOneSystem;
        use act_adversary::AgreementFunction;
        use act_affine::fair_affine_task;

        let alpha = AgreementFunction::k_concurrency(3, 1);
        let r_a = fair_affine_task(&alpha);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(83);
        let participants = ColorSet::full(3);
        let (complex, outputs) = sampled_protocol_complex(
            || AlgorithmOneWrapper(AlgorithmOneSystem::new(&alpha, participants)),
            participants,
            &mut rng,
            300,
            0,
            300_000,
        );
        assert!(complex.facet_count() > 5);
        // Resolve each facet into R_A through the recorded outputs.
        for facet in complex.facets() {
            let outs: Vec<crate::algorithm1::AlgorithmOneOutput> = facet
                .vertices()
                .iter()
                .map(|&v| outputs[complex.vertex(v).label as usize].clone())
                .collect();
            let sx =
                crate::algorithm1::outputs_to_simplex(r_a.complex(), &outs).expect("resolvable");
            assert!(r_a.complex().contains_simplex(&sx));
        }
    }

    /// Wrapper giving Algorithm 1 an `OutputSystem` implementation with an
    /// orderable output type.
    struct AlgorithmOneWrapper<'a>(crate::algorithm1::AlgorithmOneSystem<'a>);

    impl System for AlgorithmOneWrapper<'_> {
        fn step(&mut self, p: ProcessId) -> bool {
            self.0.step(p)
        }
        fn has_terminated(&self, p: ProcessId) -> bool {
            self.0.has_terminated(p)
        }
        fn num_processes(&self) -> usize {
            self.0.num_processes()
        }
    }

    impl OutputSystem for AlgorithmOneWrapper<'_> {
        type Output = crate::algorithm1::AlgorithmOneOutput;

        fn output_of(&self, p: ProcessId) -> Option<Self::Output> {
            self.0.output(p).cloned()
        }
    }
}
