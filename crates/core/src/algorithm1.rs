//! Algorithm 1 of the paper: solving the affine task `R_A` in the α-model.
//!
//! Every process runs two immediate-snapshot protocols (`FirstIS`,
//! `SecondIS` — here the genuine Borowsky–Gafni protocol over snapshot
//! memory), separated by the *waiting phase* of Lines 5–9: a process may
//! proceed to `SecondIS` once it knows it belongs to a critical simplex
//! (`crit`), or once the number of potentially contending processes drops
//! below the current concurrency level (`rank < conc`). After `SecondIS`,
//! a process that completes a critical simplex publishes its agreement
//! power in its `Conc` register (Lines 11–12).
//!
//! The waiting-phase test reads several registers; following the paper's
//! pseudocode we model each evaluation of the condition as one atomic scan
//! (the condition is monotone — once true it stays true — so the
//! granularity does not affect correctness).

use act_adversary::AgreementFunction;
use act_runtime::{IsProcess, IsShared, System};
use act_topology::{ColorSet, Complex, ProcessId, Simplex, VertexId};

/// The per-process output of Algorithm 1: the two immediate-snapshot
/// views, with the first-round views of every process seen in the second
/// round (enough to identify a vertex of `Chr² s`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AlgorithmOneOutput {
    /// The process.
    pub process: ProcessId,
    /// `View1`: the processes seen by `FirstIS`.
    pub view1: ColorSet,
    /// The second-round immediate snapshot: each seen process together
    /// with its `View1`.
    pub view2: Vec<(ProcessId, ColorSet)>,
}

#[derive(Clone, Debug)]
enum Phase {
    First(IsProcess<ProcessId>),
    WriteIs1 {
        view1: ColorSet,
    },
    Waiting {
        view1: ColorSet,
    },
    Second {
        view1: ColorSet,
        is: IsProcess<ColorSet>,
    },
    WriteIs2 {
        view1: ColorSet,
        view2: Vec<(ProcessId, ColorSet)>,
    },
    CheckConc {
        view1: ColorSet,
        view2: Vec<(ProcessId, ColorSet)>,
    },
    SetConc {
        view1: ColorSet,
        view2: Vec<(ProcessId, ColorSet)>,
    },
    Done(AlgorithmOneOutput),
    NotParticipating,
}

/// A complete system running Algorithm 1 for a set of participants in the
/// α-model, pluggable into the `act-runtime` schedulers.
///
/// # Examples
///
/// ```
/// use act_adversary::AgreementFunction;
/// use act_runtime::{run_adversarial, System};
/// use act_topology::ColorSet;
/// use fact::AlgorithmOneSystem;
/// use rand::SeedableRng;
///
/// let alpha = AgreementFunction::k_concurrency(3, 1);
/// let mut sys = AlgorithmOneSystem::new(&alpha, ColorSet::full(3));
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let correct = ColorSet::full(3);
/// let outcome = run_adversarial(&mut sys, ColorSet::full(3), correct, &mut rng, |_| 0, 100_000);
/// assert!(outcome.all_correct_terminated);
/// ```
#[derive(Clone)]
pub struct AlgorithmOneSystem<'a> {
    alpha: &'a AgreementFunction,
    n: usize,
    waiting_enabled: bool,
    first_shared: IsShared<ProcessId>,
    second_shared: IsShared<ColorSet>,
    is1: Vec<Option<ColorSet>>,
    is2: Vec<Option<ColorSet>>,
    conc: Vec<usize>,
    phases: Vec<Phase>,
}

impl<'a> AlgorithmOneSystem<'a> {
    /// Creates the system for the given α-model and participating set.
    pub fn new(alpha: &'a AgreementFunction, participants: ColorSet) -> Self {
        Self::with_waiting(alpha, participants, true)
    }

    /// **Ablation constructor**: Algorithm 1 with the waiting phase of
    /// Lines 5–9 disabled — every process proceeds to `SecondIS`
    /// immediately. Used as a negative control: without the waiting
    /// discipline, outputs escape `R_A` (the `exp_ablation` bench
    /// measures how often).
    pub fn new_without_waiting(alpha: &'a AgreementFunction, participants: ColorSet) -> Self {
        Self::with_waiting(alpha, participants, false)
    }

    fn with_waiting(
        alpha: &'a AgreementFunction,
        participants: ColorSet,
        waiting_enabled: bool,
    ) -> Self {
        let n = alpha.num_processes();
        let phases = (0..n)
            .map(|i| {
                let p = ProcessId::new(i);
                if participants.contains(p) {
                    Phase::First(IsProcess::new(n, p))
                } else {
                    Phase::NotParticipating
                }
            })
            .collect();
        AlgorithmOneSystem {
            alpha,
            n,
            waiting_enabled,
            first_shared: IsShared::new(n),
            second_shared: IsShared::new(n),
            is1: vec![None; n],
            is2: vec![None; n],
            conc: vec![0; n],
            phases,
        }
    }

    /// The output of process `p`, if it has decided.
    pub fn output(&self, p: ProcessId) -> Option<&AlgorithmOneOutput> {
        match &self.phases[p.index()] {
            Phase::Done(out) => Some(out),
            _ => None,
        }
    }

    /// All outputs produced so far.
    pub fn outputs(&self) -> Vec<AlgorithmOneOutput> {
        (0..self.n)
            .filter_map(|i| self.output(ProcessId::new(i)).cloned())
            .collect()
    }

    /// Line 7: whether `me` (with `view1`) currently belongs to a critical
    /// simplex, judging from the published `IS1` registers.
    fn crit(&self, view1: ColorSet) -> bool {
        let same: ColorSet = (0..self.n)
            .map(ProcessId::new)
            .filter(|&q| self.is1[q.index()] == Some(view1))
            .collect();
        self.alpha.alpha(view1) > self.alpha.alpha(view1.minus(same))
    }

    /// Line 8: the number of processes in `view1` that have not yet
    /// published a second snapshot and do not share `view1`.
    fn rank(&self, view1: ColorSet) -> usize {
        view1
            .iter()
            .filter(|&q| self.is2[q.index()].is_none() && self.is1[q.index()] != Some(view1))
            .count()
    }

    /// Line 9: the current concurrency level.
    fn conc_level(&self, view1: ColorSet) -> usize {
        let shared_max = self.conc.iter().copied().max().unwrap_or(0);
        self.alpha.alpha(view1).max(shared_max)
    }

    /// Lines 11–12 condition: whether `me`'s critical simplex has fully
    /// terminated its second snapshot.
    fn conc_publish(&self, view1: ColorSet) -> bool {
        let same_terminated: ColorSet = (0..self.n)
            .map(ProcessId::new)
            .filter(|&q| self.is1[q.index()] == Some(view1) && self.is2[q.index()].is_some())
            .collect();
        self.alpha.alpha(view1) > self.alpha.alpha(view1.minus(same_terminated))
    }
}

impl System for AlgorithmOneSystem<'_> {
    fn step(&mut self, p: ProcessId) -> bool {
        let i = p.index();
        // Take the phase out to satisfy the borrow checker; put back after.
        let phase = std::mem::replace(&mut self.phases[i], Phase::NotParticipating);
        let next = match phase {
            Phase::NotParticipating => Phase::NotParticipating,
            Phase::Done(out) => Phase::Done(out),
            Phase::First(mut is) => {
                is.step(p, &mut self.first_shared);
                match is.view() {
                    Some(view1) => Phase::WriteIs1 { view1 },
                    None => Phase::First(is),
                }
            }
            Phase::WriteIs1 { view1 } => {
                self.is1[i] = Some(view1);
                Phase::Waiting { view1 }
            }
            Phase::Waiting { view1 } => {
                if !self.waiting_enabled
                    || self.crit(view1)
                    || self.rank(view1) < self.conc_level(view1)
                {
                    Phase::Second {
                        view1,
                        is: IsProcess::new(self.n, view1),
                    }
                } else {
                    Phase::Waiting { view1 }
                }
            }
            Phase::Second { view1, mut is } => {
                is.step(p, &mut self.second_shared);
                match is.output() {
                    Some(out) => Phase::WriteIs2 {
                        view1,
                        view2: out.to_vec(),
                    },
                    None => Phase::Second { view1, is },
                }
            }
            Phase::WriteIs2 { view1, view2 } => {
                self.is2[i] = Some(view2.iter().map(|&(q, _)| q).collect());
                Phase::CheckConc { view1, view2 }
            }
            Phase::CheckConc { view1, view2 } => {
                if self.conc_publish(view1) {
                    Phase::SetConc { view1, view2 }
                } else {
                    Phase::Done(AlgorithmOneOutput {
                        process: p,
                        view1,
                        view2,
                    })
                }
            }
            Phase::SetConc { view1, view2 } => {
                self.conc[i] = self.alpha.alpha(view1);
                Phase::Done(AlgorithmOneOutput {
                    process: p,
                    view1,
                    view2,
                })
            }
        };
        self.phases[i] = next;
        self.has_terminated(p)
    }

    fn has_terminated(&self, p: ProcessId) -> bool {
        matches!(
            self.phases[p.index()],
            Phase::Done(_) | Phase::NotParticipating
        )
    }

    fn num_processes(&self) -> usize {
        self.n
    }
}

/// Resolves a set of Algorithm-1 outputs to a simplex of a level-2 complex
/// over the standard simplex (`Chr² s` or a sub-complex such as `R_A`):
/// each output identifies one vertex by its `(View1, View2)` structure.
///
/// Returns `None` if some described vertex does not exist in the complex's
/// vertex table.
///
/// # Panics
///
/// Panics if the complex is not a level-2 subdivision of the standard
/// simplex.
pub fn outputs_to_simplex(chr2: &Complex, outputs: &[AlgorithmOneOutput]) -> Option<Simplex> {
    assert_eq!(chr2.level(), 2, "Algorithm 1 outputs live in Chr² s");
    let parent = chr2.parent().expect("level-2 complex has a parent");
    let mut verts = Vec::with_capacity(outputs.len());
    for out in outputs {
        // Level-1 vertices of every process seen in the second round.
        let mut carrier = Vec::with_capacity(out.view2.len());
        for &(q, view1_q) in &out.view2 {
            let base_carrier =
                Simplex::from_vertices(view1_q.iter().map(|r| VertexId::from_index(r.index())));
            carrier.push(parent.find_vertex(q, &base_carrier)?);
        }
        let carrier = Simplex::from_vertices(carrier);
        verts.push(chr2.find_vertex(out.process, &carrier)?);
    }
    Some(Simplex::from_vertices(verts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::{zoo, Adversary};
    use act_affine::fair_affine_task;
    use act_runtime::run_adversarial;
    use rand::SeedableRng;

    fn models() -> Vec<AgreementFunction> {
        vec![
            AgreementFunction::k_concurrency(3, 1),
            AgreementFunction::k_concurrency(3, 2),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
            AgreementFunction::of_adversary(&Adversary::wait_free(3)),
        ]
    }

    #[test]
    fn algorithm_one_is_live_and_safe_under_random_schedules() {
        // Theorem 7 (Lemmas 5 and 6), sampled: in every admissible α-model
        // run, all correct processes decide and the outputs form a simplex
        // of R_A.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
        for alpha in models() {
            let r_a = fair_affine_task(&alpha);
            let full = ColorSet::full(3);
            for participants in full.non_empty_subsets() {
                let power = alpha.alpha(participants);
                if power == 0 {
                    continue; // not admissible
                }
                for faulty in participants.subsets() {
                    if faulty.len() > power - 1 || faulty == participants {
                        continue;
                    }
                    let correct = participants.minus(faulty);
                    for trial in 0..8 {
                        let mut sys = AlgorithmOneSystem::new(&alpha, participants);
                        let budget = trial * 3; // faulty processes crash early or late
                        let outcome = run_adversarial(
                            &mut sys,
                            participants,
                            correct,
                            &mut rng,
                            |_| budget,
                            200_000,
                        );
                        assert!(
                            outcome.all_correct_terminated,
                            "liveness violated: α-model run must decide \
                             (participants {participants}, correct {correct})"
                        );
                        let outputs = sys.outputs();
                        let simplex = outputs_to_simplex(r_a.complex(), &outputs)
                            .expect("outputs identify Chr² vertices");
                        assert!(
                            r_a.complex().contains_simplex(&simplex),
                            "safety violated: outputs outside R_A \
                             (participants {participants}, correct {correct})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn waiting_phase_blocks_overtaking() {
        // 2-obstruction-freedom over 3 processes: after a sequential first
        // round, the last process (full View1, not critical) must not
        // complete SecondIS before anyone else. Drive it alone and observe
        // it stuck in the waiting phase.
        let alpha = AgreementFunction::k_concurrency(3, 2);
        let mut sys = AlgorithmOneSystem::new(&alpha, ColorSet::full(3));
        // Run p1, p2, p3 sequentially through FirstIS + register write.
        for i in 0..3 {
            let p = ProcessId::new(i);
            for _ in 0..64 {
                if matches!(sys.phases[i], Phase::Waiting { .. }) {
                    break;
                }
                sys.step(p);
            }
            assert!(matches!(sys.phases[i], Phase::Waiting { .. }));
        }
        // p3 saw everyone; α({p1,p2,p3}) = 2 and rank = 2 (p1, p2 pending
        // with smaller views): it must wait.
        let p3 = ProcessId::new(2);
        for _ in 0..100 {
            sys.step(p3);
        }
        assert!(
            matches!(sys.phases[2], Phase::Waiting { .. }),
            "p3 must not overtake without a critical excuse"
        );
        // p1 has the smallest view: rank 0 < conc — it may proceed.
        let p1 = ProcessId::new(0);
        for _ in 0..100 {
            sys.step(p1);
        }
        assert!(sys.has_terminated(p1), "the smallest-view process proceeds");
        // Once p1 published IS2, p3's rank drops to 1 < 2: it proceeds.
        for _ in 0..200 {
            sys.step(p3);
        }
        assert!(sys.has_terminated(p3));
    }

    #[test]
    fn ablation_without_waiting_phase_breaks_safety() {
        // Negative control: drive the first IS sequentially p1, p2, p3,
        // then the second in reverse. With the waiting phase disabled the
        // overtaking succeeds and produces a contention pattern excluded
        // from R_{1-OF}.
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let r_a = fair_affine_task(&alpha);
        let mut sys = AlgorithmOneSystem::new_without_waiting(&alpha, ColorSet::full(3));
        // Round 1 sequential.
        for i in 0..3 {
            let p = ProcessId::new(i);
            for _ in 0..64 {
                if matches!(sys.phases[i], Phase::Waiting { .. }) {
                    break;
                }
                sys.step(p);
            }
        }
        // Round 2 in reverse order, run each process to completion.
        for i in (0..3).rev() {
            let p = ProcessId::new(i);
            for _ in 0..200 {
                sys.step(p);
            }
            assert!(sys.has_terminated(p), "no waiting: everyone sails through");
        }
        let simplex =
            outputs_to_simplex(r_a.complex(), &sys.outputs()).expect("outputs are Chr² vertices");
        assert!(
            !r_a.complex().contains_simplex(&simplex),
            "without the waiting phase the outputs escape R_A"
        );
        // The same schedule with the waiting phase enabled cannot reverse:
        // the real algorithm blocks p3 (see waiting_phase_blocks_overtaking).
    }

    #[test]
    fn solo_critical_process_need_not_wait() {
        // 1-OF: a process running solo is critical (its View1 = {itself}
        // witnesses power 1) and decides without anyone else moving.
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let mut sys = AlgorithmOneSystem::new(&alpha, ColorSet::from_indices([1]));
        let p2 = ProcessId::new(1);
        for _ in 0..200 {
            sys.step(p2);
        }
        assert!(sys.has_terminated(p2));
        let out = sys.output(p2).unwrap();
        assert_eq!(out.view1, ColorSet::from_indices([1]));
        assert_eq!(out.view2, vec![(p2, ColorSet::from_indices([1]))]);
    }

    #[test]
    fn outputs_resolve_into_full_chr2() {
        let alpha = AgreementFunction::of_adversary(&Adversary::wait_free(3));
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let full = ColorSet::full(3);
            let mut sys = AlgorithmOneSystem::new(&alpha, full);
            let outcome = run_adversarial(&mut sys, full, full, &mut rng, |_| 0, 200_000);
            assert!(outcome.all_correct_terminated);
            let simplex = outputs_to_simplex(&chr2, &sys.outputs()).unwrap();
            assert_eq!(simplex.len(), 3);
            assert!(chr2.contains_simplex(&simplex));
        }
    }
}
