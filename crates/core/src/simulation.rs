//! Simulating the α-model inside the affine model `R_A^*` (Section 6).
//!
//! Two ingredients, mirroring the paper's simulation:
//!
//! * [`AdaptiveSetConsensus`] — α-adaptive set consensus solved by
//!   iterating `R_A` and electing leaders with `µ_Q` (Section 6.2,
//!   Lemmas 13–14): every process adopts the decision estimate of its
//!   leader, and commits once every competitor it observes holds an
//!   estimate;
//! * [`SnapshotSimulation`] — the Gafni–Rajsbaum-style simulation of
//!   atomic-snapshot memory on top of iterated (immediate-)snapshot views:
//!   processes merge sequence-numbered vectors round by round; a write
//!   completes once every active process is known to have observed it.
//!
//! Together these justify Theorem 15: anything solvable with shared memory
//! plus α-adaptive set consensus — equivalently, in the fair adversarial
//! `A`-model — is solvable in `R_A^*`.

use std::collections::HashMap;

use act_adversary::AgreementFunction;
use act_affine::AffineTask;
use act_topology::{ColorSet, Complex, ProcessId, Simplex, VertexId};
use rand::Rng;

use crate::leader::LeaderMap;

/// One iteration of an `R_A^*` run: the facet of `R_A` realized by the
/// iteration and the vertex of each participant.
#[derive(Clone, Debug)]
pub struct AffineIteration {
    /// The realized facet (a facet of `Δ(participants)`).
    pub facet: Simplex,
    /// Participant → vertex of the facet.
    pub vertices: HashMap<ProcessId, VertexId>,
}

/// Samples iterations of the affine model `R_A^*`: each iteration is an
/// independent uniformly chosen allowed run of the affine task among the
/// fixed participants.
///
/// (In `R_A^*` every participant moves in every iteration — the affine
/// model has no failures; asynchrony lives inside the chosen facets.)
pub struct AffineRunGenerator<'a> {
    task: &'a AffineTask,
    participants: ColorSet,
    recipes: Vec<act_topology::Recipe>,
}

impl<'a> AffineRunGenerator<'a> {
    /// Creates a generator for the given participant set.
    ///
    /// # Panics
    ///
    /// Panics if the task admits no run for this participation
    /// (`Δ(participants)` has no full-participation facet — "participation
    /// must grow first").
    pub fn new(task: &'a AffineTask, participants: ColorSet) -> Self {
        let recipes = task.recipes(participants);
        assert!(
            !recipes.is_empty(),
            "the affine task admits no run for participation {participants}"
        );
        AffineRunGenerator {
            task,
            participants,
            recipes,
        }
    }

    /// The number of distinct allowed runs per iteration.
    pub fn run_count(&self) -> usize {
        self.recipes.len()
    }

    /// Samples the next iteration.
    pub fn next_iteration<R: Rng>(&self, rng: &mut R) -> AffineIteration {
        let recipe = &self.recipes[rng.gen_range(0..self.recipes.len())];
        self.iteration_for(recipe)
    }

    /// The iteration realizing a specific recipe.
    pub fn iteration_for(&self, recipe: &act_topology::Recipe) -> AffineIteration {
        let complex = self.task.complex();
        let base_facet = complex.base().facets()[0].clone();
        let facet = complex
            .simplex_for_recipe(&base_facet, recipe)
            .expect("allowed recipes resolve inside the task");
        let vertices = facet
            .vertices()
            .iter()
            .map(|&v| (complex.color(v), v))
            .collect();
        AffineIteration { facet, vertices }
    }

    /// The participant set.
    pub fn participants(&self) -> ColorSet {
        self.participants
    }
}

/// The per-process outcome of an α-adaptive set-consensus simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The deciding process.
    pub process: ProcessId,
    /// The decided value.
    pub value: u64,
    /// The iteration (1-based) at which the process committed.
    pub round: usize,
}

/// α-adaptive set consensus in `R_A^*` via `µ_Q` leader election
/// (Section 6.2).
pub struct AdaptiveSetConsensus<'a> {
    task: &'a AffineTask,
    alpha: &'a AgreementFunction,
}

impl<'a> AdaptiveSetConsensus<'a> {
    /// Creates the solver for an affine task and its agreement function.
    pub fn new(task: &'a AffineTask, alpha: &'a AgreementFunction) -> Self {
        AdaptiveSetConsensus { task, alpha }
    }

    /// Runs the simulation among `q` (a subset of the participants), with
    /// `proposals[p]` the proposal of each process in `q`.
    ///
    /// Returns the decisions; every process of `q` decides within
    /// `max_rounds` iterations (the paper's Lemma 14 — we assert it).
    ///
    /// # Panics
    ///
    /// Panics if `q` is empty or not included in `participants`, or if a
    /// process fails to decide within `max_rounds` (a liveness violation).
    pub fn solve<R: Rng>(
        &self,
        participants: ColorSet,
        q: ColorSet,
        proposals: &HashMap<ProcessId, u64>,
        rng: &mut R,
        max_rounds: usize,
    ) -> Vec<Decision> {
        assert!(!q.is_empty() && q.is_subset_of(participants));
        let generator = AffineRunGenerator::new(self.task, participants);
        let leader_map = LeaderMap::new(self.task.complex(), self.alpha);
        let complex = self.task.complex();

        let mut estimates: HashMap<ProcessId, u64> = HashMap::new();
        let mut decisions: Vec<Decision> = Vec::new();
        let mut undecided = q;

        for round in 1..=max_rounds {
            if undecided.is_empty() {
                break;
            }
            let iter = generator.next_iteration(rng);
            // Phase 1: every undecided process adopts the estimate (or
            // proposal) of its leader among the still-relevant processes.
            let active_q = undecided;
            let mut new_estimates = estimates.clone();
            for p in active_q.iter() {
                let v = iter.vertices[&p];
                let leader = leader_map.mu_q(v, active_q);
                let adopted = estimates
                    .get(&leader)
                    .copied()
                    .unwrap_or_else(|| proposals[&leader]);
                new_estimates.insert(p, adopted);
            }
            estimates = new_estimates;
            // Phase 2: a process commits once every `q`-competitor it
            // observes already holds an estimate.
            for p in active_q.iter() {
                let v = iter.vertices[&p];
                let seen = complex.base_colors_of_vertex(v);
                let competitors = seen.intersection(active_q);
                if competitors.iter().all(|c| estimates.contains_key(&c)) {
                    decisions.push(Decision {
                        process: p,
                        value: estimates[&p],
                        round,
                    });
                    undecided = undecided.without(p);
                }
            }
        }
        assert!(
            undecided.is_empty(),
            "liveness violation: {undecided} undecided after {max_rounds} rounds"
        );
        decisions
    }
}

/// The simulated atomic-snapshot memory over iterated snapshot views
/// (Section 6.1): each process repeatedly publishes a sequence-numbered
/// vector; received vectors are merged pointwise by sequence number.
///
/// Feeding it the per-iteration views of an `R_A^*` run (or of any IIS
/// run) yields emulated `update`/`snapshot` histories whose atomicity the
/// [`SnapshotSimulation::check_atomicity`] verifier certifies.
#[derive(Clone, Debug)]
pub struct SnapshotSimulation {
    n: usize,
    /// Per process: its current merged vector of (seqno, value).
    vectors: Vec<SeqVector>,
    /// Per process: the next sequence number to write.
    next_seq: Vec<u64>,
    /// Log of emulated snapshots.
    snapshots: Vec<LoggedSnapshot>,
    round: usize,
}

/// A vector of `(sequence number, value)` pairs, one slot per process.
pub type SeqVector = Vec<(u64, u64)>;

/// One logged emulated snapshot: `(process, round, vector)`.
pub type LoggedSnapshot = (ProcessId, usize, SeqVector);

impl SnapshotSimulation {
    /// Creates the simulation for `n` processes (all vectors empty, every
    /// slot at sequence number 0).
    pub fn new(n: usize) -> Self {
        SnapshotSimulation {
            n,
            vectors: vec![vec![(0, 0); n]; n],
            next_seq: vec![1; n],
            snapshots: Vec::new(),
            round: 0,
        }
    }

    /// Process `p` stages a write of `value` (its next pending operation).
    /// The write is published in the next iteration `p` participates in.
    pub fn stage_write(&mut self, p: ProcessId, value: u64) {
        let seq = self.next_seq[p.index()];
        self.next_seq[p.index()] += 1;
        self.vectors[p.index()][p.index()] = (seq, value);
    }

    /// Executes one iteration: `views[i]` is the set of processes whose
    /// published vectors process `i` receives (must include `i` itself for
    /// participants; `None` marks a process not participating in this
    /// iteration).
    ///
    /// Every participant then holds the pointwise-by-seqno merge of the
    /// received vectors and logs it as an emulated snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the views violate self-inclusion or containment (they
    /// must come from a snapshot-like round).
    pub fn step_round(&mut self, views: &[Option<ColorSet>]) {
        assert_eq!(views.len(), self.n);
        self.round += 1;
        // Validate snapshot-like views.
        let participating: Vec<ProcessId> = (0..self.n)
            .map(ProcessId::new)
            .filter(|p| views[p.index()].is_some())
            .collect();
        for &p in &participating {
            let view = views[p.index()].unwrap();
            assert!(view.contains(p), "self-inclusion");
            for &q in &participating {
                let other = views[q.index()].unwrap();
                assert!(
                    view.is_subset_of(other) || other.is_subset_of(view),
                    "containment"
                );
            }
        }
        // Publish: the merge reads the vectors as they were at the start
        // of the round.
        let published = self.vectors.clone();
        for &p in &participating {
            let view = views[p.index()].unwrap();
            let mut merged = self.vectors[p.index()].clone();
            for q in view.iter() {
                for slot in 0..self.n {
                    if published[q.index()][slot].0 > merged[slot].0 {
                        merged[slot] = published[q.index()][slot];
                    }
                }
            }
            self.vectors[p.index()] = merged.clone();
            self.snapshots.push((p, self.round, merged));
        }
    }

    /// The emulated snapshots logged so far.
    pub fn snapshots(&self) -> &[LoggedSnapshot] {
        &self.snapshots
    }

    /// Whether process `p`'s write with sequence number `seq` is known (to
    /// an omniscient observer) to have reached every process in `alive`.
    pub fn write_visible_to_all(&self, p: ProcessId, seq: u64, alive: ColorSet) -> bool {
        alive
            .iter()
            .all(|q| self.vectors[q.index()][p.index()].0 >= seq)
    }

    /// Verifies the atomic-snapshot axioms on the logged history:
    ///
    /// 1. *comparability* — logged snapshots are totally ordered by
    ///    pointwise sequence numbers;
    /// 2. *self-inclusion* — a process's snapshot contains its own latest
    ///    staged write;
    /// 3. *monotonicity* — each process's successive snapshots never go
    ///    backwards.
    ///
    /// Together with per-slot monotone sequence numbers these imply the
    /// history is linearizable as an atomic-snapshot memory.
    pub fn check_atomicity(&self) -> Result<(), String> {
        let dominates = |a: &SeqVector, b: &SeqVector| a.iter().zip(b).all(|(x, y)| x.0 >= y.0);
        for (i, (p1, r1, s1)) in self.snapshots.iter().enumerate() {
            for (p2, r2, s2) in self.snapshots.iter().skip(i + 1) {
                if !dominates(s1, s2) && !dominates(s2, s1) {
                    return Err(format!(
                        "incomparable snapshots: {p1} at round {r1} vs {p2} at round {r2}"
                    ));
                }
            }
        }
        let mut last: HashMap<ProcessId, SeqVector> = HashMap::new();
        for (p, r, s) in &self.snapshots {
            if let Some(prev) = last.get(p) {
                if !dominates(s, prev) {
                    return Err(format!("snapshot of {p} at round {r} went backwards"));
                }
            }
            last.insert(*p, s.clone());
        }
        Ok(())
    }
}

/// Extracts, for each participant, the set of processes it sees across a
/// full iteration of an affine task (its `carrier(v, s)`), in the form
/// [`SnapshotSimulation::step_round`] expects.
pub fn iteration_views(
    complex: &Complex,
    iteration: &AffineIteration,
    n: usize,
) -> Vec<Option<ColorSet>> {
    let mut out = vec![None; n];
    for (&p, &v) in &iteration.vertices {
        out[p.index()] = Some(complex.base_colors_of_vertex(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::{zoo, Adversary};
    use act_affine::fair_affine_task;
    use rand::SeedableRng;

    fn proposals(q: ColorSet) -> HashMap<ProcessId, u64> {
        q.iter().map(|p| (p, 100 + p.index() as u64)).collect()
    }

    #[test]
    fn adaptive_set_consensus_respects_alpha() {
        // Lemma 13 (α-agreement + validity) and Lemma 14 (liveness),
        // sampled over models, participations and coalitions Q.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let models = vec![
            AgreementFunction::k_concurrency(3, 1),
            AgreementFunction::k_concurrency(3, 2),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
        ];
        for alpha in &models {
            let task = fair_affine_task(alpha);
            let solver = AdaptiveSetConsensus::new(&task, alpha);
            let full = ColorSet::full(3);
            for q in full.non_empty_subsets() {
                let props = proposals(q);
                for _ in 0..10 {
                    let decisions = solver.solve(full, q, &props, &mut rng, 64);
                    assert_eq!(decisions.len(), q.len(), "everyone in Q decides");
                    let mut values: Vec<u64> = decisions.iter().map(|d| d.value).collect();
                    values.sort_unstable();
                    values.dedup();
                    assert!(
                        values.len() <= alpha.alpha(full),
                        "α-agreement violated: {} values for α = {}",
                        values.len(),
                        alpha.alpha(full)
                    );
                    for v in &values {
                        assert!(
                            props.values().any(|p| p == v),
                            "validity: decided value was proposed by Q"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn adaptivity_with_partial_participation() {
        // With participation P, the bound is α(P), which can be smaller
        // than α(Π).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(32);
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let task = fair_affine_task(&alpha);
        let solver = AdaptiveSetConsensus::new(&task, &alpha);
        let pair = ColorSet::from_indices([0, 1]);
        assert_eq!(alpha.alpha(pair), 1, "two participants: consensus");
        let props = proposals(pair);
        for _ in 0..20 {
            let decisions = solver.solve(pair, pair, &props, &mut rng, 64);
            let mut values: Vec<u64> = decisions.iter().map(|d| d.value).collect();
            values.sort_unstable();
            values.dedup();
            assert_eq!(values.len(), 1, "α(P) = 1 forces agreement");
        }
    }

    #[test]
    fn snapshot_simulation_is_atomic_over_affine_runs() {
        // Section 6.1: the emulated snapshot memory built from R_A^*
        // iteration views passes the atomicity verifier, and writes
        // propagate to every process.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        let alpha = AgreementFunction::k_concurrency(3, 2);
        let task = fair_affine_task(&alpha);
        let generator = AffineRunGenerator::new(&task, ColorSet::full(3));
        let mut sim = SnapshotSimulation::new(3);
        for round in 0..40 {
            // Every process stages a fresh write every other round.
            if round % 2 == 0 {
                for i in 0..3 {
                    sim.stage_write(ProcessId::new(i), (round * 10 + i) as u64);
                }
            }
            let iter = generator.next_iteration(&mut rng);
            let views = iteration_views(task.complex(), &iter, 3);
            sim.step_round(&views);
        }
        sim.check_atomicity().expect("atomic-snapshot axioms hold");
        // Eventual visibility: after a quiescent round every alive process
        // holds everyone's latest write.
        let all = ColorSet::full(3);
        // One more synchronous-ish iteration to flush.
        for _ in 0..4 {
            let iter = generator.next_iteration(&mut rng);
            sim.step_round(&iteration_views(task.complex(), &iter, 3));
        }
        for i in 0..3 {
            let p = ProcessId::new(i);
            let last_seq = 20; // 20 writes staged per process
            assert!(
                sim.write_visible_to_all(p, last_seq, all),
                "writes eventually reach everyone"
            );
        }
    }

    #[test]
    fn snapshot_simulation_detects_broken_views() {
        let mut sim = SnapshotSimulation::new(2);
        sim.stage_write(ProcessId::new(0), 7);
        // Views violating containment must be rejected.
        let bad = vec![
            Some(ColorSet::from_indices([0])),
            Some(ColorSet::from_indices([1])),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.step_round(&bad);
        }));
        assert!(result.is_err(), "containment violation is rejected");
    }

    #[test]
    fn run_generator_counts_match_recipes() {
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let task = fair_affine_task(&alpha);
        let g = AffineRunGenerator::new(&task, ColorSet::full(3));
        assert_eq!(g.run_count(), task.recipes(ColorSet::full(3)).len());
        assert_eq!(g.participants(), ColorSet::full(3));
    }
}
