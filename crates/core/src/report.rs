//! Machine-readable run reports for `fact-cli --report`.
//!
//! A [`RunReport`] bundles the outcome of one CLI invocation with the
//! telemetry stream the run emitted: every `act-obs` event, plus event
//! counts and summed span timings aggregated by event name. The JSON
//! shape is versioned ([`REPORT_SCHEMA_VERSION`]) and checked by
//! [`validate_report_json`], which CI runs against every report the
//! pipeline produces.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

/// Version stamp written into every report.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// One CLI run: its verdict plus the aggregated telemetry stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version of this report ([`REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The CLI command that ran (`analyze`, `solve`, …).
    pub command: String,
    /// The model spec the command ran against (empty for `census`).
    pub model: String,
    /// Whether the command succeeded.
    pub ok: bool,
    /// Command verdict/summary, when the command produces one.
    pub verdict: Option<String>,
    /// Event counts keyed by event name (`"ev"`).
    pub counters: BTreeMap<String, u64>,
    /// Summed `elapsed_us` per event name, for events that carry one.
    pub timings_us: BTreeMap<String, u64>,
    /// The raw event stream, one parsed JSON object per emitted line.
    pub events: Vec<Value>,
}

impl RunReport {
    /// Builds a report from the JSON-lines telemetry a run captured.
    ///
    /// Lines that fail to parse are skipped (the sink is line-oriented
    /// and never interleaves, so this only happens if a non-telemetry
    /// writer shares the stream).
    pub fn from_events(
        command: &str,
        model: &str,
        ok: bool,
        verdict: Option<String>,
        lines: &[String],
    ) -> RunReport {
        let mut counters = BTreeMap::new();
        let mut timings_us = BTreeMap::new();
        let mut events = Vec::new();
        for line in lines {
            let Ok(v) = serde_json::from_str::<Value>(line) else {
                continue;
            };
            if let Ok(Value::Str(name)) = v.field("ev") {
                *counters.entry(name.clone()).or_insert(0) += 1;
                if let Ok(&Value::UInt(us)) = v.field("elapsed_us") {
                    *timings_us.entry(name.clone()).or_insert(0) += us;
                }
            }
            events.push(v);
        }
        RunReport {
            schema_version: REPORT_SCHEMA_VERSION,
            command: command.to_string(),
            model: model.to_string(),
            ok,
            verdict,
            counters,
            timings_us,
            events,
        }
    }
}

/// Parses and validates a report, returning it or a description of the
/// first problem found.
pub fn validate_report_json(json: &str) -> Result<RunReport, String> {
    let report: RunReport =
        serde_json::from_str(json).map_err(|e| format!("not a run report: {e}"))?;
    if report.schema_version != REPORT_SCHEMA_VERSION {
        return Err(format!(
            "schema version {} (this binary understands {})",
            report.schema_version, REPORT_SCHEMA_VERSION
        ));
    }
    if report.command.is_empty() {
        return Err("empty command".into());
    }
    for (name, ev) in report.events.iter().enumerate() {
        let Ok(Value::Str(_)) = ev.field("ev") else {
            return Err(format!("event {name} lacks a string `ev` field"));
        };
        let Ok(Value::UInt(_)) = ev.field("seq") else {
            return Err(format!("event {name} lacks a `seq` field"));
        };
    }
    let total: u64 = report.counters.values().sum();
    if total != report.events.len() as u64 {
        return Err(format!(
            "counter totals ({total}) disagree with the event stream ({})",
            report.events.len()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_and_validates() {
        let lines = vec![
            r#"{"ev":"solver.iteration","seq":1,"elapsed_us":120,"verdict":"solvable"}"#
                .to_string(),
            r#"{"ev":"solver.iteration","seq":2,"elapsed_us":80,"verdict":"no-map"}"#.to_string(),
            r#"{"ev":"mapsearch.done","seq":3,"nodes":7}"#.to_string(),
            "not json at all".to_string(),
        ];
        let report =
            RunReport::from_events("solve", "t-res:3:1", true, Some("SOLVABLE".into()), &lines);
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.counters["solver.iteration"], 2);
        assert_eq!(report.counters["mapsearch.done"], 1);
        assert_eq!(report.timings_us["solver.iteration"], 200);
        assert!(!report.timings_us.contains_key("mapsearch.done"));

        let json = serde_json::to_string_pretty(&report).unwrap();
        let back = validate_report_json(&json).expect("valid report");
        assert_eq!(back.command, "solve");
        assert_eq!(back.verdict.as_deref(), Some("SOLVABLE"));
        assert_eq!(back.counters, report.counters);
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        assert!(validate_report_json("[]").is_err());
        assert!(validate_report_json("{\"schema_version\":1}").is_err());

        let mut report = RunReport::from_events("solve", "m", true, None, &[]);
        report.schema_version = 99;
        let json = serde_json::to_string(&report).unwrap();
        assert!(validate_report_json(&json)
            .unwrap_err()
            .contains("schema version"));

        // A counter total that disagrees with the stream is caught.
        let mut report = RunReport::from_events("solve", "m", true, None, &[]);
        report.counters.insert("phantom".into(), 3);
        let json = serde_json::to_string(&report).unwrap();
        assert!(validate_report_json(&json)
            .unwrap_err()
            .contains("disagree"));
    }
}
