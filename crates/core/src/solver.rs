//! The FACT solvability pipeline (Theorem 16): decide whether a task is
//! solvable in a fair adversarial model by searching for a chromatic
//! simplicial map from iterations of `R_A` applied to the task's inputs.

use act_adversary::AgreementFunction;
use act_affine::AffineTask;
use act_tasks::{find_carried_map_with_config, SearchConfig, SearchResult, Task};
use act_topology::{
    canonical_pair_hashes, permute_complex, ColorPerm, Complex, VertexMap, SYMMETRY_MAX_DEGREE,
};

/// The verdict of the bounded FACT pipeline.
#[derive(Clone, Debug)]
pub enum Solvability {
    /// A map was found at the given number of `R_A` iterations.
    Solvable {
        /// The iteration count `ℓ`.
        iterations: usize,
        /// The witnessing map from `R_A^ℓ(I)` to `O`.
        map: VertexMap,
    },
    /// No map exists for any `ℓ` up to the bound (unsolvability at those
    /// depths is exact; FACT's "there exists ℓ" was checked up to the
    /// bound).
    NoMapUpTo {
        /// The deepest iteration count checked.
        max_iterations: usize,
    },
    /// The node budget ran out at some depth.
    Exhausted {
        /// The iteration count at which the search gave up.
        iterations: usize,
    },
    /// The wall-clock deadline ([`SearchConfig::deadline`]) expired at
    /// some depth — distinct from [`Exhausted`]: the node budget may
    /// have been plentiful, the clock was not.
    ///
    /// [`Exhausted`]: Solvability::Exhausted
    TimedOut {
        /// The iteration count at which the deadline fired.
        iterations: usize,
    },
}

impl Solvability {
    /// Whether a witnessing map was found.
    pub fn is_solvable(&self) -> bool {
        matches!(self, Solvability::Solvable { .. })
    }

    /// A short machine-readable name of the verdict.
    pub fn verdict_name(&self) -> &'static str {
        match self {
            Solvability::Solvable { .. } => "solvable",
            Solvability::NoMapUpTo { .. } => "no-map",
            Solvability::Exhausted { .. } => "exhausted",
            Solvability::TimedOut { .. } => "timed-out",
        }
    }
}

/// Builds the domain `R_A^ℓ(I)`: the affine task applied `ℓ` times to the
/// task's input complex.
///
/// Each application runs through the parallel subdivision engine
/// (`subdivide_patterned`), fanning out over `act_topology::
/// subdivision_threads()` workers with a deterministic merge — the domain
/// is identical for every thread count (`RAYON_NUM_THREADS=1` forces the
/// serial build).
pub fn affine_domain(task: &AffineTask, inputs: &Complex, iterations: usize) -> Complex {
    assert!(iterations >= 1, "at least one iteration");
    let mut c = inputs.clone();
    for _ in 0..iterations {
        c = task.apply_to(&c);
    }
    c
}

/// Pluggable persistence behind a [`DomainCache`]: load and store single
/// tower levels `R_A^ℓ(I)` addressed by the content hashes of the affine
/// complex and the input complex.
///
/// The service layer implements this on its content-addressed store so a
/// restarted server (or a cold `fact-cli solve --store` run) reloads
/// towers instead of resubdividing. Implementations own durability and
/// corruption handling; a `load_level` returning `None` simply means "not
/// available — build it", and the cache re-validates whatever is returned
/// before trusting it.
pub trait TowerPersistence: Send + Sync {
    /// The persisted level `level` (1-based) of the tower for
    /// `(affine_hash, inputs_hash)`, or `None` on any miss.
    fn load_level(&self, affine_hash: u128, inputs_hash: u128, level: usize) -> Option<Complex>;

    /// Persists level `level` (1-based) of the tower. Failures are the
    /// implementation's to swallow — persistence is an accelerator, never
    /// a correctness dependency.
    fn store_level(&self, affine_hash: u128, inputs_hash: u128, level: usize, domain: &Complex);
}

/// Process-global count of towers evicted from [`DomainCache`]s (the
/// bounded per-cache LRU overflowed). Pairs with the `domain.cache.evict`
/// event, which carries the evicted tower's depth.
pub static DOMAIN_CACHE_EVICTIONS: act_obs::Counter = act_obs::Counter::new("domain.cache.evict");

/// Process-global count of domain-cache orbit hits: queries whose tower
/// was obtained by color-permuting a resident tower of the same symmetry
/// class instead of subdividing from scratch. Pairs with the
/// `domain.cache.orbit_hit` event.
pub static DOMAIN_CACHE_ORBIT_HITS: act_obs::Counter =
    act_obs::Counter::new("domain.cache.orbit_hit");

/// Towers a [`DomainCache`] keeps before evicting the least recently used.
const DEFAULT_TOWER_CAPACITY: usize = 4;

/// How a [`DomainCache`] runs the subdivision rounds that build new tower
/// levels. Both strategies produce byte-identical complexes; the knob
/// exists so the campaign layer can run one solver per strategy and assert
/// verdict parity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DomainExpansion {
    /// [`AffineTask::apply_to`]: every facet of the previous level is
    /// expanded directly.
    Direct,
    /// [`AffineTask::apply_to_shared`] (the default): one representative
    /// facet per color-symmetry orbit of the previous level is expanded
    /// and the rest are transported — byte-identical output, fewer recipe
    /// expansions on symmetric levels.
    #[default]
    OrbitShared,
}

/// The canonical (symmetry-quotiented) identity of a tower: the content
/// hashes of the jointly canonicalized `(affine.complex(), inputs)` pair
/// and the permutation carrying this tower's frame onto the canonical
/// frame (see [`canonical_pair_hashes`]). Two queries differing only by a
/// color permutation share one canonical key.
#[derive(Clone, Debug)]
struct CanonKey {
    affine: u128,
    inputs: u128,
    to_canonical: ColorPerm,
}

/// One cached tower `R_A^1(I) ⊆ … ⊆ R_A^ℓ(I)` and the key it serves.
#[derive(Clone, Debug)]
struct Tower {
    /// Content hash of the affine task's complex.
    affine_hash: u128,
    /// Content hash of the input complex.
    inputs_hash: u128,
    /// The last `(affine.complex(), inputs)` pair that resolved to this
    /// tower — kept for the `Arc`-identity fast path that skips
    /// re-hashing on repeated queries with the same representation.
    affine_src: Complex,
    /// The input complex the tower is built over.
    inputs: Complex,
    /// `levels[ℓ - 1] = R_A^ℓ(I)`.
    levels: Vec<Complex>,
    /// LRU stamp: the cache clock at the last query.
    stamp: u64,
    /// Lazily computed canonical identity — `None` until an orbit probe
    /// or a persistence round first needs it.
    canon: Option<CanonKey>,
}

impl Tower {
    /// The canonical key, computed on first use and memoized. The joint
    /// canonicalization enumerates `S_n` (guarded by
    /// [`SYMMETRY_MAX_DEGREE`]), so callers only reach for this when a
    /// cross-frame probe or a persistence round actually needs it.
    fn canon_key(&mut self) -> &CanonKey {
        if self.canon.is_none() {
            let (affine, inputs, to_canonical) =
                canonical_pair_hashes(&self.affine_src, &self.inputs);
            self.canon = Some(CanonKey {
                affine,
                inputs,
                to_canonical,
            });
        }
        self.canon.as_ref().expect("just computed")
    }
}

/// An incrementally maintained set of domain towers
/// `R_A^1(I) ⊆ … ⊆ R_A^ℓ(I)`, keyed by content hash.
///
/// [`affine_domain`] rebuilds from scratch on every call, so a pipeline
/// that tries `ℓ = 1, …, L` pays `1 + 2 + ⋯ + L` subdivision rounds — and
/// each round is the dominant cost at depth. The cache keeps every level
/// built so far and extends a tower by exactly **one** `apply_to` per new
/// level (asserted against [`act_affine::APPLY_CALLS`] by the regression
/// suite), turning the pipeline's domain cost linear in `L`.
///
/// Towers are keyed by the 128-bit content hashes of
/// `(affine.complex(), inputs)` — an [`AffineTask`] is fully determined by
/// its complex — with an `Arc`-identity fast path so steady-state queries
/// never rehash or deep-compare. A query that matches no resident key but
/// is a **color permutation** of a resident tower still hits: the towers'
/// canonical pair hashes ([`canonical_pair_hashes`], lazily memoized per
/// tower) identify the symmetry class, and the resident levels are
/// transported into the query's frame with [`permute_complex`] — counted
/// by [`DOMAIN_CACHE_ORBIT_HITS`] and the `domain.cache.orbit_hit` event.
/// A bounded LRU (default 4 towers) keeps alternating workloads from
/// thrashing: switching keys retains the previous tower, and overflow
/// evicts the least recently used with a `domain.cache.evict` event
/// instead of dropping silently.
///
/// With [`DomainCache::set_persistence`], missing levels are first sought
/// in a [`TowerPersistence`] store (zero `apply_to` on a warm restart) and
/// freshly built levels are written back — keyed and stored in the
/// *canonical* frame, so all members of a symmetry class of queries share
/// one persisted tower. Levels built or reloaded in the query's own frame
/// are structurally equal (`==`) to the from-scratch [`affine_domain`]
/// builds thanks to the subdivision engine's deterministic interning;
/// orbit-transported levels are color-consistent isomorphs
/// ([`Complex::same_complex`]) anchored at a byte-identical base, which
/// preserves every verdict (and the validity, though not necessarily the
/// numbering, of witnessing maps).
///
/// # Examples
///
/// ```
/// use act_adversary::AgreementFunction;
/// use act_topology::Complex;
/// use fact::{affine_domain, DomainCache};
///
/// let alpha = AgreementFunction::k_concurrency(2, 2);
/// let affine = act_affine::fair_affine_task(&alpha);
/// let inputs = Complex::standard(2);
/// let mut cache = DomainCache::new();
/// let d2 = cache.domain(&affine, &inputs, 2).clone(); // builds levels 1, 2
/// let d3 = cache.domain(&affine, &inputs, 3).clone(); // ONE more apply_to
/// assert_eq!(d2, affine_domain(&affine, &inputs, 2));
/// assert_eq!(d3, affine_domain(&affine, &inputs, 3));
/// assert_eq!(cache.cached_levels(), 3);
/// ```
#[derive(Clone)]
pub struct DomainCache {
    towers: Vec<Tower>,
    capacity: usize,
    clock: u64,
    persistence: Option<std::sync::Arc<dyn TowerPersistence>>,
    expansion: DomainExpansion,
}

impl std::fmt::Debug for DomainCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainCache")
            .field("towers", &self.towers)
            .field("capacity", &self.capacity)
            .field("clock", &self.clock)
            .field("persistent", &self.persistence.is_some())
            .field("expansion", &self.expansion)
            .finish()
    }
}

impl Default for DomainCache {
    fn default() -> DomainCache {
        DomainCache::new()
    }
}

impl DomainCache {
    /// An empty cache with the default tower capacity.
    pub fn new() -> DomainCache {
        DomainCache::with_capacity(DEFAULT_TOWER_CAPACITY)
    }

    /// An empty cache holding at most `capacity` towers (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> DomainCache {
        DomainCache {
            towers: Vec::new(),
            capacity: capacity.max(1),
            clock: 0,
            persistence: None,
            expansion: DomainExpansion::default(),
        }
    }

    /// Overrides the subdivision strategy for freshly built levels (see
    /// [`DomainExpansion`]). Returns `self` for builder-style
    /// construction.
    pub fn with_expansion(mut self, expansion: DomainExpansion) -> DomainCache {
        self.expansion = expansion;
        self
    }

    /// Overrides the subdivision strategy (see [`Self::with_expansion`]).
    pub fn set_expansion(&mut self, expansion: DomainExpansion) {
        self.expansion = expansion;
    }

    /// The subdivision strategy used for freshly built levels.
    pub fn expansion(&self) -> DomainExpansion {
        self.expansion
    }

    /// Attaches a persistence backend: missing tower levels are loaded
    /// from it before being built, and freshly built levels are written
    /// back. Returns `self` for builder-style construction.
    pub fn with_persistence(mut self, p: std::sync::Arc<dyn TowerPersistence>) -> DomainCache {
        self.set_persistence(p);
        self
    }

    /// Attaches a persistence backend (see [`Self::with_persistence`]).
    pub fn set_persistence(&mut self, p: std::sync::Arc<dyn TowerPersistence>) {
        self.persistence = Some(p);
    }

    /// How many levels of the *most recently queried* tower are cached.
    pub fn cached_levels(&self) -> usize {
        self.mru().map_or(0, |t| t.levels.len())
    }

    /// How many towers are currently resident.
    pub fn resident_towers(&self) -> usize {
        self.towers.len()
    }

    fn mru(&self) -> Option<&Tower> {
        self.towers.iter().max_by_key(|t| t.stamp)
    }

    fn mru_mut(&mut self) -> Option<&mut Tower> {
        self.towers.iter_mut().max_by_key(|t| t.stamp)
    }

    /// The domain `R_A^ℓ(I)`, reusing every previously built level of the
    /// matching tower and running at most `ℓ − cached` new subdivision
    /// rounds — fewer when a persistence backend already holds them.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn domain(&mut self, affine: &AffineTask, inputs: &Complex, iterations: usize) -> &Complex {
        assert!(iterations >= 1, "at least one iteration");
        let idx = self.resolve_tower(affine, inputs);
        let persistence = self.persistence.clone();
        let expansion = self.expansion;
        let tower = &mut self.towers[idx];
        // Persistence is keyed by the *canonical* (symmetry-quotiented)
        // pair hashes, so color-permuted queries load and store the same
        // entries; levels are persisted in the canonical frame and
        // permuted into the tower's frame on load. For a same-frame
        // restart the round trip is byte-identical (`permute_complex`
        // round-trips exactly).
        let store_key = persistence.as_ref().map(|_| tower.canon_key().clone());
        // Self-healing: a poisoned tower level (empty, or a level count
        // that does not strictly grow — e.g. a worker died mid-build in a
        // previous use) is detected and the tower rebuilt from the last
        // sound level, instead of serving a corrupt domain.
        if let Some(bad) = first_invalid_level(&tower.levels, inputs) {
            if act_obs::enabled() {
                act_obs::event("solver.cache_rebuilt")
                    .u64("level", bad as u64)
                    .u64("cached", tower.levels.len() as u64)
                    .emit();
            }
            tower.levels.truncate(bad - 1);
        }
        while tower.levels.len() < iterations {
            let level = tower.levels.len() + 1;
            let next = {
                let prev = tower.levels.last().unwrap_or(inputs);
                let loaded = store_key
                    .as_ref()
                    .zip(persistence.as_ref())
                    .and_then(|(k, p)| {
                        let stored = p.load_level(k.affine, k.inputs, level)?;
                        Some(from_canonical_frame(stored, &k.to_canonical))
                    })
                    .filter(|c| loaded_level_is_sound(c, prev, inputs));
                match loaded {
                    Some(c) => c,
                    None => {
                        let built = match expansion {
                            DomainExpansion::Direct => affine.apply_to(prev),
                            DomainExpansion::OrbitShared => affine.apply_to_shared(prev),
                        };
                        if let Some((k, p)) = store_key.as_ref().zip(persistence.as_ref()) {
                            let canonical = to_canonical_frame(&built, &k.to_canonical);
                            p.store_level(k.affine, k.inputs, level, &canonical);
                        }
                        built
                    }
                }
            };
            tower.levels.push(next);
        }
        &tower.levels[iterations - 1]
    }

    /// Finds (or creates) the tower for `(affine, inputs)` and marks it
    /// most recently used. Pointer-identical representations hit without
    /// hashing; structurally equal complexes built independently share a
    /// tower via the content hashes; and a query that is a *color
    /// permutation* of a resident tower hits via the canonical pair
    /// hashes — its levels are transported into the query's frame with
    /// [`permute_complex`] instead of being rebuilt (an **orbit hit**,
    /// counted by [`DOMAIN_CACHE_ORBIT_HITS`]).
    ///
    /// A transported tower's base is byte-identical to the query inputs
    /// (joint canonicalization pins it), so carrier semantics — and with
    /// them every verdict — are exact; the interior levels are
    /// color-consistent isomorphs (`same_complex`) of what a from-scratch
    /// build would produce, which can renumber vertices and hence relabel
    /// (but never invalidate) a witnessing map.
    fn resolve_tower(&mut self, affine: &AffineTask, inputs: &Complex) -> usize {
        self.clock += 1;
        let clock = self.clock;
        if let Some(i) = self.towers.iter().position(|t| {
            t.affine_src.same_representation(affine.complex())
                && t.inputs.same_representation(inputs)
        }) {
            self.towers[i].stamp = clock;
            return i;
        }
        let affine_hash = affine.complex().content_hash();
        let inputs_hash = inputs.content_hash();
        if let Some(i) = self
            .towers
            .iter()
            .position(|t| t.affine_hash == affine_hash && t.inputs_hash == inputs_hash)
        {
            let t = &mut self.towers[i];
            // Re-point the identity memo at the representation we just
            // saw, so the next query with it takes the fast path.
            t.affine_src = affine.complex().clone();
            t.inputs = inputs.clone();
            t.stamp = clock;
            return i;
        }
        // Orbit probe: only pay for joint canonicalization when at least
        // one resident tower could possibly be a color-permuted match.
        let n = inputs.num_processes();
        let mut canon = None;
        if n <= SYMMETRY_MAX_DEGREE
            && self
                .towers
                .iter()
                .any(|t| t.inputs.num_processes() == n && !t.levels.is_empty())
        {
            let (qa, qi, to_canonical) = canonical_pair_hashes(affine.complex(), inputs);
            let query_canon = CanonKey {
                affine: qa,
                inputs: qi,
                to_canonical,
            };
            for i in 0..self.towers.len() {
                if self.towers[i].inputs.num_processes() != n || self.towers[i].levels.is_empty() {
                    continue;
                }
                let tc = self.towers[i].canon_key();
                if tc.affine != query_canon.affine || tc.inputs != query_canon.inputs {
                    continue;
                }
                // query = π · tower with π = σ_q⁻¹ ∘ σ_t (both sides land
                // on the same canonical frame).
                let to_query = query_canon.to_canonical.inverse().compose(&tc.to_canonical);
                let levels: Vec<Complex> = self.towers[i]
                    .levels
                    .iter()
                    .map(|l| permute_complex(l, &to_query))
                    .collect();
                debug_assert!(
                    levels.iter().all(|l| *l.base() == *inputs),
                    "a transported tower is anchored at the query inputs"
                );
                DOMAIN_CACHE_ORBIT_HITS.add(1);
                if act_obs::enabled() {
                    act_obs::event("domain.cache.orbit_hit")
                        .u64("levels", levels.len() as u64)
                        .u64("resident", self.towers.len() as u64)
                        .u64("affine_hash", affine_hash as u64)
                        .u64("inputs_hash", inputs_hash as u64)
                        .emit();
                }
                return self.push_tower(Tower {
                    affine_hash,
                    inputs_hash,
                    affine_src: affine.complex().clone(),
                    inputs: inputs.clone(),
                    levels,
                    stamp: clock,
                    canon: Some(query_canon),
                });
            }
            // No orbit match: keep the canonical key we just paid for so
            // a persistence round (or a later probe) does not recompute.
            canon = Some(query_canon);
        }
        self.push_tower(Tower {
            affine_hash,
            inputs_hash,
            affine_src: affine.complex().clone(),
            inputs: inputs.clone(),
            levels: Vec::new(),
            stamp: clock,
            canon,
        })
    }

    /// Pushes a tower, evicting the least recently used one first when
    /// the cache is at capacity. Returns the new tower's index.
    fn push_tower(&mut self, tower: Tower) -> usize {
        if self.towers.len() >= self.capacity {
            let lru = self
                .towers
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.stamp)
                .map(|(i, _)| i)
                .expect("capacity >= 1 and the cache is full");
            let evicted = self.towers.swap_remove(lru);
            DOMAIN_CACHE_EVICTIONS.add(1);
            if act_obs::enabled() {
                act_obs::event("domain.cache.evict")
                    .u64("levels", evicted.levels.len() as u64)
                    .u64("resident", self.towers.len() as u64)
                    .u64("affine_hash", evicted.affine_hash as u64)
                    .u64("inputs_hash", evicted.inputs_hash as u64)
                    .emit();
            }
        }
        self.towers.push(tower);
        self.towers.len() - 1
    }

    /// Chaos hook: corrupts tower level `level` (1-based) of the most
    /// recently queried tower in place, returning whether the level
    /// existed. The next [`Self::domain`] call must detect the poison and
    /// rebuild from the preceding sound level — exercised by the chaos
    /// suite.
    pub fn poison_level(&mut self, level: usize) -> bool {
        let Some(tower) = self.mru_mut() else {
            return false;
        };
        match level.checked_sub(1).and_then(|i| tower.levels.get_mut(i)) {
            Some(slot) => {
                *slot = Complex::standard(1);
                true
            }
            None => false,
        }
    }
}

/// A level as persisted: pushed through the tower's canonicalizing
/// permutation so color-permuted queries address one entry. The identity
/// (the common case for already-canonical frames) is free.
fn to_canonical_frame(c: &Complex, to_canonical: &ColorPerm) -> Complex {
    if to_canonical.is_identity() {
        c.clone()
    } else {
        permute_complex(c, to_canonical)
    }
}

/// A persisted (canonical-frame) level pulled back into the tower's own
/// frame — the inverse of [`to_canonical_frame`], so a same-frame round
/// trip is byte-identical.
fn from_canonical_frame(c: Complex, to_canonical: &ColorPerm) -> Complex {
    if to_canonical.is_identity() {
        c
    } else {
        permute_complex(&c, &to_canonical.inverse())
    }
}

/// The first (1-based) tower level that is structurally unsound: empty,
/// or whose subdivision level does not strictly exceed its predecessor's.
/// `None` when the whole tower is sound.
fn first_invalid_level(levels: &[Complex], inputs: &Complex) -> Option<usize> {
    let mut prev = inputs.level();
    for (i, c) in levels.iter().enumerate() {
        if c.facet_count() == 0 || c.level() <= prev {
            return Some(i + 1);
        }
        prev = c.level();
    }
    None
}

/// Sanity checks on a level loaded from persistence before it is trusted
/// as part of a tower: non-void, strictly deeper than its predecessor,
/// same process count, and anchored at the same base complex. The store's
/// checksums make corruption here unlikely; this is defense in depth so a
/// bad entry degrades to a rebuild, never to a wrong domain.
fn loaded_level_is_sound(c: &Complex, prev: &Complex, inputs: &Complex) -> bool {
    c.facet_count() > 0
        && c.level() > prev.level()
        && c.num_processes() == inputs.num_processes()
        && *c.base() == *inputs
}

/// [`affine_domain`] through a [`DomainCache`]: identical result, but
/// repeated calls at growing `ℓ` only pay for the new levels.
pub fn affine_domain_cached(
    cache: &mut DomainCache,
    task: &AffineTask,
    inputs: &Complex,
    iterations: usize,
) -> Complex {
    cache.domain(task, inputs, iterations).clone()
}

/// Decides solvability of `task` in the fair model captured by `affine`
/// (its `R_A`), trying `ℓ = 1, …, max_iterations` and bounding each map
/// search by `max_nodes`.
pub fn solve_in_model(
    task: &dyn Task,
    affine: &AffineTask,
    max_iterations: usize,
    max_nodes: usize,
) -> Solvability {
    solve_in_model_with_config(task, affine, max_iterations, &SearchConfig::new(max_nodes))
}

/// [`solve_in_model`] with explicit engine knobs ([`SearchConfig`]):
/// thread count and the optional wall-clock deadline, which surfaces as
/// [`Solvability::TimedOut`].
pub fn solve_in_model_with_config(
    task: &dyn Task,
    affine: &AffineTask,
    max_iterations: usize,
    config: &SearchConfig,
) -> Solvability {
    // One incremental tower for the whole deepening loop: depth ℓ costs
    // one apply_to, not ℓ.
    let mut cache = DomainCache::new();
    for iterations in 1..=max_iterations {
        let span = act_obs::span("solver.iteration");
        let domain = cache.domain(affine, task.inputs(), iterations).clone();
        let (result, stats) = find_carried_map_with_config(task, &domain, config);
        if act_obs::enabled() {
            span.finish()
                .u64("iterations", iterations as u64)
                .u64("domain_facets", domain.facet_count() as u64)
                .u64("domain_vertices", domain.used_vertices().len() as u64)
                .u64("nodes", stats.nodes as u64)
                .str("verdict", result.verdict_name())
                .emit();
        }
        match result {
            SearchResult::Found(map) => return Solvability::Solvable { iterations, map },
            SearchResult::Unsolvable => continue,
            SearchResult::Exhausted => return Solvability::Exhausted { iterations },
            SearchResult::TimedOut => return Solvability::TimedOut { iterations },
        }
    }
    Solvability::NoMapUpTo { max_iterations }
}

/// Convenience: the `R_A` of an agreement function together with
/// [`solve_in_model`].
pub fn solve_in_fair_model(
    task: &dyn Task,
    alpha: &AgreementFunction,
    max_iterations: usize,
    max_nodes: usize,
) -> Solvability {
    let affine = act_affine::fair_affine_task(alpha);
    solve_in_model(task, &affine, max_iterations, max_nodes)
}

/// Decides `k`-set consensus in the model captured by `affine`, on
/// rainbow-restricted inputs, routing the parity-type case through the
/// Sperner certificate: when `k = n − 1` and the domain is a genuine
/// subdivision of the input simplex (the wait-free case — `R_A = Chr² s`),
/// unsolvability follows from Sperner's lemma rather than search, which
/// would otherwise have to enumerate an astronomic space.
pub fn set_consensus_verdict(
    task: &act_tasks::SetConsensus,
    affine: &AffineTask,
    iterations: usize,
    max_nodes: usize,
) -> Solvability {
    set_consensus_verdict_cached(&mut DomainCache::new(), task, affine, iterations, max_nodes)
}

/// [`set_consensus_verdict`] through a caller-owned [`DomainCache`], so
/// sweeps over `ℓ` (or over `k` in one model) reuse the domain tower
/// instead of resubdividing from scratch each time.
pub fn set_consensus_verdict_cached(
    cache: &mut DomainCache,
    task: &act_tasks::SetConsensus,
    affine: &AffineTask,
    iterations: usize,
    max_nodes: usize,
) -> Solvability {
    set_consensus_verdict_with_config(
        cache,
        task,
        affine,
        iterations,
        &SearchConfig::new(max_nodes),
    )
}

/// [`set_consensus_verdict_cached`] with explicit engine knobs
/// ([`SearchConfig`]): thread count and the optional wall-clock
/// deadline, which surfaces as [`Solvability::TimedOut`].
pub fn set_consensus_verdict_with_config(
    cache: &mut DomainCache,
    task: &act_tasks::SetConsensus,
    affine: &AffineTask,
    iterations: usize,
    config: &SearchConfig,
) -> Solvability {
    let n = task.num_processes();
    let inputs = task.rainbow_inputs();
    let domain = cache.domain(affine, &inputs, iterations).clone();
    let span = act_obs::span("solver.set_consensus");
    if task.k() == n - 1 && act_tasks::is_subdivided_simplex(&domain) {
        // Any carried map would be a Sperner labeling with no rainbow
        // facet; the lemma forces an odd number of them.
        if act_tasks::sperner_certificate(&domain) {
            if act_obs::enabled() {
                span.finish()
                    .str("route", "sperner")
                    .str("verdict", "no-map")
                    .u64("k", task.k() as u64)
                    .u64("domain_facets", domain.facet_count() as u64)
                    .emit();
            }
            return Solvability::NoMapUpTo {
                max_iterations: iterations,
            };
        }
    }
    let (result, stats) = find_carried_map_with_config(task, &domain, config);
    let verdict = match result {
        SearchResult::Found(map) => Solvability::Solvable { iterations, map },
        SearchResult::Unsolvable => Solvability::NoMapUpTo {
            max_iterations: iterations,
        },
        SearchResult::Exhausted => Solvability::Exhausted { iterations },
        SearchResult::TimedOut => Solvability::TimedOut { iterations },
    };
    if act_obs::enabled() {
        span.finish()
            .str("route", "search")
            .str("verdict", verdict.verdict_name())
            .u64("k", task.k() as u64)
            .u64("domain_facets", domain.facet_count() as u64)
            .u64("nodes", stats.nodes as u64)
            .emit();
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::{zoo, Adversary};
    use act_tasks::{consensus, find_carried_map, verify_carried_map, SetConsensus};
    use act_topology::ColorSet;

    #[test]
    fn set_consensus_at_model_power_is_solvable_in_one_iteration() {
        // k = setcon(A): the µ_Q construction shows a 1-iteration map
        // exists; the solver must find one. (Rainbow-restricted inputs to
        // keep the search small; solvability on full inputs is exercised
        // by the integration tests.)
        let cases: Vec<(AgreementFunction, usize)> = vec![
            (AgreementFunction::k_concurrency(3, 1), 1),
            (AgreementFunction::k_concurrency(3, 2), 2),
            (
                AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
                2,
            ),
            (
                AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
                2,
            ),
        ];
        for (alpha, power) in cases {
            let t = SetConsensus::new(3, power, &[0, 1, 2]);
            let inputs = rainbow_inputs(&t);
            let affine = act_affine::fair_affine_task(&alpha);
            let domain = affine_domain(&affine, &inputs, 1);
            let result = find_carried_map(&t, &domain, 2_000_000);
            let map = result
                .into_map()
                .unwrap_or_else(|| panic!("{}-set consensus solvable (α = {power})", power));
            assert!(verify_carried_map(&t, &domain, &map));
        }
    }

    #[test]
    fn consensus_below_model_power_is_unsolvable() {
        // k = 1 < setcon(A) = 2: no map at depths 1..2.
        let models = vec![
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
        ];
        for alpha in models {
            let t = consensus(3, &[0, 1, 2]);
            let inputs = rainbow_inputs(&t);
            let affine = act_affine::fair_affine_task(&alpha);
            for depth in 1..=2 {
                let domain = affine_domain(&affine, &inputs, depth);
                let result = find_carried_map(&t, &domain, 2_000_000);
                assert!(
                    result.is_unsolvable(),
                    "consensus must be unsolvable at depth {depth}"
                );
            }
        }
    }

    #[test]
    fn pipeline_reports_depth() {
        let alpha = AgreementFunction::k_concurrency(2, 2); // wait-free, 2 procs
        let t = SetConsensus::new(2, 2, &[0, 1, 2]);
        let verdict = solve_in_fair_model(&t, &alpha, 2, 1_000_000);
        match verdict {
            Solvability::Solvable { iterations, .. } => assert_eq!(iterations, 1),
            other => panic!("expected solvable, got {other:?}"),
        }
    }

    /// The sub-complex of the inputs where process i proposes value i.
    fn rainbow_inputs(t: &SetConsensus) -> Complex {
        let i = t.inputs();
        let rainbow = i
            .facets()
            .iter()
            .find(|f| {
                f.vertices()
                    .iter()
                    .all(|&v| i.vertex(v).label == i.color(v).index() as u64)
            })
            .expect("rainbow facet exists")
            .clone();
        i.sub_complex(vec![rainbow])
    }

    #[test]
    fn exhausted_and_sperner_routes_emit_matching_telemetry() {
        // Other tests in this binary may run concurrently and emit their
        // own events into the process-global sink, so assert on the
        // presence and shape of the events this test provokes rather
        // than on exact totals.
        let sink = act_obs::MemorySink::shared();
        act_obs::install(sink.clone());
        let nodes_before = act_tasks::SEARCH_NODES.get();

        // A zero-node budget exhausts immediately: 2-set consensus under
        // 2-concurrency is solvable but only by branching, so the search
        // must charge at least one node.
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let affine = act_affine::fair_affine_task(&AgreementFunction::k_concurrency(3, 2));
        let verdict = solve_in_model(&t, &affine, 3, 0);
        assert!(
            matches!(verdict, Solvability::Exhausted { iterations: 1 }),
            "zero budget must exhaust at the first depth, got {verdict:?}"
        );
        assert!(
            act_tasks::SEARCH_NODES.get() > nodes_before,
            "an exhausted search still charges nodes to the counter"
        );

        // The wait-free (n−1)-set consensus case routes through the
        // Sperner certificate — search would have to enumerate an
        // astronomic space.
        let wf = AgreementFunction::of_adversary(&Adversary::wait_free(3));
        let r_a = act_affine::fair_affine_task(&wf);
        let verdict = set_consensus_verdict(&t, &r_a, 1, 3_000_000);
        assert!(matches!(verdict, Solvability::NoMapUpTo { .. }));

        act_obs::uninstall();
        let lines = sink.lines();
        let exhausted: Vec<&String> = lines
            .iter()
            .filter(|l| {
                l.contains("\"ev\":\"solver.iteration\"") && l.contains("\"verdict\":\"exhausted\"")
            })
            .collect();
        assert_eq!(exhausted.len(), 1, "one exhausted iteration event");
        assert!(exhausted[0].contains("\"iterations\":1"));
        let sperner: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"ev\":\"solver.set_consensus\""))
            .collect();
        assert_eq!(sperner.len(), 1, "one set-consensus event");
        assert!(
            sperner[0].contains("\"route\":\"sperner\"")
                && sperner[0].contains("\"verdict\":\"no-map\""),
            "the wait-free case must report the Sperner route: {}",
            sperner[0]
        );
    }

    #[test]
    fn domain_cache_matches_from_scratch_builds() {
        // The incremental tower must be structurally equal (`==`, not just
        // same_complex) to affine_domain's from-scratch rebuilds at every
        // level, in any query order, and invalidate on key change.
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let affine = act_affine::fair_affine_task(&alpha);
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let inputs = rainbow_inputs(&t);

        let mut cache = DomainCache::new();
        for level in 1..=3 {
            let cached = cache.domain(&affine, &inputs, level).clone();
            assert_eq!(cached, affine_domain(&affine, &inputs, level));
            assert_eq!(cache.cached_levels(), level);
        }
        // Re-querying a lower level reuses the tower without rebuilding.
        let lvl2 = cache.domain(&affine, &inputs, 2).clone();
        assert_eq!(cache.cached_levels(), 3);
        assert_eq!(lvl2, affine_domain(&affine, &inputs, 2));

        // A different input complex invalidates the tower.
        let full = t.inputs().clone();
        let fresh = cache.domain(&affine, &full, 1).clone();
        assert_eq!(cache.cached_levels(), 1);
        assert_eq!(fresh, affine_domain(&affine, &full, 1));

        // And the cached set-consensus verdict agrees with the uncached
        // route on a solvable case.
        let mut cache = DomainCache::new();
        let cached = set_consensus_verdict_cached(&mut cache, &t, &affine, 1, 2_000_000);
        let direct = set_consensus_verdict(&t, &affine, 1, 2_000_000);
        assert!(cached.is_solvable() && direct.is_solvable());
    }

    #[test]
    fn alternating_keys_keep_both_towers_resident() {
        // The old single-key cache thrashed to zero hits when two models
        // (or input complexes) alternated. The LRU must retain both.
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let affine = act_affine::fair_affine_task(&alpha);
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let rainbow = rainbow_inputs(&t);
        let full = t.inputs().clone();

        let mut cache = DomainCache::new();
        cache.domain(&affine, &rainbow, 2);
        cache.domain(&affine, &full, 1);
        assert_eq!(cache.resident_towers(), 2);
        assert_eq!(cache.cached_levels(), 1, "MRU tower is the `full` one");
        // Switching back does not rebuild: the rainbow tower still holds
        // both of its levels.
        cache.domain(&affine, &rainbow, 1);
        assert_eq!(cache.cached_levels(), 2);
        assert_eq!(cache.resident_towers(), 2);

        // Structurally equal inputs built independently (different Arcs)
        // resolve to the same tower via the content hash.
        let rainbow2 = rainbow_inputs(&t);
        assert!(!rainbow.same_representation(&rainbow2));
        cache.domain(&affine, &rainbow2, 2);
        assert_eq!(cache.resident_towers(), 2);
        assert_eq!(cache.cached_levels(), 2);
    }

    #[test]
    fn overflowing_the_tower_capacity_evicts_lru_with_an_event() {
        let sink = act_obs::MemorySink::shared();
        act_obs::install(sink.clone());
        let evictions_before = DOMAIN_CACHE_EVICTIONS.get();

        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let affine = act_affine::fair_affine_task(&alpha);
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let rainbow = rainbow_inputs(&t);
        let full = t.inputs().clone();

        let mut cache = DomainCache::with_capacity(1);
        cache.domain(&affine, &rainbow, 1);
        cache.domain(&affine, &full, 1); // evicts the rainbow tower
        assert_eq!(cache.resident_towers(), 1);
        assert_eq!(DOMAIN_CACHE_EVICTIONS.get() - evictions_before, 1);

        act_obs::uninstall();
        let evicts: Vec<String> = sink
            .lines()
            .iter()
            .filter(|l| l.contains("\"ev\":\"domain.cache.evict\""))
            .cloned()
            .collect();
        assert!(
            evicts.iter().any(|l| l.contains("\"levels\":1")),
            "eviction event carries the dropped tower depth: {evicts:?}"
        );
    }

    #[test]
    fn poisoned_cache_levels_are_rebuilt() {
        let alpha = AgreementFunction::k_concurrency(2, 2);
        let affine = act_affine::fair_affine_task(&alpha);
        let inputs = Complex::standard(2);
        let mut cache = DomainCache::new();
        let sound = cache.domain(&affine, &inputs, 3).clone();
        assert_eq!(cache.cached_levels(), 3);

        // Poison the middle level: the next query must detect it and
        // rebuild from level 1, serving a domain equal to the sound one.
        assert!(cache.poison_level(2));
        let healed = cache.domain(&affine, &inputs, 3).clone();
        assert_eq!(healed, sound, "rebuild restores the exact tower");
        assert_eq!(cache.cached_levels(), 3);

        // Poisoning the base level forces a full rebuild.
        assert!(cache.poison_level(1));
        let healed = cache.domain(&affine, &inputs, 2).clone();
        assert_eq!(healed, affine_domain(&affine, &inputs, 2));

        // Out-of-range levels are reported, not panicked on.
        assert!(!cache.poison_level(0));
        assert!(!cache.poison_level(99));
    }

    /// An in-memory [`TowerPersistence`] for exercising the canonical
    /// store keying without the service crate.
    #[derive(Default)]
    struct MapPersistence {
        entries: std::sync::Mutex<std::collections::HashMap<(u128, u128, usize), Complex>>,
        loads: std::sync::atomic::AtomicU64,
        stores: std::sync::atomic::AtomicU64,
    }

    impl MapPersistence {
        fn loads(&self) -> u64 {
            self.loads.load(std::sync::atomic::Ordering::SeqCst)
        }

        fn stores(&self) -> u64 {
            self.stores.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    impl TowerPersistence for MapPersistence {
        fn load_level(
            &self,
            affine_hash: u128,
            inputs_hash: u128,
            level: usize,
        ) -> Option<Complex> {
            let hit = self
                .entries
                .lock()
                .unwrap()
                .get(&(affine_hash, inputs_hash, level))
                .cloned();
            if hit.is_some() {
                self.loads.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            hit
        }

        fn store_level(
            &self,
            affine_hash: u128,
            inputs_hash: u128,
            level: usize,
            domain: &Complex,
        ) {
            self.stores
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.entries
                .lock()
                .unwrap()
                .insert((affine_hash, inputs_hash, level), domain.clone());
        }
    }

    /// The color-permuted image of a query: both the affine task and the
    /// inputs pushed through `π`, as a client with relabeled processes
    /// would pose it.
    fn permuted_query(
        affine: &AffineTask,
        inputs: &Complex,
        perm: &act_topology::ColorPerm,
    ) -> (AffineTask, Complex) {
        (
            AffineTask::new(
                format!("{}-permuted", affine.name()),
                act_topology::permute_complex(affine.complex(), perm),
            ),
            act_topology::permute_complex(inputs, perm),
        )
    }

    #[test]
    fn color_permuted_queries_share_a_tower_via_orbit_hit() {
        let alpha = AgreementFunction::k_concurrency(3, 2);
        let affine = act_affine::fair_affine_task(&alpha);
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let inputs = rainbow_inputs(&t);
        let perm = act_topology::ColorPerm::from_images(&[2, 0, 1]).unwrap();
        let (affine_p, inputs_p) = permuted_query(&affine, &inputs, &perm);

        // A test-local persistence backend doubles as a subdivision
        // detector: building a level stores it, an orbit hit stores
        // nothing. (Process-global counters race with concurrent tests.)
        let probe = std::sync::Arc::new(MapPersistence::default());
        let mut cache = DomainCache::new()
            .with_persistence(probe.clone() as std::sync::Arc<dyn TowerPersistence>);
        cache.domain(&affine, &inputs, 2);
        assert_eq!(probe.stores(), 2, "the first query builds both levels");
        let hits_before = DOMAIN_CACHE_ORBIT_HITS.get();
        let transported = cache.domain(&affine_p, &inputs_p, 2).clone();
        assert_eq!(
            probe.stores(),
            2,
            "an orbit hit costs zero subdivision rounds"
        );
        assert_eq!(probe.loads(), 0, "and zero persistence loads");
        assert!(DOMAIN_CACHE_ORBIT_HITS.get() > hits_before);
        assert_eq!(cache.resident_towers(), 2, "both frames stay resident");

        // The transported tower is anchored byte-identically at the
        // permuted inputs and is the same complex a direct build yields.
        let direct = affine_domain(&affine_p, &inputs_p, 2);
        assert_eq!(*transported.base(), inputs_p);
        assert_eq!(transported.facet_count(), direct.facet_count());
        assert!(transported.same_complex(&direct));

        // Once resident, the transported tower serves its frame via the
        // ordinary fast path — no second orbit hit.
        cache.domain(&affine_p, &inputs_p, 1);
        assert_eq!(DOMAIN_CACHE_ORBIT_HITS.get() - hits_before, 1);

        // Verdict parity across the frames: 2-set consensus under
        // 2-concurrency is solvable in either coloring.
        let direct_verdict = find_carried_map(&t, &affine_domain(&affine, &inputs, 1), 2_000_000);
        let t_p = SetConsensus::new(3, 2, &[0, 1, 2]);
        let transported_l1 = cache.domain(&affine_p, &inputs_p, 1).clone();
        let shared_verdict = find_carried_map(&t_p, &transported_l1, 2_000_000);
        assert_eq!(
            direct_verdict.into_map().is_some(),
            shared_verdict.into_map().is_some(),
            "orbit sharing never changes a verdict"
        );
    }

    #[test]
    fn persisted_towers_are_shared_across_color_permutations() {
        let alpha = AgreementFunction::k_concurrency(3, 2);
        let affine = act_affine::fair_affine_task(&alpha);
        let t = SetConsensus::new(3, 2, &[0, 1, 2]);
        let inputs = rainbow_inputs(&t);
        let persistence = std::sync::Arc::new(MapPersistence::default());

        // One lifetime builds and persists the tower in its own frame.
        {
            let mut warm = DomainCache::new()
                .with_persistence(persistence.clone() as std::sync::Arc<dyn TowerPersistence>);
            warm.domain(&affine, &inputs, 2);
        }
        assert_eq!(persistence.stores(), 2, "both levels persisted");

        // A cold process asking the *same* query reloads byte-identical
        // levels: the canonical frame round-trips exactly. A reload never
        // stores, so `stores()` staying put proves nothing was rebuilt.
        let mut same_frame = DomainCache::new()
            .with_persistence(persistence.clone() as std::sync::Arc<dyn TowerPersistence>);
        let reloaded = same_frame.domain(&affine, &inputs, 2).clone();
        assert_eq!(persistence.loads(), 2, "both levels reloaded");
        assert_eq!(persistence.stores(), 2, "nothing rebuilt or rewritten");
        assert_eq!(reloaded, affine_domain(&affine, &inputs, 2));

        // A cold process asking the color-PERMUTED query addresses the
        // same canonical entries: zero subdivision rounds there too.
        let perm = act_topology::ColorPerm::from_images(&[1, 2, 0]).unwrap();
        let (affine_p, inputs_p) = permuted_query(&affine, &inputs, &perm);
        let loads_before = persistence.loads();
        let mut permuted_frame = DomainCache::new()
            .with_persistence(persistence.clone() as std::sync::Arc<dyn TowerPersistence>);
        let transported = permuted_frame.domain(&affine_p, &inputs_p, 2).clone();
        assert_eq!(
            persistence.loads() - loads_before,
            2,
            "the permuted query is served from the shared persisted tower"
        );
        assert_eq!(*transported.base(), inputs_p);
        assert!(transported.same_complex(&affine_domain(&affine_p, &inputs_p, 2)));
        // No duplicate entries were written for the permuted frame.
        assert_eq!(persistence.stores(), 2);
    }

    #[test]
    fn direct_and_orbit_shared_expansion_agree_byte_for_byte() {
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let affine = act_affine::fair_affine_task(&alpha);
        let inputs = Complex::standard(3);
        let mut direct = DomainCache::new().with_expansion(DomainExpansion::Direct);
        let mut shared = DomainCache::new().with_expansion(DomainExpansion::OrbitShared);
        for level in 1..=2 {
            assert_eq!(
                direct.domain(&affine, &inputs, level),
                shared.domain(&affine, &inputs, level),
                "expansion strategies must be byte-identical at level {level}"
            );
        }
    }

    #[test]
    fn no_map_up_to_is_reported() {
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(2, 0));
        // 0-resilient 2 processes: setcon 1 — consensus IS solvable.
        let t = consensus(2, &[0, 1]);
        let verdict = solve_in_fair_model(&t, &alpha, 1, 1_000_000);
        assert!(verdict.is_solvable(), "consensus solvable 0-resiliently");
        let _ = ColorSet::full(2);
    }
}
