//! `fact` — a full reproduction of *An Asynchronous Computability Theorem
//! for Fair Adversaries* (Kuznetsov, Rieutord, He; PODC 2018).
//!
//! The paper proves that every *fair adversary* `A` is captured, for task
//! computability, by an *affine task* `R_A ⊆ Chr² s`: a task `T = (I,O,Δ)`
//! is solvable in the adversarial `A`-model iff for some `ℓ` there is a
//! chromatic simplicial map `φ : R_A^ℓ(I) → O` carried by `Δ` (the FACT,
//! Theorem 16). This crate assembles the whole pipeline:
//!
//! * adversaries, `setcon`, agreement functions, fairness —
//!   [`act_adversary`] (re-exported as [`adversary`]);
//! * chromatic complexes and subdivisions — [`act_topology`]
//!   (re-exported as [`topology`]);
//! * `Cont²`, critical simplices, concurrency maps and the construction
//!   of `R_A` — [`act_affine`] (re-exported as [`affine`]);
//! * the executable side: snapshot memory, Borowsky–Gafni immediate
//!   snapshot, schedulers, the IIS model — [`act_runtime`]
//!   (re-exported as [`runtime`]);
//! * **Algorithm 1** — solving `R_A` in the α-model
//!   ([`AlgorithmOneSystem`], Theorem 7);
//! * **`µ_Q` leader election** — [`LeaderMap`] (Properties 9, 10, 12);
//! * **the Section-6 simulation** — α-adaptive set consensus and atomic
//!   snapshots inside `R_A^*` ([`AdaptiveSetConsensus`],
//!   [`SnapshotSimulation`], Theorem 15);
//! * **the FACT pipeline** — [`solve_in_fair_model`] (Theorem 16),
//!   backed by the carried-map search of [`act_tasks`] (re-exported as
//!   [`tasks`]).
//!
//! # Quickstart
//!
//! ```
//! use fact::adversary::{Adversary, AgreementFunction};
//! use fact::affine::fair_affine_task;
//!
//! // A fair adversary and its affine task.
//! let a = Adversary::t_resilient(3, 1);
//! assert!(a.is_fair());
//! let alpha = AgreementFunction::of_adversary(&a);
//! let r_a = fair_affine_task(&alpha);
//! assert!(r_a.complex().facet_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm1;
mod error;
mod iterated;
mod leader;
mod protocol_complex;
mod report;
mod simulation;
mod solver;
mod spec;

pub use act_adversary as adversary;
pub use act_affine as affine;
pub use act_runtime as runtime;
pub use act_tasks as tasks;
pub use act_topology as topology;

pub use algorithm1::{outputs_to_simplex, AlgorithmOneOutput, AlgorithmOneSystem};
pub use error::FactError;
pub use iterated::{
    alpha_model_set_consensus, execute_affine_iterations, executed_set_consensus,
    object_model_set_consensus,
};
pub use leader::LeaderMap;
pub use protocol_complex::{explored_protocol_complex, sampled_protocol_complex, OutputSystem};
pub use report::{validate_report_json, RunReport, REPORT_SCHEMA_VERSION};
pub use simulation::{
    iteration_views, AdaptiveSetConsensus, AffineIteration, AffineRunGenerator, Decision,
    SnapshotSimulation,
};
pub use solver::{
    affine_domain, affine_domain_cached, set_consensus_verdict, set_consensus_verdict_cached,
    set_consensus_verdict_with_config, solve_in_fair_model, solve_in_model,
    solve_in_model_with_config, DomainCache, DomainExpansion, Solvability, TowerPersistence,
    DOMAIN_CACHE_EVICTIONS, DOMAIN_CACHE_ORBIT_HITS,
};
pub use spec::{ModelSpec, TaskSpec, MAX_PROCESSES};
