//! Typed errors for the FACT pipeline, surfaced as `fact-cli` exit
//! codes: `0` success, `1` runtime failure, `2` usage error, `3`
//! degraded run, `4` deadline expiry.

use act_runtime::ScheduleError;

/// An error of the FACT pipeline or its CLI. Each variant maps to a
/// distinct process exit code (see [`FactError::exit_code`]), so shell
/// pipelines and CI gates can react to *why* a run failed, not just
/// that it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FactError {
    /// The invocation itself was malformed (unknown command, bad flag,
    /// unparsable model spec). Exit code 2, usage is printed.
    Usage(String),
    /// The run failed at runtime (unreadable file, corrupt artifact,
    /// serialization failure). Exit code 1.
    Runtime(String),
    /// A schedule or trace referenced a process outside the system —
    /// the typed form of [`ScheduleError`]. Exit code 1.
    InvalidSchedule {
        /// Index into the schedule of the offending step.
        step: usize,
        /// The out-of-range process index the step named.
        process: usize,
        /// The system's process count.
        num_processes: usize,
    },
    /// The run completed, but in degraded mode: a parallel engine
    /// branch was lost to a caught panic and could not be retried to
    /// completion, so exhaustive claims are weakened. Exit code 3.
    Degraded(String),
    /// The wall-clock deadline expired before a verdict. Exit code 4.
    TimedOut {
        /// The iteration count at which the deadline fired.
        iterations: usize,
    },
}

impl FactError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            FactError::Runtime(_) | FactError::InvalidSchedule { .. } => 1,
            FactError::Usage(_) => 2,
            FactError::Degraded(_) => 3,
            FactError::TimedOut { .. } => 4,
        }
    }

    /// Whether this is a usage error (the CLI prints usage for these).
    pub fn is_usage(&self) -> bool {
        matches!(self, FactError::Usage(_))
    }
}

impl std::fmt::Display for FactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactError::Usage(msg) => write!(f, "{msg}"),
            FactError::Runtime(msg) => write!(f, "{msg}"),
            FactError::InvalidSchedule {
                step,
                process,
                num_processes,
            } => write!(
                f,
                "schedule step {step} names process {process}, \
                 but the system has only {num_processes} processes"
            ),
            FactError::Degraded(msg) => write!(f, "degraded run: {msg}"),
            FactError::TimedOut { iterations } => {
                write!(f, "deadline expired at iteration {iterations}")
            }
        }
    }
}

impl std::error::Error for FactError {}

impl From<String> for FactError {
    fn from(msg: String) -> FactError {
        FactError::Usage(msg)
    }
}

impl From<ScheduleError> for FactError {
    fn from(e: ScheduleError) -> FactError {
        FactError::InvalidSchedule {
            step: e.step,
            process: e.process.index(),
            num_processes: e.num_processes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        assert_eq!(FactError::Runtime("x".into()).exit_code(), 1);
        assert_eq!(
            FactError::InvalidSchedule {
                step: 0,
                process: 9,
                num_processes: 3
            }
            .exit_code(),
            1
        );
        assert_eq!(FactError::Usage("x".into()).exit_code(), 2);
        assert_eq!(FactError::Degraded("x".into()).exit_code(), 3);
        assert_eq!(FactError::TimedOut { iterations: 2 }.exit_code(), 4);
    }

    #[test]
    fn schedule_errors_convert_with_context() {
        let e = act_runtime::ScheduleError {
            step: 4,
            process: act_topology::ProcessId::new(7),
            num_processes: 3,
        };
        let fe: FactError = e.into();
        assert_eq!(
            fe,
            FactError::InvalidSchedule {
                step: 4,
                process: 7,
                num_processes: 3
            }
        );
        assert!(fe.to_string().contains("names process 7"));
        assert!(!fe.is_usage());
    }
}
