//! The α-adaptive leader-election map `µ_Q` on `R_A` (Section 6.2).
//!
//! Given the set `Q` of processes that may participate in an α-adaptive
//! set-consensus instance (and have not yet terminated the enclosing
//! simulation), `µ_Q` assigns to every vertex `v ∈ R_A` with `χ(v) ∈ Q` a
//! *leader* among `Q`:
//!
//! * if `v` observes a critical simplex whose `View1` touches `Q`
//!   (`δ_Q`): the smallest such critical `View1`;
//! * otherwise (`γ_Q`): the smallest observed `View1` touching `Q`;
//! * finally `min_Q`: the smallest `Q`-process of the selected view.
//!
//! Properties 9 (validity), 10 (agreement ≤ `α(carrier)`) and 12
//! (robustness: only `Q ∩ carrier(v, s)` matters) are verified by the
//! test-suite and exhaustively by the `exp_leader` bench.

use std::cell::RefCell;
use std::collections::HashMap;

use act_adversary::AgreementFunction;
use act_affine::CriticalAnalysis;
use act_topology::{ColorSet, Complex, ProcessId, Simplex, VertexId};

/// Evaluator of `µ_Q` over a fixed level-2 complex (an affine task `R_A`)
/// and agreement function.
pub struct LeaderMap<'a> {
    complex: &'a Complex,
    parent: Complex,
    alpha: &'a AgreementFunction,
    /// Per level-1 carrier: the `View1` sets of its critical simplices.
    critical_views: RefCell<HashMap<Simplex, Vec<ColorSet>>>,
}

impl<'a> LeaderMap<'a> {
    /// Creates the evaluator.
    ///
    /// # Panics
    ///
    /// Panics if the complex is not a level-2 subdivision or the process
    /// counts disagree.
    pub fn new(complex: &'a Complex, alpha: &'a AgreementFunction) -> Self {
        assert_eq!(
            complex.level(),
            2,
            "µ_Q is defined on sub-complexes of Chr² s"
        );
        assert_eq!(complex.num_processes(), alpha.num_processes());
        let parent = complex.parent().expect("level-2 complex").clone();
        LeaderMap {
            complex,
            parent,
            alpha,
            critical_views: RefCell::new(HashMap::new()),
        }
    }

    fn critical_views_of(&self, carrier: &Simplex) -> Vec<ColorSet> {
        if let Some(views) = self.critical_views.borrow().get(carrier) {
            return views.clone();
        }
        let mut crit = CriticalAnalysis::new(&self.parent, self.alpha);
        let views: Vec<ColorSet> = crit
            .analyze(carrier)
            .critical
            .iter()
            .map(|t| self.parent.carrier_colors(t))
            .collect();
        self.critical_views
            .borrow_mut()
            .insert(carrier.clone(), views.clone());
        views
    }

    /// `δ_Q(v)`: the smallest `View1` of a critical simplex observed by
    /// `v` that intersects `Q`, if any.
    pub fn delta_q(&self, v: VertexId, q: ColorSet) -> Option<ColorSet> {
        let carrier = self.complex.carrier_of_vertex(v);
        self.critical_views_of(carrier)
            .into_iter()
            .filter(|view| view.intersects(q))
            .min_by_key(|view| view.len())
    }

    /// `γ_Q(v)`: the smallest `View1` among the level-1 vertices observed
    /// by `v` whose view intersects `Q`, if any.
    pub fn gamma_q(&self, v: VertexId, q: ColorSet) -> Option<ColorSet> {
        let carrier = self.complex.carrier_of_vertex(v);
        carrier
            .vertices()
            .iter()
            .map(|&w| self.parent.base_colors_of_vertex(w))
            .filter(|view| view.intersects(q))
            .min_by_key(|view| view.len())
    }

    /// `µ_Q(v)`: the elected leader (Property 9 guarantees it exists for
    /// `χ(v) ∈ Q` and lies in `Q ∩ carrier(v, s)`).
    ///
    /// # Panics
    ///
    /// Panics if `χ(v) ∉ Q` (the map is only defined there).
    pub fn mu_q(&self, v: VertexId, q: ColorSet) -> ProcessId {
        assert!(
            q.contains(self.complex.color(v)),
            "µ_Q is defined on vertices of processes in Q"
        );
        let view = match self.delta_q(v, q) {
            Some(view) => view,
            None => self
                .gamma_q(v, q)
                .expect("γ_Q always has a candidate (self-inclusion)"),
        };
        view.intersection(q)
            .min()
            .expect("selected view intersects Q")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::{zoo, Adversary};
    use act_affine::fair_affine_task;
    use act_topology::Simplex;

    fn models() -> Vec<AgreementFunction> {
        vec![
            AgreementFunction::k_concurrency(3, 1),
            AgreementFunction::k_concurrency(3, 2),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
        ]
    }

    #[test]
    fn property_9_validity() {
        // µ_Q(v) ∈ χ(carrier(v, s)) ∩ Q for every vertex of R_A and every
        // Q containing χ(v).
        for alpha in models() {
            let r = fair_affine_task(&alpha);
            let lm = LeaderMap::new(r.complex(), &alpha);
            let full = ColorSet::full(3);
            for v in r.complex().used_vertices() {
                let color = r.complex().color(v);
                for q in full.non_empty_subsets() {
                    if !q.contains(color) {
                        continue;
                    }
                    let leader = lm.mu_q(v, q);
                    assert!(q.contains(leader), "leader in Q");
                    assert!(
                        r.complex().base_colors_of_vertex(v).contains(leader),
                        "leader was observed"
                    );
                }
            }
        }
    }

    #[test]
    fn property_10_agreement() {
        // For every facet σ of R_A, every Q and every θ ⊆ σ with
        // χ(θ) ⊆ Q: |{µ_Q(v)}| ≤ α(χ(carrier(θ, s))).
        for alpha in models() {
            let r = fair_affine_task(&alpha);
            let lm = LeaderMap::new(r.complex(), &alpha);
            let full = ColorSet::full(3);
            for facet in r.complex().facets() {
                for q in full.non_empty_subsets() {
                    let theta = facet.filter(|v| q.contains(r.complex().color(v)));
                    if theta.is_empty() {
                        continue;
                    }
                    for sub in theta.non_empty_faces() {
                        let leaders: ColorSet =
                            sub.vertices().iter().map(|&v| lm.mu_q(v, q)).collect();
                        let carrier = r.complex().carrier_colors(&sub);
                        assert!(
                            leaders.len() <= alpha.alpha(carrier),
                            "Property 10 violated: {} leaders for carrier {carrier} \
                             (α = {})",
                            leaders.len(),
                            alpha.alpha(carrier)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn property_12_robustness() {
        // µ_Q(v) = µ_{Q ∩ carrier(v, s)}(v).
        for alpha in models().into_iter().take(2) {
            let r = fair_affine_task(&alpha);
            let lm = LeaderMap::new(r.complex(), &alpha);
            let full = ColorSet::full(3);
            for v in r.complex().used_vertices() {
                let color = r.complex().color(v);
                let seen = r.complex().base_colors_of_vertex(v);
                for q in full.non_empty_subsets() {
                    if !q.contains(color) {
                        continue;
                    }
                    assert_eq!(lm.mu_q(v, q), lm.mu_q(v, q.intersection(seen)));
                }
            }
        }
    }

    #[test]
    fn delta_prefers_critical_views() {
        // Wherever δ_Q is defined it is used, and it returns a critical
        // simplex view.
        let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
        let r = fair_affine_task(&alpha);
        let lm = LeaderMap::new(r.complex(), &alpha);
        let full = ColorSet::full(3);
        let mut delta_used = 0;
        for v in r.complex().used_vertices() {
            if let Some(view) = lm.delta_q(v, full) {
                delta_used += 1;
                let leader = lm.mu_q(v, full);
                assert_eq!(Some(leader), view.intersection(full).min());
            }
        }
        assert!(delta_used > 0, "critical simplices are observed somewhere");
    }

    #[test]
    #[should_panic(expected = "processes in Q")]
    fn mu_q_outside_q_rejected() {
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let r = fair_affine_task(&alpha);
        let lm = LeaderMap::new(r.complex(), &alpha);
        let v = r.complex().used_vertices()[0];
        let color = r.complex().color(v);
        let q = ColorSet::full(3).without(color);
        let _ = lm.mu_q(v, q);
    }

    #[test]
    fn gamma_is_smallest_observed_view() {
        let alpha = AgreementFunction::k_concurrency(3, 2);
        let r = fair_affine_task(&alpha);
        let lm = LeaderMap::new(r.complex(), &alpha);
        for v in r.complex().used_vertices().into_iter().take(20) {
            let q = ColorSet::full(3);
            let gamma = lm.gamma_q(v, q).unwrap();
            // γ is the View1 of some observed process and no observed view
            // intersecting Q is smaller.
            let carrier = r.complex().carrier_of_vertex(v);
            let views: Vec<ColorSet> = carrier
                .vertices()
                .iter()
                .map(|&w| r.complex().parent().unwrap().base_colors_of_vertex(w))
                .collect();
            assert!(views.contains(&gamma));
            assert!(views.iter().all(|w| w.len() >= gamma.len()));
            let _ = Simplex::empty();
        }
    }
}
