//! Canonical model and task specifications.
//!
//! The CLI, the serving layer, and the persistent verdict store all need
//! to agree on what a "model" and a "task" are — and the store keys
//! verdicts by a *content address* derived from the spec text, so two
//! spellings of the same model must canonicalize to the same string.
//! This module is the single parser both front ends use:
//!
//! * [`ModelSpec`] — `wait-free:N`, `t-res:N:T`, `k-of:N:K`, `fig5b`,
//!   `custom:N:{p1,p2};{p3};…` (with optional superset closure), and the
//!   agreement-function family `alpha:N:<table>` / `alpha-kconc:N:K`
//!   (a model given directly by its α, Kuznetsov–Rieutord);
//! * [`TaskSpec`] — `set-consensus:N:K`, the decision problems the FACT
//!   pipeline answers (`k`-set consensus over values `0..=k`);
//! * [`ModelSpec::canonical_string`] / [`TaskSpec::canonical_string`] —
//!   a round-trippable normal form (`parse(canonical_string(s)) == s`),
//!   with custom live sets superset-closed at parse time (when asked),
//!   sorted, and deduplicated, so the canonical text fully determines
//!   the adversary.
//!
//! Malformed specs are reported as plain `String` errors, which the CLI
//! maps to [`FactError::Usage`](crate::FactError) (exit code 2) and the
//! server maps to an error reply with the same code.

use act_adversary::{Adversary, AgreementFunction};
use act_tasks::SetConsensus;
use act_topology::{ColorSet, ProcessId};

/// The largest supported process count (`Chr² s` explodes beyond it).
pub const MAX_PROCESSES: usize = 5;

/// A parsed, canonicalizable model specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelSpec {
    /// `wait-free:N` — the wait-free adversary (all non-empty live sets).
    WaitFree {
        /// Process count.
        n: usize,
    },
    /// `t-res:N:T` — the `T`-resilient adversary.
    TResilient {
        /// Process count.
        n: usize,
        /// Resilience bound (`t < n`).
        t: usize,
    },
    /// `k-of:N:K` — the `K`-obstruction-free adversary.
    KObstructionFree {
        /// Process count.
        n: usize,
        /// Concurrency bound (`1 ≤ k ≤ n`).
        k: usize,
    },
    /// `fig5b` — the Figure 5(b) adversary of the paper.
    Fig5b,
    /// `custom:N:{…};…` — explicit live sets, already closed (when the
    /// spec asked for closure), sorted, and deduplicated.
    Custom {
        /// Process count.
        n: usize,
        /// The live sets, sorted and deduplicated.
        live: Vec<ColorSet>,
    },
    /// `alpha:N:<table>` — a model given directly by its agreement
    /// function α, tabulated over the subset lattice: digit `i` of
    /// `<table>` is `α` of the participating set whose bitmask is `i`
    /// (`2^N` digits, each in `0..=N`). The shorthand
    /// `alpha-kconc:N:K` names `α(P) = min(|P|, K)` and canonicalizes
    /// to the table form, so both spellings share one store key.
    Alpha {
        /// Process count.
        n: usize,
        /// The α table in bits order, validated at parse time.
        table: Vec<u8>,
    },
}

impl ModelSpec {
    /// Parses a model spec. `closure` closes `custom` live sets under
    /// supersets (the CLI's `--closure` flag); it is folded into the
    /// parsed value, so the canonical string needs no flag.
    pub fn parse(spec: &str, closure: bool) -> Result<ModelSpec, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["wait-free", n] => Ok(ModelSpec::WaitFree { n: parse_n(n)? }),
            ["t-res", n, t] => {
                let n = parse_n(n)?;
                let t: usize = t.parse().map_err(|_| format!("bad t in {spec:?}"))?;
                if t >= n {
                    return Err("t-resilience requires t < n".into());
                }
                Ok(ModelSpec::TResilient { n, t })
            }
            ["k-of", n, k] => {
                let n = parse_n(n)?;
                let k: usize = k.parse().map_err(|_| format!("bad k in {spec:?}"))?;
                if !(1..=n).contains(&k) {
                    return Err("k-obstruction-freedom requires 1 ≤ k ≤ n".into());
                }
                Ok(ModelSpec::KObstructionFree { n, k })
            }
            ["fig5b"] => Ok(ModelSpec::Fig5b),
            ["alpha", n, table] => {
                let n = parse_n(n)?;
                let digits: Vec<u8> = table
                    .chars()
                    .map(|c| {
                        c.to_digit(10)
                            .map(|d| d as u8)
                            .ok_or_else(|| format!("bad α digit {c:?} in {spec:?}"))
                    })
                    .collect::<Result<_, _>>()?;
                let alpha = AgreementFunction::from_table(n, digits)?;
                Ok(ModelSpec::Alpha {
                    n,
                    table: alpha.table().to_vec(),
                })
            }
            ["alpha-kconc", n, k] => {
                let n = parse_n(n)?;
                let k: usize = k.parse().map_err(|_| format!("bad k in {spec:?}"))?;
                if !(1..=n).contains(&k) {
                    return Err("α-k-concurrency requires 1 ≤ k ≤ n".into());
                }
                let alpha = AgreementFunction::k_concurrency(n, k);
                Ok(ModelSpec::Alpha {
                    n,
                    table: alpha.table().to_vec(),
                })
            }
            ["custom", n, sets] => {
                let n = parse_n(n)?;
                let mut live = Vec::new();
                for block in sets.split(';') {
                    let block = block.trim().trim_start_matches('{').trim_end_matches('}');
                    let mut cs = ColorSet::EMPTY;
                    for name in block.split(',') {
                        let name = name.trim();
                        let idx: usize = name
                            .strip_prefix('p')
                            .and_then(|d| d.parse::<usize>().ok())
                            .ok_or_else(|| format!("bad process name {name:?}"))?;
                        if idx == 0 || idx > n {
                            return Err(format!("process {name} outside 1..={n}"));
                        }
                        cs = cs.with(ProcessId::new(idx - 1));
                    }
                    if cs.is_empty() {
                        return Err("empty live set".into());
                    }
                    live.push(cs);
                }
                if closure {
                    live = ColorSet::full(n)
                        .non_empty_subsets()
                        .filter(|s| live.iter().any(|l| l.is_subset_of(*s)))
                        .collect();
                }
                live.sort();
                live.dedup();
                Ok(ModelSpec::Custom { n, live })
            }
            _ => Err(format!("unrecognized model spec {spec:?}")),
        }
    }

    /// The canonical text of this spec: parsing it back (with `closure =
    /// false`) yields an equal [`ModelSpec`], and equal adversaries
    /// spelled through the same variant share one canonical string.
    pub fn canonical_string(&self) -> String {
        match self {
            ModelSpec::WaitFree { n } => format!("wait-free:{n}"),
            ModelSpec::TResilient { n, t } => format!("t-res:{n}:{t}"),
            ModelSpec::KObstructionFree { n, k } => format!("k-of:{n}:{k}"),
            ModelSpec::Fig5b => "fig5b".to_string(),
            ModelSpec::Custom { n, live } => {
                let sets: Vec<String> = live
                    .iter()
                    .map(|cs| {
                        let names: Vec<String> =
                            cs.iter().map(|p| format!("p{}", p.index() + 1)).collect();
                        format!("{{{}}}", names.join(","))
                    })
                    .collect();
                format!("custom:{n}:{}", sets.join(";"))
            }
            ModelSpec::Alpha { n, table } => {
                let digits: String = table.iter().map(|d| char::from(b'0' + d)).collect();
                format!("alpha:{n}:{digits}")
            }
        }
    }

    /// The number of processes in the model.
    pub fn num_processes(&self) -> usize {
        match self {
            ModelSpec::WaitFree { n }
            | ModelSpec::TResilient { n, .. }
            | ModelSpec::KObstructionFree { n, .. }
            | ModelSpec::Custom { n, .. }
            | ModelSpec::Alpha { n, .. } => *n,
            ModelSpec::Fig5b => 3,
        }
    }

    /// Builds the adversary this spec names.
    ///
    /// # Errors
    ///
    /// `alpha:` specs describe a model by its agreement function alone —
    /// many distinct adversaries share one α, so no single adversary can
    /// be built for them. Callers that only need the model's solvability
    /// behaviour should use [`agreement_function`] instead, which every
    /// variant supports.
    ///
    /// [`agreement_function`]: ModelSpec::agreement_function
    pub fn adversary(&self) -> Result<Adversary, String> {
        match self {
            ModelSpec::WaitFree { n } => Ok(Adversary::wait_free(*n)),
            ModelSpec::TResilient { n, t } => Ok(Adversary::t_resilient(*n, *t)),
            ModelSpec::KObstructionFree { n, k } => Ok(Adversary::k_obstruction_free(*n, *k)),
            ModelSpec::Fig5b => Ok(act_adversary::zoo::figure_5b_adversary()),
            ModelSpec::Custom { n, live } => Ok(Adversary::from_live_sets(*n, live.clone())),
            ModelSpec::Alpha { .. } => Err(format!(
                "{} is an α-model with no unique adversary; it is defined by its agreement \
                 function (use a wait-free/t-res/k-of/custom spec where an adversary is required)",
                self.canonical_string()
            )),
        }
    }

    /// The agreement function of this model: the parsed table for
    /// `alpha:` specs, `α(P) = setcon(A|P)` for adversary-backed specs.
    /// Every variant supports this, which is what lets the solver, the
    /// tower cache, and the serving stack treat α-models exactly like
    /// adversary models — `R_A` is a function of α alone.
    pub fn agreement_function(&self) -> AgreementFunction {
        match self {
            ModelSpec::Alpha { n, table } => AgreementFunction::from_table(*n, table.clone())
                .expect("alpha tables are validated at parse time"),
            _ => AgreementFunction::of_adversary(
                &self.adversary().expect("non-α specs name an adversary"),
            ),
        }
    }
}

/// A parsed, canonicalizable task specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskSpec {
    /// `set-consensus:N:K` — `K`-set consensus over `N` processes with
    /// the value convention `0..=K` (what `fact-cli solve` decides).
    SetConsensus {
        /// Process count.
        n: usize,
        /// Agreement bound (`1 ≤ k < n` for a non-trivial question).
        k: usize,
    },
}

impl TaskSpec {
    /// `k`-set consensus over `n` processes, validating `1 ≤ k < n`.
    pub fn set_consensus(n: usize, k: usize) -> Result<TaskSpec, String> {
        if !(1..=MAX_PROCESSES).contains(&n) {
            return Err(format!(
                "process counts 1..={MAX_PROCESSES} are supported (Chr² explodes beyond)"
            ));
        }
        if !(1..n).contains(&k) {
            return Err(format!("k must be in 1..{n} to be interesting"));
        }
        Ok(TaskSpec::SetConsensus { n, k })
    }

    /// Parses a task spec (`set-consensus:N:K`).
    pub fn parse(spec: &str) -> Result<TaskSpec, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["set-consensus", n, k] => {
                let n = parse_n(n)?;
                let k: usize = k.parse().map_err(|_| format!("bad k in {spec:?}"))?;
                TaskSpec::set_consensus(n, k)
            }
            _ => Err(format!("unrecognized task spec {spec:?}")),
        }
    }

    /// The canonical text of this spec (round-trips through [`parse`]).
    ///
    /// [`parse`]: TaskSpec::parse
    pub fn canonical_string(&self) -> String {
        match self {
            TaskSpec::SetConsensus { n, k } => format!("set-consensus:{n}:{k}"),
        }
    }

    /// Builds the task instance this spec names.
    pub fn task(&self) -> SetConsensus {
        match self {
            TaskSpec::SetConsensus { n, k } => {
                let values: Vec<u64> = (0..=*k as u64).collect();
                SetConsensus::new(*n, *k, &values)
            }
        }
    }
}

fn parse_n(s: &str) -> Result<usize, String> {
    let n: usize = s.parse().map_err(|_| format!("bad process count {s:?}"))?;
    if !(1..=MAX_PROCESSES).contains(&n) {
        return Err(format!(
            "process counts 1..={MAX_PROCESSES} are supported (Chr² explodes beyond)"
        ));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::zoo;
    use act_tasks::Task;

    #[test]
    fn model_specs_parse_and_build_the_right_adversaries() {
        assert_eq!(
            ModelSpec::parse("wait-free:3", false)
                .unwrap()
                .adversary()
                .unwrap()
                .len(),
            7
        );
        assert_eq!(
            ModelSpec::parse("t-res:3:1", false)
                .unwrap()
                .adversary()
                .unwrap()
                .setcon(),
            2
        );
        assert_eq!(
            ModelSpec::parse("k-of:4:2", false)
                .unwrap()
                .adversary()
                .unwrap()
                .setcon(),
            2
        );
        assert!(ModelSpec::parse("fig5b", false)
            .unwrap()
            .adversary()
            .unwrap()
            .is_superset_closed());
        let custom = ModelSpec::parse("custom:3:{p2};{p1,p3}", true).unwrap();
        assert_eq!(custom.adversary().unwrap(), zoo::figure_5b_adversary());
        let raw = ModelSpec::parse("custom:3:{p2};{p1,p3}", false).unwrap();
        assert_eq!(raw.adversary().unwrap().len(), 2);
    }

    #[test]
    fn bad_model_specs_are_rejected() {
        for bad in [
            "nope:3",
            "t-res:3:3",
            "k-of:3:0",
            "wait-free:9",
            "custom:3:{p9}",
            "custom:3:{}",
            "t-res:x:1",
            "",
        ] {
            assert!(ModelSpec::parse(bad, false).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn canonical_strings_round_trip() {
        for spec in [
            "wait-free:3",
            "t-res:3:1",
            "k-of:4:2",
            "fig5b",
            "custom:3:{p2};{p1,p3}",
        ] {
            let parsed = ModelSpec::parse(spec, false).unwrap();
            let canon = parsed.canonical_string();
            let reparsed = ModelSpec::parse(&canon, false).unwrap();
            assert_eq!(parsed, reparsed, "{spec} → {canon} must round-trip");
            assert_eq!(canon, reparsed.canonical_string());
        }
    }

    #[test]
    fn custom_canonicalization_is_spelling_independent() {
        // Set order, whitespace, and duplicates do not change the
        // canonical text — the store key depends on this.
        let a = ModelSpec::parse("custom:3:{p1,p3};{p2}", false).unwrap();
        let b = ModelSpec::parse("custom:3:{p2}; {p3,p1} ;{p2}", false).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical_string(), b.canonical_string());

        // Closure is folded in at parse time: the canonical string of a
        // closed spec reparses (with closure = false) to the same model.
        let closed = ModelSpec::parse("custom:3:{p2};{p1,p3}", true).unwrap();
        let canon = closed.canonical_string();
        let reparsed = ModelSpec::parse(&canon, false).unwrap();
        assert_eq!(closed, reparsed);
        assert_eq!(reparsed.adversary().unwrap(), zoo::figure_5b_adversary());
    }

    #[test]
    fn task_specs_round_trip_and_validate() {
        let t = TaskSpec::parse("set-consensus:3:1").unwrap();
        assert_eq!(t, TaskSpec::set_consensus(3, 1).unwrap());
        assert_eq!(t.canonical_string(), "set-consensus:3:1");
        assert_eq!(TaskSpec::parse(&t.canonical_string()).unwrap(), t);
        let built = t.task();
        assert_eq!(built.num_processes(), 3);
        assert_eq!(built.k(), 1);

        assert!(TaskSpec::parse("set-consensus:3:0").is_err());
        assert!(TaskSpec::parse("set-consensus:3:3").is_err());
        assert!(TaskSpec::parse("set-consensus:9:1").is_err());
        assert!(TaskSpec::parse("frob:3:1").is_err());
    }

    #[test]
    fn alpha_specs_parse_validate_and_canonicalize() {
        // The shorthand canonicalizes to the table form, so both
        // spellings share one store key.
        let short = ModelSpec::parse("alpha-kconc:3:1", false).unwrap();
        assert_eq!(short.canonical_string(), "alpha:3:01111111");
        let long = ModelSpec::parse("alpha:3:01111111", false).unwrap();
        assert_eq!(short, long);
        assert_eq!(short.num_processes(), 3);

        // Round trip through the canonical string.
        let reparsed = ModelSpec::parse(&short.canonical_string(), false).unwrap();
        assert_eq!(reparsed, short);

        // α-models have no unique adversary but always an α.
        assert!(short.adversary().is_err());
        let alpha = short.agreement_function();
        assert_eq!(alpha, act_adversary::AgreementFunction::k_concurrency(3, 1));

        // Ill-formed tables are refused at parse time: wrong length,
        // non-digit, non-monotone, α(∅) > 0.
        for bad in [
            "alpha:3:011",
            "alpha:2:01x2",
            "alpha:2:0110",
            "alpha:2:1112",
            "alpha-kconc:3:0",
            "alpha-kconc:3:4",
            "alpha:9:0",
        ] {
            assert!(ModelSpec::parse(bad, false).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn alpha_of_adversary_matches_the_adversary_backed_spec() {
        // `alpha:(A)` — the α-model of an adversary spec — computes the
        // same agreement function as the adversary itself.
        for spec in ["wait-free:3", "t-res:3:1", "k-of:4:2", "fig5b"] {
            let m = ModelSpec::parse(spec, false).unwrap();
            let alpha = m.agreement_function();
            let table: String = alpha.table().iter().map(|d| d.to_string()).collect();
            let alpha_spec = format!("alpha:{}:{table}", m.num_processes());
            let a = ModelSpec::parse(&alpha_spec, false).unwrap();
            assert_eq!(a.agreement_function(), alpha, "{spec} α round-trips");
        }
    }

    #[test]
    fn num_processes_matches_the_adversary() {
        for spec in ["wait-free:2", "t-res:3:1", "k-of:4:2", "fig5b"] {
            let m = ModelSpec::parse(spec, false).unwrap();
            assert_eq!(m.num_processes(), m.adversary().unwrap().num_processes());
        }
    }
}
