//! The campaign engine: model context, per-index run derivation, the
//! two-tier (exhaustive / sampled) loop, the batch-synchronous worker
//! fleet, and artifact emission.
//!
//! Determinism is the design invariant everything else hangs off:
//! every sampled run is a pure function of `(campaign seed, run index)`
//! — correct set, crash budgets, scheduler RNG seed, fault plan — so
//! coverage is independent of the worker count and a resumed campaign
//! re-derives exactly the runs an uninterrupted one would have
//! executed. Batches are the atom of progress: violations found in a
//! batch are shrunk, deduplicated, and persisted *before* the batch's
//! checkpoint line is appended, so a kill at any point loses at most
//! one batch of work and never an artifact a checkpoint claims.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use act_adversary::AgreementFunction;
use act_affine::{fair_affine_task, AffineTask};
use act_runtime::{
    explore_iter, run_adversarial, run_adversarial_with_faults, ExploreOrder, FaultPlan, Trace,
    TraceArtifact,
};
use act_topology::{ColorSet, ProcessId};
use fact::{
    set_consensus_verdict_cached, AlgorithmOneSystem, DomainCache, DomainExpansion, ModelSpec,
    Solvability, TaskSpec,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::checkpoint::{
    append_checkpoint, load_latest_checkpoint, Checkpoint, Coverage, CHECKPOINT_SCHEMA_VERSION,
};
use crate::invariants::{check_all, selected_invariants, Invariant, MonotonicityGuard, RunRecord};
use crate::shrink::shrink_violation;
use crate::signature::{signature_hex, violation_signature};
use crate::{
    chaos, CampaignConfig, Scope, CAMPAIGN_ARTIFACTS, CAMPAIGN_CHECKPOINTS, CAMPAIGN_DEDUPED,
    CAMPAIGN_RUNS, CAMPAIGN_VIOLATIONS, INJECTED_MAX_STEPS,
};

/// Everything about the model a campaign precomputes once and shares
/// (immutably) across workers and batches: the adversary, its agreement
/// function α, the affine task `R_A`, the live sets runs draw their
/// correct sets from, and the solver's one-off solvability verdict that
/// arms the `verdict-agreement` invariant.
pub struct CampaignContext {
    /// The parsed model spec.
    pub spec: ModelSpec,
    /// The model's agreement function α.
    pub alpha: AgreementFunction,
    /// The affine task `R_A` capturing the model (FACT Theorem 15/16).
    pub affine: AffineTask,
    /// The adversary's live sets, sorted by bit pattern, the population
    /// correct sets are drawn from.
    pub live_sets: Vec<ColorSet>,
    /// The full participant set.
    pub participants: ColorSet,
    /// `Some(true)` when the solver found the model's canonical
    /// set-consensus task solvable via `R_A` (the `verdict-agreement`
    /// invariant is armed), `Some(false)` when it committed to
    /// unsolvable or gave an inconclusive verdict, `None` when the
    /// check was skipped ([`CampaignConfig::solver_check`] off).
    pub solver_solvable: Option<bool>,
}

impl CampaignContext {
    /// Builds the context for `model` (a [`ModelSpec`] string). With
    /// `solver_check`, runs the set-consensus solver once for the
    /// model's setcon level so runs can be judged against its verdict.
    pub fn new(model: &str, solver_check: bool) -> Result<CampaignContext, String> {
        CampaignContext::new_with_oracle(model, solver_check, false)
    }

    /// Like [`Self::new`], but with `quotient_oracle` set the solver
    /// check runs **twice** — once over directly expanded subdivision
    /// towers ([`DomainExpansion::Direct`]) and once over the
    /// symmetry-quotiented, orbit-shared towers
    /// ([`DomainExpansion::OrbitShared`]) — and demands verdict parity.
    /// Quotient-then-expand equals direct expansion by construction, so
    /// a disagreement is a genuine engine bug; the context (and thus
    /// the whole campaign) fails loudly rather than arming the
    /// `verdict-agreement` invariant with a verdict the engine itself
    /// cannot agree on. Requires `solver_check` to have any effect.
    pub fn new_with_oracle(
        model: &str,
        solver_check: bool,
        quotient_oracle: bool,
    ) -> Result<CampaignContext, String> {
        let spec = ModelSpec::parse(model, false)?;
        // Adversarial campaigns schedule real runs against the model's
        // live sets, so they need an adversary — α-only specs (which
        // have no unique adversary) are solve/serve-side models.
        let adversary = spec
            .adversary()
            .map_err(|e| format!("campaigns need an adversary-backed model: {e}"))?;
        let n = adversary.num_processes();
        let participants = ColorSet::full(n);
        let alpha = AgreementFunction::of_adversary(&adversary);
        if alpha.alpha(participants) == 0 {
            return Err("the model admits no runs (alpha(full) = 0)".to_string());
        }
        let mut live_sets: Vec<ColorSet> =
            adversary.live_sets().filter(|s| !s.is_empty()).collect();
        live_sets.sort_by_key(|s| s.bits());
        if live_sets.is_empty() {
            return Err("the adversary has no non-empty live sets".to_string());
        }
        let affine = fair_affine_task(&alpha);
        let solver_solvable = if solver_check && n >= 2 {
            // The model's canonical decision problem: setcon(A)-set
            // consensus (clamped to the task-spec range 1..n).
            let k = adversary.setcon().clamp(1, n - 1);
            let task = TaskSpec::set_consensus(n, k)?.task();
            let verdict = solver_verdict(&task, &affine, DomainExpansion::OrbitShared);
            let solvable = matches!(verdict, Solvability::Solvable { .. });
            if quotient_oracle {
                let direct = solver_verdict(&task, &affine, DomainExpansion::Direct);
                let direct_solvable = matches!(direct, Solvability::Solvable { .. });
                if solvable != direct_solvable {
                    return Err(format!(
                        "quotient oracle: verdict disagreement for {k}-set consensus \
                         under {model}: orbit-shared towers say solvable={solvable}, \
                         directly expanded towers say solvable={direct_solvable}"
                    ));
                }
            }
            Some(solvable)
        } else {
            None
        };
        Ok(CampaignContext {
            spec,
            alpha,
            affine,
            live_sets,
            participants,
            solver_solvable,
        })
    }
}

/// One solver pass under a fixed subdivision strategy: level 1 first,
/// escalating to level 2 when level 1 is inconclusive (mirrors the
/// single-expansion check campaigns have always run).
fn solver_verdict(
    task: &act_tasks::SetConsensus,
    affine: &AffineTask,
    expansion: DomainExpansion,
) -> Solvability {
    let mut cache = DomainCache::new().with_expansion(expansion);
    let mut verdict = set_consensus_verdict_cached(&mut cache, task, affine, 1, 5_000_000);
    if matches!(verdict, Solvability::NoMapUpTo { .. }) {
        verdict = set_consensus_verdict_cached(&mut cache, task, affine, 2, 5_000_000);
    }
    verdict
}

/// A violating run, as found (pre-shrink).
#[derive(Clone, Debug)]
pub struct Violation {
    /// The run's campaign index (sampled tier) or enumeration ordinal
    /// (exhaustive tier).
    pub index: u64,
    /// Sorted names of the violated invariants.
    pub violated: Vec<String>,
    /// The replayable trace of the run as executed.
    pub trace: Trace,
    /// The step bound the run was driven under.
    pub max_steps: usize,
    /// Whether the violation was force-injected.
    pub injected: bool,
}

/// What one campaign invocation did (a resumed invocation reports the
/// *cumulative* coverage, including the resumed-from prefix).
#[derive(Debug)]
pub struct CampaignReport {
    /// Cumulative coverage through `cursor`.
    pub coverage: Coverage,
    /// Runs completed.
    pub cursor: u64,
    /// Whether the population is exhausted.
    pub done: bool,
    /// The cursor this invocation resumed from (0 for a fresh start).
    pub resumed_from: u64,
    /// Artifacts written by *this* invocation, in emission order.
    pub new_artifacts: Vec<PathBuf>,
    /// All artifact signatures (the dedup set), sorted.
    pub artifact_sigs: Vec<String>,
    /// Wall-clock of this invocation, microseconds.
    pub elapsed_us: u64,
}

impl CampaignReport {
    /// Throughput of this invocation (runs newly executed over its
    /// wall-clock).
    pub fn runs_per_sec(&self) -> f64 {
        let executed = (self.cursor - self.resumed_from) as f64;
        if self.elapsed_us == 0 {
            return 0.0;
        }
        executed / (self.elapsed_us as f64 / 1e6)
    }
}

/// Builds the model context and runs the campaign. Convenience wrapper
/// over [`run_campaign_in`] for callers (like the CLI) that run one
/// campaign per context. `fpc:` models dispatch to the FPC run family
/// ([`run_fpc_campaign`](crate::fpc::run_fpc_campaign)); everything
/// else is an adversarial campaign.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignReport, String> {
    if config.is_fpc() {
        return crate::fpc::run_fpc_campaign(config);
    }
    let ctx = CampaignContext::new_with_oracle(
        &config.model,
        config.solver_check,
        config.quotient_oracle,
    )?;
    run_campaign_in(&ctx, config)
}

/// Runs a campaign against a prebuilt context (tests and benchmarks
/// reuse one context across many campaigns; `ctx` must have been built
/// from `config.model`).
pub fn run_campaign_in(
    ctx: &CampaignContext,
    config: &CampaignConfig,
) -> Result<CampaignReport, String> {
    let timer = act_obs::timer("campaign.run");
    if config.batch == 0 {
        return Err("batch size must be at least 1".to_string());
    }
    if config.resume && config.checkpoint.is_none() {
        return Err("--resume requires a checkpoint file".to_string());
    }
    let fingerprint = config.fingerprint_hex();
    let invariants = selected_invariants(config.invariants.as_deref())?;

    let mut state = CampaignState {
        coverage: Coverage::default(),
        cursor: 0,
        done: false,
        sigs: BTreeSet::new(),
        artifacts_written: 0,
        new_artifacts: Vec::new(),
    };
    let mut resumed_from = 0;
    if config.resume {
        let path = config.checkpoint.as_ref().expect("checked above");
        if let Some(cp) = load_latest_checkpoint(path, &fingerprint)? {
            state.coverage = cp.coverage;
            state.cursor = cp.cursor;
            state.done = cp.done;
            state.sigs = cp.artifact_sigs.into_iter().collect();
            state.artifacts_written = cp.artifacts_written;
            resumed_from = cp.cursor;
        }
    }

    if !state.done {
        match config.scope {
            Scope::Sampled { samples } => {
                run_sampled_tier(ctx, config, &invariants, &fingerprint, samples, &mut state)?
            }
            Scope::Exhaustive { max_depth } => run_exhaustive_tier(
                ctx,
                config,
                &invariants,
                &fingerprint,
                max_depth,
                &mut state,
            )?,
        }
    }

    let elapsed_us = timer.elapsed_us().unwrap_or(0);
    timer
        .finish()
        .u64("cursor", state.cursor)
        .bool("done", state.done)
        .emit();
    Ok(CampaignReport {
        coverage: state.coverage,
        cursor: state.cursor,
        done: state.done,
        resumed_from,
        new_artifacts: state.new_artifacts,
        artifact_sigs: state.sigs.into_iter().collect(),
        elapsed_us,
    })
}

/// The mutable campaign state a checkpoint line snapshots.
struct CampaignState {
    coverage: Coverage,
    cursor: u64,
    done: bool,
    sigs: BTreeSet<String>,
    artifacts_written: u64,
    new_artifacts: Vec<PathBuf>,
}

fn run_sampled_tier(
    ctx: &CampaignContext,
    config: &CampaignConfig,
    invariants: &[Box<dyn Invariant>],
    fingerprint: &str,
    samples: u64,
    state: &mut CampaignState,
) -> Result<(), String> {
    let injected = config.injected_indices();
    while state.cursor < samples {
        chaos::maybe_kill(state.cursor);
        let end = (state.cursor + config.batch).min(samples);
        let (batch_coverage, violations) =
            run_sampled_batch(ctx, config, invariants, &injected, state.cursor, end);
        state.coverage.absorb(&batch_coverage);
        state.cursor = end;
        state.done = state.cursor == samples;
        settle_batch(ctx, config, invariants, fingerprint, violations, state)?;
    }
    Ok(())
}

/// Fans a contiguous index range out over the worker fleet. Workers get
/// contiguous sub-ranges; because each run is derived purely from its
/// index, the merged coverage is identical for any worker count. A
/// worker panic is propagated (the campaign dies mid-batch, exactly
/// like a kill — the previous checkpoint stays authoritative).
fn run_sampled_batch(
    ctx: &CampaignContext,
    config: &CampaignConfig,
    invariants: &[Box<dyn Invariant>],
    injected: &[u64],
    start: u64,
    end: u64,
) -> (Coverage, Vec<Violation>) {
    let count = end - start;
    let workers = (config.workers.max(1) as u64).min(count).max(1);
    let chunk = count.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = start + w * chunk;
            let hi = (lo + chunk).min(end);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || {
                let mut coverage = Coverage::default();
                let mut violations = Vec::new();
                for index in lo..hi {
                    execute_sampled_run(
                        ctx,
                        config,
                        invariants,
                        injected,
                        index,
                        &mut coverage,
                        &mut violations,
                    );
                }
                (coverage, violations)
            }));
        }
        let mut coverage = Coverage::default();
        let mut violations = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok((c, v)) => {
                    coverage.absorb(&c);
                    violations.extend(v);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        violations.sort_by_key(|v| v.index);
        (coverage, violations)
    })
}

/// The per-index derivation: a SplitMix64 stream keyed by the campaign
/// seed and the run index yields the correct set, crash budgets,
/// scheduler seed, and fault-plan decision for that run — nothing else
/// feeds the run, which is what makes campaigns resumable and
/// worker-count independent.
struct RunPlan {
    correct: ColorSet,
    budgets: Vec<usize>,
    rng_seed: u64,
    fault_plan: Option<FaultPlan>,
    max_steps: usize,
    injected: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn derive_plan(
    ctx: &CampaignContext,
    config: &CampaignConfig,
    injected: &[u64],
    index: u64,
) -> RunPlan {
    let n = ctx.participants.len();
    let mut stream = config
        .seed
        .wrapping_add((index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let correct_draw = splitmix64(&mut stream);
    let budgets: Vec<usize> = (0..n)
        .map(|_| (splitmix64(&mut stream) % 4) as usize)
        .collect();
    let rng_seed = splitmix64(&mut stream);
    let fault_draw = splitmix64(&mut stream);
    let fault_seed = splitmix64(&mut stream);
    if injected.binary_search(&index).is_ok() {
        // A synthetic liveness violation: the full set must decide but
        // the run is cut off after INJECTED_MAX_STEPS steps.
        return RunPlan {
            correct: ctx.participants,
            budgets: vec![0; n],
            rng_seed,
            fault_plan: None,
            max_steps: INJECTED_MAX_STEPS,
            injected: true,
        };
    }
    let correct = ctx.live_sets[(correct_draw % ctx.live_sets.len() as u64) as usize];
    let fault_plan = (fault_draw % 100 < config.fault_rate_percent.min(100) as u64)
        .then(|| FaultPlan::seeded(fault_seed, n, 64));
    RunPlan {
        correct,
        budgets,
        rng_seed,
        fault_plan,
        max_steps: config.max_steps,
        injected: false,
    }
}

fn execute_sampled_run(
    ctx: &CampaignContext,
    config: &CampaignConfig,
    invariants: &[Box<dyn Invariant>],
    injected: &[u64],
    index: u64,
    coverage: &mut Coverage,
    violations: &mut Vec<Violation>,
) {
    let plan = derive_plan(ctx, config, injected, index);
    let mut guard = MonotonicityGuard::new(AlgorithmOneSystem::new(&ctx.alpha, ctx.participants));
    let mut rng = ChaCha8Rng::seed_from_u64(plan.rng_seed);
    let budgets = &plan.budgets;
    let (outcome, fault_report) = match &plan.fault_plan {
        Some(fault_plan) => {
            let (outcome, report) = run_adversarial_with_faults(
                &mut guard,
                ctx.participants,
                plan.correct,
                &mut rng,
                |p: ProcessId| budgets[p.index()],
                plan.max_steps,
                fault_plan,
            );
            (outcome, Some(report))
        }
        None => (
            run_adversarial(
                &mut guard,
                ctx.participants,
                plan.correct,
                &mut rng,
                |p: ProcessId| budgets[p.index()],
                plan.max_steps,
            ),
            None,
        ),
    };
    let outputs = guard.inner().outputs();
    let record = RunRecord {
        outcome: &outcome,
        participants: ctx.participants,
        truncated_by_depth: false,
        monotonicity_ok: guard.ok(),
        outputs: &outputs,
        fault_plan: plan.fault_plan.as_ref(),
        max_steps: plan.max_steps,
    };
    let violated = check_all(invariants, ctx, &record);

    coverage.runs += 1;
    coverage.steps += outcome.steps as u64;
    CAMPAIGN_RUNS.add(1);
    if outcome.all_correct_terminated {
        coverage.live += 1;
        if outputs.len() == ctx.participants.len() {
            if let Some(simplex) = fact::outputs_to_simplex(ctx.affine.complex(), &outputs) {
                coverage.facets.insert(act_obs::fnv1a64(
                    0xcbf29ce484222325,
                    format!("{simplex:?}").as_bytes(),
                ));
            }
        }
    }
    if let Some(report) = &fault_report {
        coverage.faulted_runs += 1;
        coverage.faults_applied +=
            (report.crashes_applied + report.stalls_applied + report.perturbs_applied) as u64;
    }
    if !violated.is_empty() {
        coverage.violations += 1;
        if plan.injected {
            coverage.injected_violations += 1;
        }
        for name in &violated {
            *coverage
                .invariant_violations
                .entry(name.clone())
                .or_insert(0) += 1;
        }
        CAMPAIGN_VIOLATIONS.add(1);
        let mut trace = Trace::from_outcome(ctx.participants, &outcome);
        if let Some(fault_plan) = plan.fault_plan {
            trace = trace.with_fault_plan(fault_plan);
        }
        violations.push(Violation {
            index,
            violated,
            trace,
            max_steps: plan.max_steps,
            injected: plan.injected,
        });
    }
}

/// The exhaustive tier: streams a bounded breadth-first enumeration of
/// every schedule of the full participant set through
/// [`explore_iter`] — O(frontier) memory, never O(runs) — evaluating
/// invariants per run. Runs cut off by the depth bound are flagged
/// truncated, so the liveness invariant (a statement about *fair*
/// schedules, not prefixes) does not fire on them. Resume re-enumerates
/// and skips the checkpointed prefix: the enumeration order is
/// deterministic, so the skipped runs are exactly the ones already
/// counted.
fn run_exhaustive_tier(
    ctx: &CampaignContext,
    config: &CampaignConfig,
    invariants: &[Box<dyn Invariant>],
    fingerprint: &str,
    max_depth: usize,
    state: &mut CampaignState,
) -> Result<(), String> {
    let initial = MonotonicityGuard::new(AlgorithmOneSystem::new(&ctx.alpha, ctx.participants));
    let mut iter = explore_iter(
        &initial,
        ctx.participants,
        ctx.participants,
        max_depth,
        usize::MAX,
        ExploreOrder::BreadthFirst,
    );
    for _ in 0..state.cursor {
        if iter.next().is_none() {
            break;
        }
    }
    loop {
        chaos::maybe_kill(state.cursor);
        let mut batch_coverage = Coverage::default();
        let mut violations = Vec::new();
        let mut in_batch = 0u64;
        while in_batch < config.batch {
            let Some((guard, outcome)) = iter.next() else {
                state.done = true;
                break;
            };
            let outputs = guard.inner().outputs();
            let truncated = !outcome.all_correct_terminated;
            let record = RunRecord {
                outcome: &outcome,
                participants: ctx.participants,
                truncated_by_depth: truncated,
                monotonicity_ok: guard.ok(),
                outputs: &outputs,
                fault_plan: None,
                max_steps: max_depth,
            };
            let violated = check_all(invariants, ctx, &record);
            batch_coverage.runs += 1;
            batch_coverage.steps += outcome.steps as u64;
            CAMPAIGN_RUNS.add(1);
            if outcome.all_correct_terminated {
                batch_coverage.live += 1;
                if outputs.len() == ctx.participants.len() {
                    if let Some(simplex) = fact::outputs_to_simplex(ctx.affine.complex(), &outputs)
                    {
                        batch_coverage.facets.insert(act_obs::fnv1a64(
                            0xcbf29ce484222325,
                            format!("{simplex:?}").as_bytes(),
                        ));
                    }
                }
            }
            if !violated.is_empty() {
                batch_coverage.violations += 1;
                for name in &violated {
                    *batch_coverage
                        .invariant_violations
                        .entry(name.clone())
                        .or_insert(0) += 1;
                }
                CAMPAIGN_VIOLATIONS.add(1);
                violations.push(Violation {
                    index: state.cursor + in_batch,
                    violated,
                    trace: Trace::from_outcome(ctx.participants, &outcome),
                    max_steps: max_depth,
                    injected: false,
                });
            }
            in_batch += 1;
        }
        state.coverage.absorb(&batch_coverage);
        state.cursor += in_batch;
        settle_batch(ctx, config, invariants, fingerprint, violations, state)?;
        if state.done {
            return Ok(());
        }
    }
}

/// Shrinks, deduplicates, and persists a batch's violations, then
/// appends the batch's checkpoint line. Order matters: artifacts land
/// on disk before the checkpoint that records their signatures, so a
/// checkpoint never claims an artifact that does not exist.
fn settle_batch(
    ctx: &CampaignContext,
    config: &CampaignConfig,
    invariants: &[Box<dyn Invariant>],
    fingerprint: &str,
    violations: Vec<Violation>,
    state: &mut CampaignState,
) -> Result<(), String> {
    let model = ctx.spec.canonical_string();
    for violation in violations {
        let shrunk = shrink_violation(ctx, invariants, &violation);
        let sig = signature_hex(violation_signature(&model, &shrunk, &violation.violated));
        if state.sigs.insert(sig.clone()) {
            let path = write_artifact(
                config
                    .artifacts
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("target/campaign-artifacts"))
                    .as_path(),
                &sig,
                &shrunk,
                &violation,
            )?;
            state.artifacts_written += 1;
            CAMPAIGN_ARTIFACTS.add(1);
            act_obs::event("campaign.artifact")
                .str("signature", &sig)
                .str("path", &path.display().to_string())
                .str("violated", &violation.violated.join("+"))
                .u64("run_index", violation.index)
                .emit();
            state.new_artifacts.push(path);
        } else {
            state.coverage.deduped += 1;
            CAMPAIGN_DEDUPED.add(1);
        }
    }
    if let Some(path) = &config.checkpoint {
        let checkpoint = Checkpoint {
            schema: CHECKPOINT_SCHEMA_VERSION,
            fingerprint: fingerprint.to_string(),
            cursor: state.cursor,
            done: state.done,
            coverage: state.coverage.clone(),
            artifact_sigs: state.sigs.iter().cloned().collect(),
            artifacts_written: state.artifacts_written,
        };
        append_checkpoint(path, &checkpoint)?;
        CAMPAIGN_CHECKPOINTS.add(1);
    }
    act_obs::event("campaign.batch")
        .u64("cursor", state.cursor)
        .u64("violations", state.coverage.violations)
        .bool("done", state.done)
        .emit();
    Ok(())
}

/// Writes a shrunk violation as a replayable [`TraceArtifact`]
/// (atomically: temp file + rename, keyed by signature so a resumed
/// campaign rewrites byte-identical content instead of duplicating).
fn write_artifact(
    dir: &Path,
    sig: &str,
    shrunk: &Trace,
    violation: &Violation,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating artifact dir {dir:?}: {e}"))?;
    let artifact = TraceArtifact {
        schema_version: 1,
        reason: format!("campaign:{}", violation.violated.join("+")),
        max_steps: violation.max_steps as u64,
        trace: shrunk.clone(),
    };
    let json = serde_json::to_string_pretty(&artifact)
        .map_err(|e| format!("serializing artifact: {e}"))?;
    let path = dir.join(format!("campaign-{sig}.json"));
    let tmp = dir.join(format!(".campaign-{sig}.json.tmp"));
    std::fs::write(&tmp, json).map_err(|e| format!("writing artifact {tmp:?}: {e}"))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("publishing artifact {path:?}: {e}"))?;
    Ok(path)
}

/// Replays `trace` through a fresh guarded system and returns the
/// sorted violated-invariant names — the acceptance oracle the shrinker
/// and the reproduction tests share. `Err` means the trace does not
/// replay at all (out-of-range process, which the shrinker treats as
/// "does not reproduce").
pub fn evaluate_trace(
    ctx: &CampaignContext,
    invariants: &[Box<dyn Invariant>],
    trace: &Trace,
    max_steps: usize,
) -> Result<Vec<String>, String> {
    let mut guard = MonotonicityGuard::new(AlgorithmOneSystem::new(&ctx.alpha, trace.participants));
    let outcome = trace
        .replay_outcome(&mut guard)
        .map_err(|e| format!("replay failed: {e:?}"))?;
    let outputs = guard.inner().outputs();
    let record = RunRecord {
        outcome: &outcome,
        participants: trace.participants,
        truncated_by_depth: false,
        monotonicity_ok: guard.ok(),
        outputs: &outputs,
        fault_plan: trace.fault_plan.as_ref(),
        max_steps,
    };
    Ok(check_all(invariants, ctx, &record))
}
