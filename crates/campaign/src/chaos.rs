//! Kill-mid-flight hooks for checkpoint/resume tests, mirroring the
//! `act_tasks::chaos` idiom: a test arms a *cursor* (the run index a
//! batch starts at); when the campaign loop reaches that batch boundary
//! the process panics, simulating an abrupt kill between two checkpoint
//! appends. The resume test then restarts the campaign from the
//! checkpoint file and asserts the final coverage equals an
//! uninterrupted run's.

use std::sync::atomic::{AtomicU64, Ordering};

/// `u64::MAX` means "disarmed" (no real campaign addresses that run).
static ARMED_CURSOR: AtomicU64 = AtomicU64::new(u64::MAX);

/// Arms a one-shot kill at the batch starting at `cursor`. The panic
/// fires at most once (the compare-exchange disarms atomically), so the
/// post-restart campaign sails past the same cursor.
pub fn kill_once_at_cursor(cursor: u64) {
    ARMED_CURSOR.store(cursor, Ordering::SeqCst);
}

/// Disarms any pending kill.
pub fn disarm() {
    ARMED_CURSOR.store(u64::MAX, Ordering::SeqCst);
}

/// Called by the runner at every batch boundary.
pub(crate) fn maybe_kill(cursor: u64) {
    if ARMED_CURSOR
        .compare_exchange(cursor, u64::MAX, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        panic!("chaos: injected campaign kill at cursor {cursor}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_fires_exactly_once_at_the_armed_cursor() {
        disarm();
        maybe_kill(5); // disarmed: no panic
        kill_once_at_cursor(5);
        maybe_kill(4); // wrong cursor: no panic
        let err = std::panic::catch_unwind(|| maybe_kill(5));
        assert!(err.is_err(), "armed cursor must panic");
        maybe_kill(5); // one-shot: already disarmed
        disarm();
    }
}
