//! The FPC run family: seeded probabilistic-consensus runs streamed
//! through the campaign engine.
//!
//! An FPC campaign reuses the whole campaign chassis — batch-synchronous
//! worker fleet, per-index seed derivation, chaos kills, checkpointed
//! resume, violation dedup — but its runs are [`act_fpc`] simulations
//! instead of Algorithm 1 schedules. Run `i` simulates under
//! `derive_seed(campaign seed, i)` (the same SplitMix64 derivation
//! `fact-cli fpc` uses, so campaigns and ad-hoc batches sample identical
//! populations), and each run is judged against the FPC invariants:
//!
//! * `fpc-agreement-on-finalize` — finalized honest nodes agree;
//! * `fpc-monotone-finalization` — no opinion changes after finality;
//! * `fpc-seeded-replayability` — re-simulating `(spec, seed)`
//!   reproduces the trajectory fingerprint bit-for-bit.
//!
//! Coverage maps naturally: `steps` counts rounds, `live` counts fully
//! finalized runs, and `facets` collects distinct trajectory
//! fingerprints. Injected violations (the `--inject-liveness` indices)
//! flip one finalized node's opinion post-finalization — a synthetic
//! safety failure the first two invariants must both catch, which is the
//! forced-violation self-test CI runs.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use act_fpc::stats::derive_seed;
use act_fpc::{simulate_run, FpcOutcome, FpcSpec};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    append_checkpoint, load_latest_checkpoint, Checkpoint, Coverage, CHECKPOINT_SCHEMA_VERSION,
};
use crate::invariants::{
    resolve_invariant_names, FAMILY_FPC, INVARIANT_FPC_AGREEMENT, INVARIANT_FPC_MONOTONE,
    INVARIANT_FPC_REPLAY,
};
use crate::runner::CampaignReport;
use crate::signature::signature_hex;
use crate::{
    chaos, CampaignConfig, Scope, CAMPAIGN_ARTIFACTS, CAMPAIGN_CHECKPOINTS, CAMPAIGN_DEDUPED,
    CAMPAIGN_RUNS, CAMPAIGN_VIOLATIONS,
};

/// A violating FPC run, as found. FPC runs are pure functions of
/// `(spec, seed, injected)`, so the artifact *is* the replay recipe —
/// no trace shrinking applies.
#[derive(Clone, Debug)]
pub struct FpcViolation {
    /// The run's campaign index.
    pub index: u64,
    /// The derived per-run stream seed.
    pub seed: u64,
    /// Sorted names of the violated invariants.
    pub violated: Vec<String>,
    /// The run's outcome.
    pub outcome: FpcOutcome,
    /// Whether the violation was force-injected.
    pub injected: bool,
}

/// The persisted artifact for one deduplicated FPC violation: enough to
/// replay the run exactly (`simulate_run(spec, seed, injected)`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpcViolationArtifact {
    /// Artifact schema version (1).
    pub schema_version: u64,
    /// `fpc-campaign:<violated invariants, joined with +>`.
    pub reason: String,
    /// Canonical spec text of the workload.
    pub spec: String,
    /// The violating run's campaign index.
    pub run_index: u64,
    /// The violating run's derived stream seed.
    pub seed: u64,
    /// Whether the violation was force-injected.
    pub injected: bool,
    /// Rounds the run executed.
    pub rounds: u64,
    /// Honest nodes that finalized.
    pub finalized: u64,
    /// The run's trajectory fingerprint, as fixed-width hex.
    pub fingerprint: String,
}

/// Runs an FPC campaign (sampled tier only — the population is a seeded
/// sample space, not an enumerable schedule tree). Mirrors
/// [`run_campaign`](crate::run_campaign)'s resume/checkpoint contract:
/// coverage is worker-count invariant and a killed campaign resumes
/// from its last batch boundary.
pub fn run_fpc_campaign(config: &CampaignConfig) -> Result<CampaignReport, String> {
    let timer = act_obs::timer("campaign.fpc");
    let spec = FpcSpec::parse(&config.model)?;
    if config.batch == 0 {
        return Err("batch size must be at least 1".to_string());
    }
    if config.resume && config.checkpoint.is_none() {
        return Err("--resume requires a checkpoint file".to_string());
    }
    let samples = match config.scope {
        Scope::Sampled { samples } => samples,
        Scope::Exhaustive { .. } => {
            return Err(
                "fpc campaigns are sampled-only (seeded run populations have no \
                 exhaustive schedule tree); use --samples"
                    .to_string(),
            )
        }
    };
    let active = resolve_invariant_names(config.invariants.as_deref(), FAMILY_FPC)?;
    let fingerprint = config.fingerprint_hex();

    let mut state = FpcState {
        coverage: Coverage::default(),
        cursor: 0,
        done: false,
        sigs: BTreeSet::new(),
        artifacts_written: 0,
        new_artifacts: Vec::new(),
    };
    let mut resumed_from = 0;
    if config.resume {
        let path = config.checkpoint.as_ref().expect("checked above");
        if let Some(cp) = load_latest_checkpoint(path, &fingerprint)? {
            state.coverage = cp.coverage;
            state.cursor = cp.cursor;
            state.done = cp.done;
            state.sigs = cp.artifact_sigs.into_iter().collect();
            state.artifacts_written = cp.artifacts_written;
            resumed_from = cp.cursor;
        }
    }

    let injected = config.injected_indices();
    while !state.done && state.cursor < samples {
        chaos::maybe_kill(state.cursor);
        let end = (state.cursor + config.batch).min(samples);
        let (batch_coverage, violations) =
            run_fpc_batch(&spec, config, &active, &injected, state.cursor, end);
        state.coverage.absorb(&batch_coverage);
        state.cursor = end;
        state.done = state.cursor == samples;
        settle_fpc_batch(&spec, config, &fingerprint, violations, &mut state)?;
    }

    let elapsed_us = timer.elapsed_us().unwrap_or(0);
    timer
        .finish()
        .u64("cursor", state.cursor)
        .bool("done", state.done)
        .emit();
    Ok(CampaignReport {
        coverage: state.coverage,
        cursor: state.cursor,
        done: state.done,
        resumed_from,
        new_artifacts: state.new_artifacts,
        artifact_sigs: state.sigs.into_iter().collect(),
        elapsed_us,
    })
}

/// The mutable FPC campaign state a checkpoint line snapshots (same
/// shape as the adversarial tier's).
struct FpcState {
    coverage: Coverage,
    cursor: u64,
    done: bool,
    sigs: BTreeSet<String>,
    artifacts_written: u64,
    new_artifacts: Vec<PathBuf>,
}

/// Fans a contiguous index range out over the worker fleet. Each run is
/// a pure function of its index, so the merged coverage is identical
/// for any worker count.
fn run_fpc_batch(
    spec: &FpcSpec,
    config: &CampaignConfig,
    active: &[&'static str],
    injected: &[u64],
    start: u64,
    end: u64,
) -> (Coverage, Vec<FpcViolation>) {
    let count = end - start;
    let workers = (config.workers.max(1) as u64).min(count).max(1);
    let chunk = count.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = start + w * chunk;
            let hi = (lo + chunk).min(end);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || {
                let mut coverage = Coverage::default();
                let mut violations = Vec::new();
                for index in lo..hi {
                    execute_fpc_run(
                        spec,
                        config,
                        active,
                        injected,
                        index,
                        &mut coverage,
                        &mut violations,
                    );
                }
                (coverage, violations)
            }));
        }
        let mut coverage = Coverage::default();
        let mut violations = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok((c, v)) => {
                    coverage.absorb(&c);
                    violations.extend(v);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        violations.sort_by_key(|v| v.index);
        (coverage, violations)
    })
}

fn execute_fpc_run(
    spec: &FpcSpec,
    config: &CampaignConfig,
    active: &[&'static str],
    injected: &[u64],
    index: u64,
    coverage: &mut Coverage,
    violations: &mut Vec<FpcViolation>,
) {
    let seed = derive_seed(config.seed, index);
    let inject = injected.binary_search(&index).is_ok();
    let outcome = simulate_run(spec, seed, inject);

    let mut violated: Vec<String> = Vec::new();
    if active.contains(&INVARIANT_FPC_AGREEMENT) && !outcome.agreement_ok {
        violated.push(INVARIANT_FPC_AGREEMENT.to_string());
    }
    if active.contains(&INVARIANT_FPC_MONOTONE) && outcome.post_finalization_flips > 0 {
        violated.push(INVARIANT_FPC_MONOTONE.to_string());
    }
    if active.contains(&INVARIANT_FPC_REPLAY)
        && simulate_run(spec, seed, inject).fingerprint != outcome.fingerprint
    {
        violated.push(INVARIANT_FPC_REPLAY.to_string());
    }
    violated.sort();

    coverage.runs += 1;
    coverage.steps += outcome.rounds as u64;
    CAMPAIGN_RUNS.add(1);
    if outcome.terminated {
        coverage.live += 1;
    }
    coverage.facets.insert(outcome.fingerprint);
    if !violated.is_empty() {
        coverage.violations += 1;
        if inject {
            coverage.injected_violations += 1;
        }
        for name in &violated {
            *coverage
                .invariant_violations
                .entry(name.clone())
                .or_insert(0) += 1;
        }
        CAMPAIGN_VIOLATIONS.add(1);
        violations.push(FpcViolation {
            index,
            seed,
            violated,
            outcome,
            injected: inject,
        });
    }
}

/// Deduplicates and persists a batch's violations, then appends the
/// batch's checkpoint line (artifacts land before the checkpoint that
/// records their signatures, exactly like the adversarial tier).
/// Violations deduplicate by failure *shape* — `(spec, violated set,
/// injected)` — so a campaign that trips one invariant a thousand times
/// writes one artifact and counts 999 dedups.
fn settle_fpc_batch(
    spec: &FpcSpec,
    config: &CampaignConfig,
    fingerprint: &str,
    violations: Vec<FpcViolation>,
    state: &mut FpcState,
) -> Result<(), String> {
    let model = spec.canonical_string();
    for violation in violations {
        let sig_text = format!(
            "fact-fpc-violation|{model}|{}|injected={}",
            violation.violated.join("+"),
            violation.injected
        );
        let sig = signature_hex(act_obs::content_hash128(sig_text.as_bytes()));
        if state.sigs.insert(sig.clone()) {
            let path = write_fpc_artifact(
                config
                    .artifacts
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("target/campaign-artifacts"))
                    .as_path(),
                &sig,
                &model,
                &violation,
            )?;
            state.artifacts_written += 1;
            CAMPAIGN_ARTIFACTS.add(1);
            act_obs::event("campaign.fpc.artifact")
                .str("signature", &sig)
                .str("path", &path.display().to_string())
                .str("violated", &violation.violated.join("+"))
                .u64("run_index", violation.index)
                .emit();
            state.new_artifacts.push(path);
        } else {
            state.coverage.deduped += 1;
            CAMPAIGN_DEDUPED.add(1);
        }
    }
    if let Some(path) = &config.checkpoint {
        let checkpoint = Checkpoint {
            schema: CHECKPOINT_SCHEMA_VERSION,
            fingerprint: fingerprint.to_string(),
            cursor: state.cursor,
            done: state.done,
            coverage: state.coverage.clone(),
            artifact_sigs: state.sigs.iter().cloned().collect(),
            artifacts_written: state.artifacts_written,
        };
        append_checkpoint(path, &checkpoint)?;
        CAMPAIGN_CHECKPOINTS.add(1);
    }
    act_obs::event("campaign.fpc.batch")
        .u64("cursor", state.cursor)
        .u64("violations", state.coverage.violations)
        .bool("done", state.done)
        .emit();
    Ok(())
}

/// Writes one FPC violation artifact (atomically: temp file + rename,
/// keyed by signature so resumes rewrite byte-identical content).
fn write_fpc_artifact(
    dir: &Path,
    sig: &str,
    model: &str,
    violation: &FpcViolation,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating artifact dir {dir:?}: {e}"))?;
    let artifact = FpcViolationArtifact {
        schema_version: 1,
        reason: format!("fpc-campaign:{}", violation.violated.join("+")),
        spec: model.to_string(),
        run_index: violation.index,
        seed: violation.seed,
        injected: violation.injected,
        rounds: violation.outcome.rounds as u64,
        finalized: violation.outcome.finalized,
        fingerprint: format!("{:016x}", violation.outcome.fingerprint),
    };
    let json = serde_json::to_string_pretty(&artifact)
        .map_err(|e| format!("serializing artifact: {e}"))?;
    let path = dir.join(format!("fpc-campaign-{sig}.json"));
    let tmp = dir.join(format!(".fpc-campaign-{sig}.json.tmp"));
    std::fs::write(&tmp, json).map_err(|e| format!("writing artifact {tmp:?}: {e}"))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("publishing artifact {path:?}: {e}"))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(model: &str, samples: u64) -> CampaignConfig {
        let mut config = CampaignConfig::new(model);
        config.scope = Scope::Sampled { samples };
        config.batch = 50;
        config.solver_check = false;
        config.artifacts = Some(std::env::temp_dir().join(format!(
            "fact-fpc-artifacts-{}-{model_slug}",
            std::process::id(),
            model_slug = model.replace(':', "_")
        )));
        config
    }

    #[test]
    fn coverage_is_worker_count_invariant() {
        let mut one = config("fpc:16:4:berserk:5:500", 200);
        one.workers = 1;
        let mut four = one.clone();
        four.workers = 4;
        let a = run_fpc_campaign(&one).unwrap();
        let b = run_fpc_campaign(&four).unwrap();
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.cursor, 200);
        assert!(a.done);
        assert!(a.coverage.live > 0, "berserk at minority must finalize");
        assert!(
            a.coverage.facets.len() > 100,
            "trajectories must be diverse, got {}",
            a.coverage.facets.len()
        );
    }

    #[test]
    fn injected_flips_violate_and_dedup() {
        // The berserk minority at seed 0xFAC7 produces no organic
        // violations over this index range (pinned by a 20k-run sweep
        // over the same derived-seed population), so the two injections
        // account for every violation exactly.
        let mut cfg = config("fpc:32:8:berserk:10:700", 120);
        cfg.inject_liveness = vec![10, 70];
        let report = run_fpc_campaign(&cfg).unwrap();
        assert_eq!(report.coverage.violations, 2);
        assert_eq!(report.coverage.injected_violations, 2);
        // Both injections share one failure shape: one artifact, one dedup.
        assert_eq!(report.new_artifacts.len(), 1);
        assert_eq!(report.coverage.deduped, 1);
        assert_eq!(
            report.coverage.invariant_violations[INVARIANT_FPC_AGREEMENT],
            2
        );
        assert_eq!(
            report.coverage.invariant_violations[INVARIANT_FPC_MONOTONE],
            2
        );

        let json = std::fs::read_to_string(&report.new_artifacts[0]).unwrap();
        let artifact: FpcViolationArtifact = serde_json::from_str(&json).unwrap();
        assert_eq!(artifact.spec, "fpc:32:8:berserk:10:700");
        assert!(artifact.injected);
        assert_eq!(artifact.run_index, 10);
        // The artifact replays: same (spec, seed, injected) reproduces
        // the recorded fingerprint.
        let spec = FpcSpec::parse(&artifact.spec).unwrap();
        let replay = simulate_run(&spec, artifact.seed, artifact.injected);
        assert_eq!(format!("{:016x}", replay.fingerprint), artifact.fingerprint);
        assert!(!replay.agreement_ok);
    }

    #[test]
    fn killed_campaign_resumes_to_identical_final_coverage() {
        let dir = std::env::temp_dir().join(format!("fact-fpc-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let full = config("fpc:16:4:berserk:5:500", 150);
        let uninterrupted = run_fpc_campaign(&full).unwrap();

        // Same campaign, killed at the batch boundary at cursor 100,
        // then resumed (under a different worker count, which must not
        // matter).
        let mut victim = full.clone();
        victim.checkpoint = Some(dir.join("fpc.jsonl"));
        chaos::kill_once_at_cursor(100);
        let panic =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_fpc_campaign(&victim)));
        chaos::disarm();
        assert!(panic.is_err(), "the armed kill must abort the campaign");

        let mut resumed_config = victim.clone();
        resumed_config.resume = true;
        resumed_config.workers = 3;
        let resumed = run_fpc_campaign(&resumed_config).unwrap();
        assert_eq!(resumed.resumed_from, 100);
        assert_eq!(resumed.cursor, 150);
        assert!(resumed.done);
        assert_eq!(resumed.coverage, uninterrupted.coverage);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhaustive_scope_and_wrong_family_are_rejected() {
        let mut cfg = config("fpc:8:0:cautious", 10);
        cfg.scope = Scope::Exhaustive { max_depth: 3 };
        assert!(run_fpc_campaign(&cfg).unwrap_err().contains("sampled-only"));

        let mut cfg = config("fpc:8:0:cautious", 10);
        cfg.invariants = Some(vec!["liveness-fair".to_string()]);
        let err = run_fpc_campaign(&cfg).unwrap_err();
        assert!(err.contains("adversarial"), "{err}");

        let bad = config("fpc:8:8:cautious", 10);
        assert!(run_fpc_campaign(&bad).is_err(), "bad spec must fail");
    }

    #[test]
    fn invariant_selection_narrows_judging() {
        // With only the replay invariant active, injected flips are not
        // violations at all.
        let mut cfg = config("fpc:16:0:cautious:5:800", 60);
        cfg.inject_liveness = vec![5];
        cfg.invariants = Some(vec![INVARIANT_FPC_REPLAY.to_string()]);
        let report = run_fpc_campaign(&cfg).unwrap();
        assert_eq!(report.coverage.violations, 0);
        assert!(report.new_artifacts.is_empty());
    }
}
