//! The pluggable run-level invariants a campaign mines for, and the
//! [`MonotonicityGuard`] wrapper that watches a run for termination
//! regressions as it executes.
//!
//! Each invariant inspects one completed run (its [`RunRecord`]) in the
//! context of the campaign's model ([`CampaignContext`]) and either
//! passes or reports a violation message. The default set:
//!
//! * [`INVARIANT_LIVENESS`] — under a fair adversary every correct
//!   process must decide (FACT Lemmas 5–6); exempt for exhaustive-tier
//!   runs cut off by the depth bound, which are truncations rather than
//!   fair schedules;
//! * [`INVARIANT_MONOTONICITY`] — termination is monotone: a process
//!   that has decided stays decided, and `step`'s return value agrees
//!   with `has_terminated`;
//! * [`INVARIANT_VERDICT`] — when the solver says the model's
//!   set-consensus task is solvable via `R_A`, every live run's outputs
//!   must resolve to a simplex of `R_A`'s complex (run/solver
//!   agreement);
//! * [`INVARIANT_WELLFORMED`] — the run's trace is internally
//!   consistent (schedule length, participant membership, crash
//!   budgets) and survives a JSON round-trip.

use act_runtime::{FaultPlan, RunOutcome, System, Trace};
use act_topology::{ColorSet, ProcessId};
use fact::{outputs_to_simplex, AlgorithmOneOutput};

use crate::runner::CampaignContext;

/// Name of the fair-schedule liveness invariant.
pub const INVARIANT_LIVENESS: &str = "liveness-fair";
/// Name of the correct-set monotonicity invariant.
pub const INVARIANT_MONOTONICITY: &str = "correct-set-monotonicity";
/// Name of the run/solver verdict-agreement invariant.
pub const INVARIANT_VERDICT: &str = "verdict-agreement";
/// Name of the trace well-formedness invariant.
pub const INVARIANT_WELLFORMED: &str = "trace-wellformed";

/// Name of the FPC finalized-nodes-agree invariant.
pub const INVARIANT_FPC_AGREEMENT: &str = "fpc-agreement-on-finalize";
/// Name of the FPC no-post-finalization-flips invariant.
pub const INVARIANT_FPC_MONOTONE: &str = "fpc-monotone-finalization";
/// Name of the FPC replay-fingerprint invariant.
pub const INVARIANT_FPC_REPLAY: &str = "fpc-seeded-replayability";

/// The adversarial (Algorithm 1 scheduling) run family.
pub const FAMILY_ADVERSARIAL: &str = "adversarial";
/// The FPC (probabilistic consensus) run family.
pub const FAMILY_FPC: &str = "fpc";

/// One registry row: an invariant's stable name, the run family whose
/// campaigns check it, and a one-line description.
#[derive(Clone, Copy, Debug)]
pub struct InvariantInfo {
    /// The invariant's stable name (what `--invariants` selects).
    pub name: &'static str,
    /// The run family (`adversarial` or `fpc`) it applies to.
    pub family: &'static str,
    /// A one-line human-readable description.
    pub description: &'static str,
}

/// Every invariant the campaign engine knows, across both run families,
/// in a fixed order (the `--list-invariants` table).
pub fn invariant_registry() -> Vec<InvariantInfo> {
    let mut rows: Vec<InvariantInfo> = default_invariants()
        .iter()
        .map(|inv| InvariantInfo {
            name: inv.name(),
            family: FAMILY_ADVERSARIAL,
            description: inv.description(),
        })
        .collect();
    rows.extend([
        InvariantInfo {
            name: INVARIANT_FPC_AGREEMENT,
            family: FAMILY_FPC,
            description: "every pair of finalized honest nodes holds the same opinion",
        },
        InvariantInfo {
            name: INVARIANT_FPC_MONOTONE,
            family: FAMILY_FPC,
            description: "a finalized node's opinion never changes afterwards",
        },
        InvariantInfo {
            name: INVARIANT_FPC_REPLAY,
            family: FAMILY_FPC,
            description: "re-simulating (spec, seed) reproduces the trajectory fingerprint",
        },
    ]);
    rows
}

/// Resolves a `--invariants` selection against the registry for one run
/// family. `None` selects the family's full set; `Some` names must all
/// exist (a usage error otherwise — the CLI exits 2) and belong to
/// `family`. Returns the active names in registry order.
pub fn resolve_invariant_names(
    selection: Option<&[String]>,
    family: &str,
) -> Result<Vec<&'static str>, String> {
    let registry = invariant_registry();
    let Some(selection) = selection else {
        return Ok(registry
            .iter()
            .filter(|info| info.family == family)
            .map(|info| info.name)
            .collect());
    };
    let mut selected: Vec<&'static str> = Vec::new();
    for name in selection {
        let Some(info) = registry.iter().find(|info| info.name == name) else {
            return Err(format!(
                "unknown invariant {name:?} (fact-cli campaign --list-invariants shows the registry)"
            ));
        };
        if info.family != family {
            return Err(format!(
                "invariant {name:?} belongs to the {} run family, but this campaign runs the \
                 {family} family",
                info.family
            ));
        }
        if !selected.contains(&info.name) {
            selected.push(info.name);
        }
    }
    if selected.is_empty() {
        return Err("at least one invariant must be selected".to_string());
    }
    // Registry order, not selection order, so campaigns are spelled-order
    // independent.
    Ok(registry
        .iter()
        .filter(|info| selected.contains(&info.name))
        .map(|info| info.name)
        .collect())
}

/// The adversarial invariant set a selection activates, in the fixed
/// default order (the whole set for `None`).
pub fn selected_invariants(
    selection: Option<&[String]>,
) -> Result<Vec<Box<dyn Invariant>>, String> {
    let names = resolve_invariant_names(selection, FAMILY_ADVERSARIAL)?;
    Ok(default_invariants()
        .into_iter()
        .filter(|inv| names.contains(&inv.name()))
        .collect())
}

/// Everything an invariant may inspect about one completed run.
pub struct RunRecord<'a> {
    /// The run's outcome (schedule, termination, liveness judgement).
    pub outcome: &'a RunOutcome,
    /// The participating processes.
    pub participants: ColorSet,
    /// Whether the run was cut off by an exploration depth bound (the
    /// liveness invariant does not apply to truncated runs).
    pub truncated_by_depth: bool,
    /// Whether the [`MonotonicityGuard`] observed no regression.
    pub monotonicity_ok: bool,
    /// The outputs the system's decided processes produced.
    pub outputs: &'a [AlgorithmOneOutput],
    /// The fault plan the run was driven under, if any.
    pub fault_plan: Option<&'a FaultPlan>,
    /// The scheduler step bound the run was driven under.
    pub max_steps: usize,
}

/// A run-level invariant a campaign checks on every run.
pub trait Invariant: Send + Sync {
    /// The invariant's stable name (used in signatures, coverage maps,
    /// and artifact reasons).
    fn name(&self) -> &'static str;
    /// A one-line description (the `--list-invariants` registry row).
    fn description(&self) -> &'static str;
    /// Checks one run; `Err` carries a human-readable violation message.
    fn check(&self, ctx: &CampaignContext, run: &RunRecord<'_>) -> Result<(), String>;
}

/// The default invariant set, in a fixed order.
pub fn default_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(LivenessFair),
        Box::new(CorrectSetMonotonicity),
        Box::new(VerdictAgreement),
        Box::new(TraceWellFormed),
    ]
}

/// Checks `run` against every invariant; returns the sorted names of
/// the violated ones (empty for a clean run).
pub fn check_all(
    invariants: &[Box<dyn Invariant>],
    ctx: &CampaignContext,
    run: &RunRecord<'_>,
) -> Vec<String> {
    let mut violated: Vec<String> = invariants
        .iter()
        .filter(|inv| inv.check(ctx, run).is_err())
        .map(|inv| inv.name().to_string())
        .collect();
    violated.sort();
    violated
}

struct LivenessFair;

impl Invariant for LivenessFair {
    fn name(&self) -> &'static str {
        INVARIANT_LIVENESS
    }

    fn description(&self) -> &'static str {
        "every correct process decides within the step bound of a fair schedule"
    }

    fn check(&self, _ctx: &CampaignContext, run: &RunRecord<'_>) -> Result<(), String> {
        if run.truncated_by_depth || run.outcome.all_correct_terminated {
            Ok(())
        } else {
            Err(format!(
                "correct set {:?} did not terminate within {} steps of a fair schedule \
                 (terminated: {:?})",
                run.outcome.correct, run.max_steps, run.outcome.terminated
            ))
        }
    }
}

struct CorrectSetMonotonicity;

impl Invariant for CorrectSetMonotonicity {
    fn name(&self) -> &'static str {
        INVARIANT_MONOTONICITY
    }

    fn description(&self) -> &'static str {
        "a terminated process stays terminated and `step` agrees with `has_terminated`"
    }

    fn check(&self, _ctx: &CampaignContext, run: &RunRecord<'_>) -> Result<(), String> {
        if run.monotonicity_ok {
            Ok(())
        } else {
            Err(
                "a process regressed from terminated to running (or `step` disagreed \
                 with `has_terminated`)"
                    .to_string(),
            )
        }
    }
}

struct VerdictAgreement;

impl Invariant for VerdictAgreement {
    fn name(&self) -> &'static str {
        INVARIANT_VERDICT
    }

    fn description(&self) -> &'static str {
        "live runs' outputs resolve to a simplex of R_A when the solver says solvable"
    }

    fn check(&self, ctx: &CampaignContext, run: &RunRecord<'_>) -> Result<(), String> {
        // Falsifiable only for live runs with outputs, and only when the
        // solver committed to "solvable via R_A" for this model.
        if !run.outcome.all_correct_terminated
            || run.outputs.is_empty()
            || ctx.solver_solvable != Some(true)
        {
            return Ok(());
        }
        match outputs_to_simplex(ctx.affine.complex(), run.outputs) {
            Some(simplex) if ctx.affine.complex().contains_simplex(&simplex) => Ok(()),
            Some(simplex) => Err(format!(
                "decided outputs resolve to {simplex:?}, which is not a simplex of R_A \
                 although the solver found the task solvable via R_A"
            )),
            None => Err(
                "decided outputs do not resolve to any simplex of Chr² s although the \
                 solver found the task solvable via R_A"
                    .to_string(),
            ),
        }
    }
}

struct TraceWellFormed;

impl Invariant for TraceWellFormed {
    fn name(&self) -> &'static str {
        INVARIANT_WELLFORMED
    }

    fn description(&self) -> &'static str {
        "the trace is internally consistent and survives a JSON round-trip"
    }

    fn check(&self, _ctx: &CampaignContext, run: &RunRecord<'_>) -> Result<(), String> {
        let outcome = run.outcome;
        if outcome.schedule.len() != outcome.steps {
            return Err(format!(
                "schedule length {} disagrees with step count {}",
                outcome.schedule.len(),
                outcome.steps
            ));
        }
        for p in &outcome.schedule {
            if !run.participants.contains(*p) {
                return Err(format!("scheduled process {p:?} is not a participant"));
            }
        }
        for (index, budget) in outcome.crash_budgets.iter().enumerate() {
            if let Some(budget) = budget {
                let taken = outcome
                    .schedule
                    .iter()
                    .filter(|p| p.index() == index)
                    .count() as u32;
                if taken > *budget {
                    return Err(format!(
                        "process {index} took {taken} steps against a crash budget of {budget}"
                    ));
                }
            }
        }
        let trace = Trace::from_outcome(run.participants, outcome);
        let json =
            serde_json::to_string(&trace).map_err(|e| format!("trace failed to serialize: {e}"))?;
        let back: Trace = serde_json::from_str(&json)
            .map_err(|e| format!("trace failed to round-trip through JSON: {e}"))?;
        if back != trace {
            return Err("trace changed under a JSON round-trip".to_string());
        }
        Ok(())
    }
}

/// A [`System`] wrapper that observes every step for termination
/// monotonicity. Clone-safe, so the exhaustive tier can fork it through
/// [`explore_iter`](act_runtime::explore_iter): each branch carries its
/// own observation state.
#[derive(Clone)]
pub struct MonotonicityGuard<S> {
    inner: S,
    terminated: Vec<bool>,
    ok: bool,
}

impl<S: System> MonotonicityGuard<S> {
    /// Wraps `inner`, snapshotting its current termination state.
    pub fn new(inner: S) -> MonotonicityGuard<S> {
        let terminated = (0..inner.num_processes())
            .map(|i| inner.has_terminated(ProcessId::new(i)))
            .collect();
        MonotonicityGuard {
            inner,
            terminated,
            ok: true,
        }
    }

    /// The wrapped system.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Whether no monotonicity regression has been observed.
    pub fn ok(&self) -> bool {
        self.ok
    }
}

impl<S: System> System for MonotonicityGuard<S> {
    fn step(&mut self, p: ProcessId) -> bool {
        let result = self.inner.step(p);
        if result != self.inner.has_terminated(p) {
            self.ok = false;
        }
        for (index, was) in self.terminated.iter_mut().enumerate() {
            let now = self.inner.has_terminated(ProcessId::new(index));
            if *was && !now {
                self.ok = false;
            }
            *was = now;
        }
        result
    }

    fn has_terminated(&self, p: ProcessId) -> bool {
        self.inner.has_terminated(p)
    }

    fn num_processes(&self) -> usize {
        self.inner.num_processes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Terminates process 0 after two steps, then — when `regress` is
    /// set — forgets the termination on the step after that.
    #[derive(Clone)]
    struct Flaky {
        count: usize,
        regress: bool,
    }

    impl System for Flaky {
        fn step(&mut self, p: ProcessId) -> bool {
            if p.index() == 0 {
                self.count += 1;
                if self.regress && self.count == 3 {
                    self.count = 0; // un-terminates process 0
                }
            }
            self.has_terminated(p)
        }
        fn has_terminated(&self, p: ProcessId) -> bool {
            p.index() == 0 && self.count >= 2
        }
        fn num_processes(&self) -> usize {
            2
        }
    }

    #[test]
    fn guard_accepts_monotone_termination() {
        let mut guard = MonotonicityGuard::new(Flaky {
            count: 0,
            regress: false,
        });
        for _ in 0..4 {
            guard.step(ProcessId::new(0));
        }
        assert!(guard.ok());
        assert!(guard.inner().has_terminated(ProcessId::new(0)));
    }

    #[test]
    fn registry_names_families_and_selection() {
        let registry = invariant_registry();
        assert_eq!(registry.len(), 7);
        let adversarial: Vec<&str> = registry
            .iter()
            .filter(|i| i.family == FAMILY_ADVERSARIAL)
            .map(|i| i.name)
            .collect();
        assert_eq!(
            adversarial,
            vec![
                INVARIANT_LIVENESS,
                INVARIANT_MONOTONICITY,
                INVARIANT_VERDICT,
                INVARIANT_WELLFORMED
            ]
        );
        let fpc: Vec<&str> = registry
            .iter()
            .filter(|i| i.family == FAMILY_FPC)
            .map(|i| i.name)
            .collect();
        assert_eq!(
            fpc,
            vec![
                INVARIANT_FPC_AGREEMENT,
                INVARIANT_FPC_MONOTONE,
                INVARIANT_FPC_REPLAY
            ]
        );

        // None selects the whole family; Some resolves in registry order
        // regardless of spelling order.
        assert_eq!(resolve_invariant_names(None, FAMILY_FPC).unwrap(), fpc);
        let spelled = vec![
            INVARIANT_WELLFORMED.to_string(),
            INVARIANT_LIVENESS.to_string(),
        ];
        assert_eq!(
            resolve_invariant_names(Some(&spelled), FAMILY_ADVERSARIAL).unwrap(),
            vec![INVARIANT_LIVENESS, INVARIANT_WELLFORMED]
        );
        let boxed = selected_invariants(Some(&spelled)).unwrap();
        assert_eq!(boxed.len(), 2);
        assert_eq!(boxed[0].name(), INVARIANT_LIVENESS);

        // Unknown names and cross-family selections are usage errors.
        assert!(resolve_invariant_names(Some(&["nope".to_string()]), FAMILY_FPC).is_err());
        assert!(
            resolve_invariant_names(Some(&[INVARIANT_LIVENESS.to_string()]), FAMILY_FPC).is_err()
        );
        assert!(resolve_invariant_names(Some(&[]), FAMILY_FPC).is_err());
    }

    #[test]
    fn guard_flags_a_termination_regression() {
        let mut guard = MonotonicityGuard::new(Flaky {
            count: 0,
            regress: true,
        });
        for _ in 0..3 {
            guard.step(ProcessId::new(0));
        }
        assert!(!guard.ok());
    }
}
