//! Canonical violation signatures: the campaign's failure-dedup key.
//!
//! Two violating runs are *the same failure* exactly when their shrunk
//! traces normalize to the same canonical text — participants, correct
//! set, crash budgets, the normalized event (step) sequence, the
//! residual fault events, and the **sorted set of violated invariant
//! names**. Including the violated set is what guarantees dedup never
//! merges runs that broke different invariants, even when their traces
//! coincide. The text is hashed with the verdict store's
//! content-address machinery ([`act_obs::content_hash128`]), so
//! campaign artifact names and store keys are computed identically.

use std::fmt::Write as _;

use act_runtime::{FaultEvent, Trace};

/// The canonical text a signature hashes. Exposed for tests that want
/// to assert *why* two signatures differ.
pub fn canonical_text(model: &str, trace: &Trace, violated: &[String]) -> String {
    let mut text = String::new();
    let _ = write!(text, "campaign-violation|model={model}");
    let _ = write!(text, "|participants={:x}", trace.participants.bits());
    match trace.correct {
        Some(correct) => {
            let _ = write!(text, "|correct={:x}", correct.bits());
        }
        None => text.push_str("|correct=-"),
    }
    text.push_str("|budgets=");
    match &trace.crash_budgets {
        Some(budgets) => {
            for (i, b) in budgets.iter().enumerate() {
                if i > 0 {
                    text.push(',');
                }
                match b {
                    Some(b) => {
                        let _ = write!(text, "{b}");
                    }
                    None => text.push('-'),
                }
            }
        }
        None => text.push('-'),
    }
    text.push_str("|steps=");
    for (i, s) in trace.steps.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        let _ = write!(text, "{s}");
    }
    text.push_str("|faults=");
    if let Some(plan) = &trace.fault_plan {
        for (i, event) in plan.events.iter().enumerate() {
            if i > 0 {
                text.push(';');
            }
            match event {
                FaultEvent::Crash { step, process } => {
                    let _ = write!(text, "crash@{step}:p{process}");
                }
                FaultEvent::Stall {
                    process,
                    from_step,
                    duration,
                } => {
                    let _ = write!(text, "stall:p{process}@{from_step}+{duration}");
                }
                FaultEvent::Perturb { step, offset } => {
                    let _ = write!(text, "perturb@{step}:{offset}");
                }
            }
        }
    }
    let mut violated: Vec<&str> = violated.iter().map(String::as_str).collect();
    violated.sort_unstable();
    violated.dedup();
    let _ = write!(text, "|violated={}", violated.join("+"));
    text
}

/// The 128-bit signature of a (normally shrunk) violating trace.
pub fn violation_signature(model: &str, trace: &Trace, violated: &[String]) -> u128 {
    act_obs::content_hash128(canonical_text(model, trace, violated).as_bytes())
}

/// Renders a signature as the 32-hex-digit form used in artifact file
/// names and checkpoint dedup sets.
pub fn signature_hex(signature: u128) -> String {
    format!("{signature:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_runtime::{FaultPlan, RunOutcome};
    use act_topology::{ColorSet, ProcessId};

    fn trace() -> Trace {
        let outcome = RunOutcome {
            steps: 3,
            terminated: ColorSet::from_indices([0]),
            all_correct_terminated: false,
            schedule: vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(0)],
            correct: ColorSet::full(3),
            crash_budgets: vec![None, Some(2), None],
        };
        Trace::from_outcome(ColorSet::full(3), &outcome)
    }

    #[test]
    fn signature_is_deterministic() {
        let violated = vec!["liveness-fair".to_string()];
        assert_eq!(
            violation_signature("t-res:3:1", &trace(), &violated),
            violation_signature("t-res:3:1", &trace(), &violated),
        );
    }

    #[test]
    fn distinct_violated_invariant_sets_never_collide() {
        let one = vec!["liveness-fair".to_string()];
        let two = vec![
            "liveness-fair".to_string(),
            "correct-set-monotonicity".to_string(),
        ];
        assert_ne!(
            violation_signature("t-res:3:1", &trace(), &one),
            violation_signature("t-res:3:1", &trace(), &two),
        );
    }

    #[test]
    fn violated_order_does_not_matter() {
        let ab = vec!["a".to_string(), "b".to_string()];
        let ba = vec!["b".to_string(), "a".to_string()];
        assert_eq!(
            violation_signature("m", &trace(), &ab),
            violation_signature("m", &trace(), &ba),
        );
    }

    #[test]
    fn schedule_model_and_faults_feed_the_signature() {
        let violated = vec!["liveness-fair".to_string()];
        let base = trace();
        assert_ne!(
            violation_signature("t-res:3:1", &base, &violated),
            violation_signature("wait-free:3", &base, &violated),
        );
        let mut shorter = base.clone();
        shorter.steps.pop();
        assert_ne!(
            violation_signature("m", &base, &violated),
            violation_signature("m", &shorter, &violated),
        );
        let faulted = base.clone().with_fault_plan(FaultPlan::seeded(7, 3, 16));
        assert_ne!(
            violation_signature("m", &base, &violated),
            violation_signature("m", &faulted, &violated),
        );
    }
}
