//! JSON-lines campaign checkpoints: one self-contained record per batch,
//! appended with a single atomic write, so a killed campaign resumes
//! from its last completed batch with exact coverage.
//!
//! The file is append-only and torn-tail tolerant: loading scans every
//! line, ignores any that fails to parse (a write cut short by the
//! kill), and returns the *last* valid record whose fingerprint matches
//! the resuming campaign's. A file whose valid records all belong to a
//! different fingerprint is an error, never silently restarted.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Version stamp carried by every checkpoint line.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// Additive coverage counters for a campaign (or a batch of it). All
/// fields merge commutatively via [`absorb`](Coverage::absorb), which is
/// what makes per-batch worker fan-out and checkpoint resume exact.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    /// Runs executed.
    pub runs: u64,
    /// Scheduler steps executed across all runs.
    pub steps: u64,
    /// Runs whose whole correct set terminated.
    pub live: u64,
    /// Runs that violated at least one invariant.
    pub violations: u64,
    /// Violating runs that were force-injected (`--inject-liveness`).
    pub injected_violations: u64,
    /// Violations whose shrunk signature matched an existing artifact.
    pub deduped: u64,
    /// Runs driven under a fault plan.
    pub faulted_runs: u64,
    /// Fault events actually applied by the injector.
    pub faults_applied: u64,
    /// Content hashes of the distinct `R_A` facets (well, simplices of
    /// `Chr² s`) that completed runs decided into.
    pub facets: BTreeSet<u64>,
    /// Violation counts per invariant name.
    pub invariant_violations: BTreeMap<String, u64>,
}

impl Coverage {
    /// Merges `other` into `self` (commutative and associative).
    pub fn absorb(&mut self, other: &Coverage) {
        self.runs += other.runs;
        self.steps += other.steps;
        self.live += other.live;
        self.violations += other.violations;
        self.injected_violations += other.injected_violations;
        self.deduped += other.deduped;
        self.faulted_runs += other.faulted_runs;
        self.faults_applied += other.faults_applied;
        self.facets.extend(other.facets.iter().copied());
        for (name, count) in &other.invariant_violations {
            *self.invariant_violations.entry(name.clone()).or_insert(0) += count;
        }
    }
}

/// One checkpoint line: the campaign's complete resumable state after a
/// batch (there is deliberately nothing else to restore).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Checkpoint schema version ([`CHECKPOINT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// The owning campaign's configuration fingerprint.
    pub fingerprint: String,
    /// Runs completed so far (the next batch starts here).
    pub cursor: u64,
    /// Whether the campaign's population is exhausted.
    pub done: bool,
    /// Coverage accumulated through `cursor`.
    pub coverage: Coverage,
    /// Signatures of artifacts written so far (sorted), the dedup set.
    pub artifact_sigs: Vec<String>,
    /// Artifacts written so far (equals `artifact_sigs.len()`, kept as a
    /// counter for the report).
    pub artifacts_written: u64,
}

/// Appends one checkpoint line to `path` (creating the file and parent
/// directories on first use). The line is serialized fully before a
/// single `write_all`, so a concurrent reader sees either the whole
/// record or a torn tail that loading skips.
pub fn append_checkpoint(path: &Path, checkpoint: &Checkpoint) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating checkpoint directory {parent:?}: {e}"))?;
        }
    }
    let mut line =
        serde_json::to_string(checkpoint).map_err(|e| format!("serializing checkpoint: {e}"))?;
    line.push('\n');
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("opening checkpoint file {path:?}: {e}"))?;
    file.write_all(line.as_bytes())
        .map_err(|e| format!("appending checkpoint to {path:?}: {e}"))?;
    file.flush()
        .map_err(|e| format!("flushing checkpoint to {path:?}: {e}"))?;
    Ok(())
}

/// Loads the most recent valid checkpoint for `fingerprint` from `path`.
///
/// Returns `Ok(None)` when the file does not exist or holds no valid
/// record. Unparseable lines (torn tails, stray garbage) are skipped;
/// a file whose valid records belong only to a *different* fingerprint
/// is rejected so one campaign cannot resume another's state.
pub fn load_latest_checkpoint(
    path: &Path,
    fingerprint: &str,
) -> Result<Option<Checkpoint>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("reading checkpoint file {path:?}: {e}")),
    };
    let mut latest: Option<Checkpoint> = None;
    let mut foreign = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(cp) = serde_json::from_str::<Checkpoint>(line) else {
            continue; // torn tail or corruption: a skipped line, never an abort
        };
        if cp.schema != CHECKPOINT_SCHEMA_VERSION {
            continue;
        }
        if cp.fingerprint == fingerprint {
            latest = Some(cp);
        } else {
            foreign = true;
        }
    }
    if latest.is_none() && foreign {
        return Err(format!(
            "checkpoint file {path:?} belongs to a different campaign (fingerprint mismatch)"
        ));
    }
    Ok(latest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint(fingerprint: &str, cursor: u64) -> Checkpoint {
        let mut coverage = Coverage {
            runs: cursor,
            steps: 10 * cursor,
            live: cursor / 2,
            ..Coverage::default()
        };
        coverage.facets.insert(cursor);
        coverage
            .invariant_violations
            .insert("liveness-fair".into(), 1);
        Checkpoint {
            schema: CHECKPOINT_SCHEMA_VERSION,
            fingerprint: fingerprint.to_string(),
            cursor,
            done: false,
            coverage,
            artifact_sigs: vec![format!("{cursor:032x}")],
            artifacts_written: 1,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("act-campaign-ckpt-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("ckpt.jsonl")
    }

    #[test]
    fn append_and_load_round_trip_keeps_the_latest() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_latest_checkpoint(&path, "f1").unwrap(), None);
        append_checkpoint(&path, &checkpoint("f1", 100)).unwrap();
        append_checkpoint(&path, &checkpoint("f1", 200)).unwrap();
        let loaded = load_latest_checkpoint(&path, "f1").unwrap().unwrap();
        assert_eq!(loaded, checkpoint("f1", 200));
    }

    #[test]
    fn torn_tail_is_skipped() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        append_checkpoint(&path, &checkpoint("f1", 100)).unwrap();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"schema\":1,\"fingerprint\":\"f1\",\"curso")
            .unwrap();
        drop(file);
        let loaded = load_latest_checkpoint(&path, "f1").unwrap().unwrap();
        assert_eq!(loaded.cursor, 100);
    }

    #[test]
    fn foreign_fingerprint_is_rejected_not_restarted() {
        let path = temp_path("foreign");
        let _ = std::fs::remove_file(&path);
        append_checkpoint(&path, &checkpoint("theirs", 100)).unwrap();
        let err = load_latest_checkpoint(&path, "ours").unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn coverage_absorb_is_commutative() {
        let (a, b) = (checkpoint("f", 3).coverage, checkpoint("f", 7).coverage);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.runs, 10);
        assert_eq!(ab.invariant_violations["liveness-fair"], 2);
    }
}
