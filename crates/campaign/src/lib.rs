//! `act-campaign` — a million-run randomized campaign runner over the
//! FACT reproduction's adversarial schedulers, with invariant mining,
//! failure deduplication, and auto-shrinking.
//!
//! A *campaign* drives a large population of runs of Algorithm 1 under
//! one adversary model, each run drawn deterministically from a campaign
//! seed: a correct set (one of the adversary's live sets), per-process
//! crash budgets, an adversarial-scheduler RNG seed, and optionally a
//! seeded [`FaultPlan`](act_runtime::FaultPlan) from the chaos layer.
//! Two tiers share one engine:
//!
//! * **exhaustive** — bounded breadth-first enumeration of *every*
//!   schedule up to a depth, streamed through
//!   [`explore_iter`](act_runtime::explore_iter) so the run set is never
//!   materialized (the golden-count suite pins the analytic counts);
//! * **sampled** — seeded, resumable sampling for populations far beyond
//!   enumeration (millions of schedule × fault-plan draws), fanned out
//!   over a batch-synchronous worker fleet whose per-index derivation
//!   makes coverage independent of the worker count.
//!
//! Every run is judged against a pluggable set of [`Invariant`]s
//! (liveness under fair schedules per FACT Lemmas 5–6, correct-set
//! monotonicity, output agreement with the solver's `R_A` verdict, and
//! trace well-formedness). Violations are auto-shrunk by greedy
//! round/process/fault deletion with replay-verified reproduction
//! ([`shrink_violation`]), deduplicated by a canonical trace signature
//! sharing the verdict store's content-hash machinery
//! ([`violation_signature`]), and persisted as replayable
//! [`TraceArtifact`](act_runtime::TraceArtifact)s.
//!
//! Progress is checkpointed as JSON lines ([`checkpoint`]): one atomic
//! append per batch, so a killed campaign resumes from its last batch
//! boundary with *exactly* the coverage counters an uninterrupted run
//! would have produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod fpc;
pub mod invariants;
pub mod runner;
pub mod shrink;
pub mod signature;

use std::path::PathBuf;

use act_obs::Counter;

pub use checkpoint::{append_checkpoint, load_latest_checkpoint, Checkpoint, Coverage};
pub use fpc::run_fpc_campaign;
pub use invariants::{
    check_all, default_invariants, invariant_registry, resolve_invariant_names,
    selected_invariants, Invariant, InvariantInfo, MonotonicityGuard, RunRecord,
    FAMILY_ADVERSARIAL, FAMILY_FPC, INVARIANT_FPC_AGREEMENT, INVARIANT_FPC_MONOTONE,
    INVARIANT_FPC_REPLAY, INVARIANT_LIVENESS, INVARIANT_MONOTONICITY, INVARIANT_VERDICT,
    INVARIANT_WELLFORMED,
};
pub use runner::{
    evaluate_trace, run_campaign, run_campaign_in, CampaignContext, CampaignReport, Violation,
};
pub use shrink::shrink_violation;
pub use signature::{signature_hex, violation_signature};

/// Runs executed by campaigns in this process.
pub static CAMPAIGN_RUNS: Counter = Counter::new("campaign.runs");
/// Invariant violations observed (before dedup).
pub static CAMPAIGN_VIOLATIONS: Counter = Counter::new("campaign.violations");
/// Checkpoint lines appended.
pub static CAMPAIGN_CHECKPOINTS: Counter = Counter::new("campaign.checkpoints");
/// Shrunk artifacts written (after dedup).
pub static CAMPAIGN_ARTIFACTS: Counter = Counter::new("campaign.artifacts");
/// Violations merged into an already-written artifact.
pub static CAMPAIGN_DEDUPED: Counter = Counter::new("campaign.deduped");

/// The step bound used for injected-violation runs: far too few steps
/// for any correct process of Algorithm 1 to decide, so the run is a
/// guaranteed (synthetic) liveness failure.
pub const INJECTED_MAX_STEPS: usize = 2;

/// Which population of runs a campaign draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Enumerate every schedule of the full participant set up to
    /// `max_depth` steps, breadth-first, with no fault injection.
    Exhaustive {
        /// The schedule depth bound.
        max_depth: usize,
    },
    /// Draw `samples` seeded runs (correct set, crash budgets, scheduler
    /// seed, optional fault plan — all derived per index).
    Sampled {
        /// The number of runs to draw.
        samples: u64,
    },
}

/// A campaign's full configuration. Everything that shapes the *run
/// population* (model, scope, seed, step bound, fault rate, injected
/// indices, solver check) feeds the [fingerprint](Self::fingerprint_hex)
/// that checkpoints are keyed by; operational knobs (workers, batch
/// size, paths) deliberately do not, so a campaign can resume under a
/// different worker count and still produce identical coverage.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The adversary model spec (e.g. `"t-res:3:1"`).
    pub model: String,
    /// Exhaustive or sampled tier.
    pub scope: Scope,
    /// The campaign seed all per-index draws derive from.
    pub seed: u64,
    /// Worker threads for the sampled tier (the exhaustive tier streams
    /// on one worker).
    pub workers: usize,
    /// Runs per batch; a checkpoint is appended after every batch.
    pub batch: u64,
    /// The adversarial scheduler's step bound per run.
    pub max_steps: usize,
    /// Percentage (0–100) of sampled runs that carry a seeded
    /// [`FaultPlan`](act_runtime::FaultPlan).
    pub fault_rate_percent: u8,
    /// Checkpoint file (JSON lines); `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Resume from the checkpoint file instead of starting at run 0.
    pub resume: bool,
    /// Directory for shrunk violation artifacts (default
    /// `target/campaign-artifacts`).
    pub artifacts: Option<PathBuf>,
    /// Sampled-run indices forced into a synthetic liveness violation
    /// (the run keeps its derived schedule seed but is truncated at
    /// [`INJECTED_MAX_STEPS`]); used to exercise the shrink/dedup path.
    pub inject_liveness: Vec<u64>,
    /// Precompute the solver's set-consensus verdict for the model so
    /// the `verdict-agreement` invariant is armed. Disable for runs
    /// that only exercise the scheduler (e.g. benchmarks).
    pub solver_check: bool,
    /// With [`solver_check`](Self::solver_check), run the solver under
    /// *both* subdivision strategies (direct and symmetry-quotiented
    /// orbit-shared towers) and abort the campaign on any verdict
    /// disagreement. Parity is guaranteed by construction, so this is a
    /// free cross-check of the quotient machinery; it does not alter
    /// the run population or the armed verdict (and so stays out of the
    /// campaign fingerprint).
    pub quotient_oracle: bool,
    /// Restrict the checked invariants to these registry names (`None`
    /// checks the model's full run-family set). Selections feed the
    /// fingerprint — a campaign that judges runs differently is a
    /// different campaign — but the default `None` keeps the historical
    /// fingerprint text, so existing checkpoints stay resumable.
    pub invariants: Option<Vec<String>>,
}

impl CampaignConfig {
    /// A configuration with defaults for `model`: sampled scope of
    /// 100 000 runs, seed `0xFAC7`, one worker, batches of 10 000,
    /// 500 000-step bound, 25% fault rate, solver check on.
    pub fn new(model: &str) -> CampaignConfig {
        CampaignConfig {
            model: model.to_string(),
            scope: Scope::Sampled { samples: 100_000 },
            seed: 0xFAC7,
            workers: 1,
            batch: 10_000,
            max_steps: 500_000,
            fault_rate_percent: 25,
            checkpoint: None,
            resume: false,
            artifacts: None,
            inject_liveness: Vec::new(),
            solver_check: true,
            quotient_oracle: false,
            invariants: None,
        }
    }

    /// The canonical text the campaign fingerprint is derived from.
    fn fingerprint_text(&self) -> String {
        let scope = match self.scope {
            Scope::Exhaustive { max_depth } => format!("exhaustive:{max_depth}"),
            Scope::Sampled { samples } => format!("sampled:{samples}"),
        };
        let mut inject: Vec<u64> = self.inject_liveness.clone();
        inject.sort_unstable();
        inject.dedup();
        let inject: Vec<String> = inject.iter().map(|i| i.to_string()).collect();
        let mut text = format!(
            "fact-campaign|model={}|scope={}|seed={}|max_steps={}|fault_rate={}|inject={}|solver={}",
            self.model,
            scope,
            self.seed,
            self.max_steps,
            self.fault_rate_percent,
            inject.join(","),
            self.solver_check,
        );
        if let Some(selection) = &self.invariants {
            let mut selection = selection.clone();
            selection.sort();
            selection.dedup();
            text.push_str(&format!("|invariants={}", selection.join(",")));
        }
        text
    }

    /// The campaign's 32-hex-digit fingerprint (the verdict store's
    /// content-hash machinery over the canonical config text).
    /// Checkpoints carry it so a checkpoint file can never resume a
    /// *different* campaign.
    pub fn fingerprint_hex(&self) -> String {
        signature::signature_hex(act_obs::content_hash128(self.fingerprint_text().as_bytes()))
    }

    /// The sorted, deduplicated injected-violation indices.
    pub fn injected_indices(&self) -> Vec<u64> {
        let mut inject = self.inject_liveness.clone();
        inject.sort_unstable();
        inject.dedup();
        inject
    }

    /// Whether the model names an FPC workload (the `fpc:` run family)
    /// rather than an adversary-backed model.
    pub fn is_fpc(&self) -> bool {
        self.model.starts_with("fpc:")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_population_knobs_only() {
        let base = CampaignConfig::new("t-res:3:1");
        let mut same = base.clone();
        same.workers = 7;
        same.batch = 123;
        same.checkpoint = Some(PathBuf::from("/tmp/elsewhere.jsonl"));
        same.resume = true;
        same.quotient_oracle = true;
        assert_eq!(base.fingerprint_hex(), same.fingerprint_hex());

        let mut other_seed = base.clone();
        other_seed.seed += 1;
        assert_ne!(base.fingerprint_hex(), other_seed.fingerprint_hex());

        let mut other_scope = base.clone();
        other_scope.scope = Scope::Exhaustive { max_depth: 4 };
        assert_ne!(base.fingerprint_hex(), other_scope.fingerprint_hex());

        let mut other_inject = base.clone();
        other_inject.inject_liveness = vec![42];
        assert_ne!(base.fingerprint_hex(), other_inject.fingerprint_hex());

        // An invariant selection changes the campaign; its spelling
        // order does not.
        let mut selected = base.clone();
        selected.invariants = Some(vec!["liveness-fair".into(), "trace-wellformed".into()]);
        assert_ne!(base.fingerprint_hex(), selected.fingerprint_hex());
        let mut reordered = selected.clone();
        reordered.invariants = Some(vec!["trace-wellformed".into(), "liveness-fair".into()]);
        assert_eq!(selected.fingerprint_hex(), reordered.fingerprint_hex());
    }

    #[test]
    fn injected_indices_are_sorted_and_deduplicated() {
        let mut config = CampaignConfig::new("t-res:3:1");
        config.inject_liveness = vec![9, 3, 9, 1];
        assert_eq!(config.injected_indices(), vec![1, 3, 9]);
    }
}
