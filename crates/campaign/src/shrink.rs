//! The auto-shrinker: reduces a violating run to a minimal replayable
//! trace by greedy deletion, re-verifying after every candidate edit
//! that the *original* violated invariants still reproduce under
//! replay.
//!
//! Three deletion moves, iterated to a fixpoint:
//!
//! 1. **round deletion** — contiguous schedule blocks, halving the
//!    block size down to single steps (classic delta debugging);
//! 2. **process deletion** — every step of one process at once (kills
//!    whole actors that are irrelevant to the failure);
//! 3. **fault deletion** — fault-plan events (provenance only: replay
//!    never re-injects, so events that survive shrinking are the ones
//!    that shaped the failing schedule).
//!
//! A candidate is accepted iff its replayed violated-invariant set is a
//! superset of the original violation's — the shrunk artifact can gain
//! incidental violations but can never lose the one it documents.
//! Every accepted edit strictly shrinks the trace (fewer steps or fewer
//! fault events), so termination is structural.

use act_runtime::Trace;

use crate::invariants::Invariant;
use crate::runner::{evaluate_trace, CampaignContext, Violation};

/// Shrinks `violation`'s trace as far as greedy deletion allows. If the
/// original trace unexpectedly fails to reproduce under replay (it
/// shouldn't: campaign runs are deterministic), it is returned unshrunk
/// so the artifact still documents the run as executed.
pub fn shrink_violation(
    ctx: &CampaignContext,
    invariants: &[Box<dyn Invariant>],
    violation: &Violation,
) -> Trace {
    let original = &violation.violated;
    let reproduces = |candidate: &Trace| -> bool {
        evaluate_trace(ctx, invariants, candidate, violation.max_steps)
            .map(|violated| original.iter().all(|name| violated.contains(name)))
            .unwrap_or(false)
    };
    let mut best = violation.trace.clone();
    if !reproduces(&best) {
        return best;
    }
    loop {
        let mut improved = false;

        // Round deletion: contiguous blocks, large to small.
        let mut size = (best.steps.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.steps.len() {
                let end = (start + size).min(best.steps.len());
                let mut candidate = best.clone();
                candidate.steps.drain(start..end);
                if reproduces(&candidate) {
                    best = candidate;
                    improved = true;
                    // Same start: the tail shifted into this window.
                } else {
                    start += size;
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Process deletion: drop every step of one process.
        for p in best.participants.iter() {
            let index = p.index() as u32;
            if !best.steps.contains(&index) {
                continue;
            }
            let mut candidate = best.clone();
            candidate.steps.retain(|&s| s != index);
            if reproduces(&candidate) {
                best = candidate;
                improved = true;
            }
        }

        // Fault deletion: events last-to-first, then the empty plan.
        while let Some(plan) = best.fault_plan.clone() {
            let mut candidate = best.clone();
            if plan.events.is_empty() {
                candidate.fault_plan = None;
            } else {
                let mut plan = plan;
                plan.events.pop();
                candidate.fault_plan = Some(plan);
            }
            if reproduces(&candidate) {
                best = candidate;
                improved = true;
            } else {
                break;
            }
        }

        if !improved {
            return best;
        }
    }
}
