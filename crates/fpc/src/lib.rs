//! Fast Probabilistic Consensus (FPC) as a deterministic, seeded
//! workload.
//!
//! FPC (Popov–Buchanan; cf. the `FPC-on-a-set` simulations) is a binary
//! voting protocol: every node holds an opinion in `{0, 1}`, and each
//! round every honest node queries a random quorum, compares the mean
//! of the answers against a *common random threshold*, and adopts the
//! majority side. A node **finalizes** once its opinion has survived
//! [`FINALITY_ROUNDS`] consecutive rounds; the random thresholds make
//! it exponentially hard for an adversary to keep the network split.
//!
//! This crate is the model-family backend behind the `fpc:` spec
//! namespace: a simulator whose every run is a pure function of
//! `(spec, seed)`, so finalization statistics are replayable,
//! campaign-shardable across worker fleets, and cacheable by content
//! address exactly like solvability verdicts.
//!
//! * [`FpcSpec`] — the parsed, canonicalizable `fpc:N:M:STRATEGY[:Q[:O]]`
//!   spec (node count, malicious count, strategy, quorum size, initial
//!   ones share);
//! * [`simulate_run`](sim::simulate_run) — one seeded run, returning an
//!   [`FpcOutcome`](sim::FpcOutcome) with its trajectory fingerprint;
//! * [`run_stats`](stats::run_stats) — a batch of runs aggregated into
//!   [`FpcStats`](stats::FpcStats) (failure rates, rounds-to-finality
//!   percentiles, combined fingerprint).

pub mod sim;
pub mod stats;

pub use sim::{simulate_run, FpcOutcome};
pub use stats::{derive_seed, run_stats, FpcStats};

/// Consecutive unchanged rounds before a node finalizes its opinion.
pub const FINALITY_ROUNDS: u32 = 5;

/// Cooling-off rounds before finality streaks start counting: the first
/// rounds of a run are still mixing, and finalizing during them lets a
/// minority node lock in the losing value.
pub const WARMUP_ROUNDS: u32 = 2;

/// Round budget: a run that has not fully finalized by then is a
/// termination failure.
pub const MAX_ROUNDS: u32 = 100;

/// Common-threshold range in per-mille: each round draws
/// `τ ∈ [0.500, 0.667]` uniformly, shared by every honest node.
pub const THRESHOLD_LO_PERMILLE: u64 = 500;
/// Upper end of the common-threshold range (per-mille).
pub const THRESHOLD_HI_PERMILLE: u64 = 667;

/// The largest supported node count (simulation is `O(rounds · N · Q)`).
pub const MAX_NODES: usize = 10_000;

/// What the malicious nodes answer when queried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpcStrategy {
    /// Every malicious node reports the current *minority* opinion of
    /// the honest nodes (one shared answer per round) — the classic
    /// convergence-delaying cautious adversary.
    Cautious,
    /// Each malicious node answers each query adversarially for that
    /// querier: the opposite of the asker's current opinion, trying to
    /// keep the network split.
    Berserk,
    /// A static split: the first half of the malicious nodes always
    /// report `1`, the rest always report `0`.
    FixedSplit,
}

impl FpcStrategy {
    /// The spec-text name of this strategy.
    pub fn name(self) -> &'static str {
        match self {
            FpcStrategy::Cautious => "cautious",
            FpcStrategy::Berserk => "berserk",
            FpcStrategy::FixedSplit => "fixed-split",
        }
    }

    /// Parses a spec-text strategy name.
    pub fn parse(name: &str) -> Result<FpcStrategy, String> {
        match name {
            "cautious" => Ok(FpcStrategy::Cautious),
            "berserk" => Ok(FpcStrategy::Berserk),
            "fixed-split" => Ok(FpcStrategy::FixedSplit),
            other => Err(format!(
                "unknown FPC strategy {other:?} (cautious | berserk | fixed-split)"
            )),
        }
    }
}

/// A parsed, canonicalizable FPC workload spec.
///
/// Spec text: `fpc:N:M:STRATEGY[:QUORUM[:ONES_PERMILLE]]` — `N` nodes of
/// which `M` are malicious, playing `STRATEGY`; honest nodes query
/// `QUORUM` peers per round (default `min(10, N−1)`); `ONES_PERMILLE`
/// of the honest nodes start with opinion `1` (default 500). The
/// canonical string always spells all five fields, so every spelling of
/// one workload shares one content address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FpcSpec {
    /// Total node count (honest + malicious).
    pub nodes: usize,
    /// Malicious node count (`< nodes`; the malicious nodes are the
    /// last `malicious` indices).
    pub malicious: usize,
    /// What the malicious nodes answer.
    pub strategy: FpcStrategy,
    /// Quorum size each honest node samples per round.
    pub quorum: usize,
    /// Share of honest nodes starting with opinion `1`, in per-mille.
    pub ones_permille: u64,
}

impl FpcSpec {
    /// Parses an `fpc:` spec, filling defaulted fields.
    pub fn parse(spec: &str) -> Result<FpcSpec, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let (nodes, malicious, strategy, rest) = match parts.as_slice() {
            ["fpc", n, m, s, rest @ ..] if rest.len() <= 2 => (*n, *m, *s, rest),
            _ => {
                return Err(format!(
                    "unrecognized fpc spec {spec:?} (fpc:N:M:STRATEGY[:QUORUM[:ONES_PERMILLE]])"
                ))
            }
        };
        let nodes: usize = nodes
            .parse()
            .map_err(|_| format!("bad node count in {spec:?}"))?;
        if !(2..=MAX_NODES).contains(&nodes) {
            return Err(format!("fpc needs 2..={MAX_NODES} nodes"));
        }
        let malicious: usize = malicious
            .parse()
            .map_err(|_| format!("bad malicious count in {spec:?}"))?;
        if malicious >= nodes {
            return Err("fpc needs at least one honest node (m < n)".into());
        }
        let strategy = FpcStrategy::parse(strategy)?;
        let quorum = match rest.first() {
            None => 10.min(nodes - 1),
            Some(q) => {
                let q: usize = q.parse().map_err(|_| format!("bad quorum in {spec:?}"))?;
                if !(1..nodes).contains(&q) {
                    return Err(format!("fpc quorum must be in 1..{nodes}"));
                }
                q
            }
        };
        let ones_permille = match rest.get(1) {
            None => 500,
            Some(o) => {
                let o: u64 = o
                    .parse()
                    .map_err(|_| format!("bad ones-permille in {spec:?}"))?;
                if o > 1000 {
                    return Err("fpc ones-permille must be at most 1000".into());
                }
                o
            }
        };
        Ok(FpcSpec {
            nodes,
            malicious,
            strategy,
            quorum,
            ones_permille,
        })
    }

    /// The canonical text of this spec (round-trips through [`parse`];
    /// always spells all five fields).
    ///
    /// [`parse`]: FpcSpec::parse
    pub fn canonical_string(&self) -> String {
        format!(
            "fpc:{}:{}:{}:{}:{}",
            self.nodes,
            self.malicious,
            self.strategy.name(),
            self.quorum,
            self.ones_permille
        )
    }

    /// The honest node count.
    pub fn honest(&self) -> usize {
        self.nodes - self.malicious
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_default_and_canonicalize() {
        let s = FpcSpec::parse("fpc:32:8:berserk").unwrap();
        assert_eq!(s.quorum, 10);
        assert_eq!(s.ones_permille, 500);
        assert_eq!(s.canonical_string(), "fpc:32:8:berserk:10:500");
        let t = FpcSpec::parse(&s.canonical_string()).unwrap();
        assert_eq!(s, t);

        let tiny = FpcSpec::parse("fpc:4:0:cautious").unwrap();
        assert_eq!(tiny.quorum, 3, "default quorum clamps to n-1");
        assert_eq!(
            FpcSpec::parse("fpc:16:4:fixed-split:5:900").unwrap().quorum,
            5
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "fpc:1:0:cautious",
            "fpc:8:8:cautious",
            "fpc:8:2:sneaky",
            "fpc:8:2:berserk:0",
            "fpc:8:2:berserk:8",
            "fpc:8:2:berserk:3:1001",
            "fpc:8:2",
            "fpc:x:2:berserk",
            "alpha:3:01111111",
        ] {
            assert!(FpcSpec::parse(bad).is_err(), "{bad:?} must fail");
        }
    }
}
