//! One seeded FPC run: synchronous rounds of quorum sampling against a
//! common random threshold, with per-node finalization tracking.
//!
//! Everything here is a pure function of `(spec, seed, inject_flip)`:
//! the round thresholds, every quorum sample, and the malicious answers
//! all come from one ChaCha8 stream, so a run replays bit-identically
//! on any worker — which is what makes FPC campaigns shardable and the
//! `seeded-replayability` invariant checkable at all.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{
    FpcSpec, FpcStrategy, FINALITY_ROUNDS, MAX_ROUNDS, THRESHOLD_HI_PERMILLE,
    THRESHOLD_LO_PERMILLE, WARMUP_ROUNDS,
};

/// The result of one FPC run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FpcOutcome {
    /// Rounds executed (≤ [`MAX_ROUNDS`]).
    pub rounds: u32,
    /// Honest nodes that finalized.
    pub finalized: u64,
    /// Whether every pair of finalized honest nodes agrees.
    pub agreement_ok: bool,
    /// Whether every honest node finalized within the round budget.
    pub terminated: bool,
    /// Opinion changes observed *after* a node finalized — zero by
    /// construction unless a violation was injected.
    pub post_finalization_flips: u64,
    /// Honest nodes holding opinion `1` at the end.
    pub final_ones: u64,
    /// FNV-1a fingerprint of the full trajectory (thresholds and every
    /// node's opinion, round by round): two runs with equal fingerprints
    /// took identical paths.
    pub fingerprint: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Runs one seeded FPC simulation. With `inject_flip`, one finalized
/// node's opinion is deliberately flipped after finalization — the
/// campaign's forced-violation self-test, proving the invariants can
/// fail.
pub fn simulate_run(spec: &FpcSpec, seed: u64, inject_flip: bool) -> FpcOutcome {
    let n = spec.nodes;
    let honest = spec.honest();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut fingerprint = FNV_OFFSET;

    // Honest nodes are indices 0..honest, malicious honest..n. The
    // first `ones_permille`-share of honest nodes start at 1; the seed
    // then permutes behaviour via the sampling stream, so the fixed
    // assignment loses no generality across a campaign.
    let start_ones = (honest as u64 * spec.ones_permille / 1000) as usize;
    let mut opinions: Vec<u8> = (0..n).map(|i| u8::from(i < start_ones)).collect();
    // Streak of consecutive rounds each honest node's opinion survived,
    // and the round it finalized (0 = not yet).
    let mut streak = vec![0u32; honest];
    let mut finalized_at = vec![0u32; honest];
    let mut post_finalization_flips = 0u64;

    let mut rounds = 0u32;
    for round in 1..=MAX_ROUNDS {
        rounds = round;
        // One common threshold per round, shared by every honest node.
        let tau = rng.gen_range(THRESHOLD_LO_PERMILLE..=THRESHOLD_HI_PERMILLE);
        fnv_mix(&mut fingerprint, tau);

        // Cautious malice answers with the honest minority of the
        // pre-round opinions, one shared answer for the whole round.
        let honest_ones: u64 = opinions[..honest].iter().map(|&o| o as u64).sum();
        let cautious_answer = u8::from(2 * honest_ones <= honest as u64);

        let mut next = opinions.clone();
        for i in 0..honest {
            if finalized_at[i] != 0 {
                continue; // finalized nodes hold their opinion
            }
            let mut ones = 0u64;
            for _ in 0..spec.quorum {
                // Uniform peer other than i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let answer = if j < honest {
                    opinions[j]
                } else {
                    match spec.strategy {
                        FpcStrategy::Cautious => cautious_answer,
                        FpcStrategy::Berserk => 1 - opinions[i],
                        FpcStrategy::FixedSplit => u8::from(j - honest < spec.malicious / 2),
                    }
                };
                ones += answer as u64;
            }
            // Adopt 1 iff the sampled mean clears the common threshold.
            next[i] = u8::from(ones * 1000 >= tau * spec.quorum as u64);
        }

        for i in 0..honest {
            if finalized_at[i] != 0 {
                continue;
            }
            if next[i] == opinions[i] && round > WARMUP_ROUNDS {
                streak[i] += 1;
                if streak[i] >= FINALITY_ROUNDS {
                    finalized_at[i] = round;
                }
            } else {
                streak[i] = 0;
            }
        }
        opinions = next;
        for &o in &opinions {
            fnv_mix(&mut fingerprint, o as u64);
        }
        if finalized_at.iter().all(|&r| r != 0) {
            break;
        }
    }

    if inject_flip {
        // Flip the first finalized node post-finalization: a synthetic
        // safety violation the invariants must catch.
        if let Some(i) = finalized_at.iter().position(|&r| r != 0) {
            opinions[i] = 1 - opinions[i];
            post_finalization_flips += 1;
            fnv_mix(&mut fingerprint, 0xF11F);
        }
    }

    let finalized = finalized_at.iter().filter(|&&r| r != 0).count() as u64;
    let decided: Vec<u8> = (0..honest)
        .filter(|&i| finalized_at[i] != 0)
        .map(|i| opinions[i])
        .collect();
    let agreement_ok = decided.windows(2).all(|w| w[0] == w[1]);
    FpcOutcome {
        rounds,
        finalized,
        agreement_ok,
        terminated: finalized == honest as u64,
        post_finalization_flips,
        final_ones: opinions[..honest].iter().map(|&o| o as u64).sum(),
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_seed_deterministic() {
        let spec = FpcSpec::parse("fpc:32:8:berserk").unwrap();
        let a = simulate_run(&spec, 42, false);
        let b = simulate_run(&spec, 42, false);
        assert_eq!(a, b);
        let c = simulate_run(&spec, 43, false);
        assert_ne!(a.fingerprint, c.fingerprint, "seeds must matter");
    }

    #[test]
    fn honest_network_finalizes_in_agreement() {
        let spec = FpcSpec::parse("fpc:16:0:cautious:5:800").unwrap();
        for seed in 0..20 {
            let out = simulate_run(&spec, seed, false);
            assert!(out.terminated, "seed {seed} did not terminate");
            assert!(out.agreement_ok, "seed {seed} disagreed");
            assert_eq!(out.post_finalization_flips, 0);
            assert!(out.rounds >= FINALITY_ROUNDS);
        }
    }

    #[test]
    fn injected_flip_breaks_agreement_accounting() {
        let spec = FpcSpec::parse("fpc:16:0:cautious:5:800").unwrap();
        let out = simulate_run(&spec, 7, true);
        assert_eq!(out.post_finalization_flips, 1);
        // All nodes converge to one value; flipping a finalized node
        // therefore breaks agreement whenever ≥ 2 nodes finalized.
        assert!(!out.agreement_ok);
    }

    #[test]
    fn unanimous_start_is_stable() {
        // Every honest node starts at 1 with no malice: opinions never
        // move, so finality arrives as soon as the warmup has passed and
        // the streak fills.
        let spec = FpcSpec::parse("fpc:8:0:cautious:3:1000").unwrap();
        let out = simulate_run(&spec, 1, false);
        assert_eq!(out.rounds, WARMUP_ROUNDS + FINALITY_ROUNDS);
        assert_eq!(out.final_ones, 8);
        assert!(out.terminated && out.agreement_ok);
    }
}
