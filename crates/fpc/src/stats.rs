//! Finalization statistics over a batch of seeded FPC runs.
//!
//! A batch is addressed by `(spec, runs, seed)`: run `i` uses the
//! SplitMix64-derived stream seed `derive_seed(seed, i)`, so any
//! contiguous shard of the batch can be produced independently on any
//! worker and the aggregate is worker-count-invariant. The aggregate
//! carries a combined fingerprint over every run's trajectory
//! fingerprint — the value the `seeded-replayability` checks (and the
//! serving layer's cached summaries) compare.

use serde::{Deserialize, Serialize};

use crate::sim::simulate_run;
use crate::FpcSpec;

/// Aggregated finalization statistics for one `(spec, runs, seed)`
/// batch. All fields are integers so the summary JSON is stable across
/// platforms (mean is carried in thousandths).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpcStats {
    /// Canonical spec text of the workload.
    pub spec: String,
    /// Runs aggregated.
    pub runs: u64,
    /// Batch seed (run `i` uses the derived seed for index `i`).
    pub seed: u64,
    /// Runs where two finalized honest nodes disagreed.
    pub agreement_failures: u64,
    /// Runs where some honest node missed the round budget.
    pub termination_failures: u64,
    /// Median rounds-to-finality.
    pub rounds_p50: u64,
    /// 99th-percentile rounds-to-finality.
    pub rounds_p99: u64,
    /// Worst rounds-to-finality in the batch.
    pub rounds_max: u64,
    /// Mean rounds-to-finality, in thousandths of a round.
    pub mean_rounds_milli: u64,
    /// FNV-1a combination of every run's trajectory fingerprint, as
    /// fixed-width hex: equal batches replay bit-identically.
    pub fingerprint: String,
}

/// The per-run stream seed for `index` within a batch seeded `seed`
/// (the campaign runner's SplitMix64 derivation, so `fact-cli fpc` and
/// FPC campaigns sample identical populations).
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the whole batch and aggregates it. Deterministic in
/// `(spec, runs, seed)`; `runs` must be at least 1.
pub fn run_stats(spec: &FpcSpec, runs: u64, seed: u64) -> FpcStats {
    let mut rounds: Vec<u64> = Vec::with_capacity(runs as usize);
    let mut agreement_failures = 0u64;
    let mut termination_failures = 0u64;
    let mut combined = 0xcbf2_9ce4_8422_2325u64;
    for index in 0..runs {
        let out = simulate_run(spec, derive_seed(seed, index), false);
        if !out.agreement_ok {
            agreement_failures += 1;
        }
        if !out.terminated {
            termination_failures += 1;
        }
        rounds.push(out.rounds as u64);
        for byte in out.fingerprint.to_le_bytes() {
            combined ^= byte as u64;
            combined = combined.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    rounds.sort_unstable();
    let total: u64 = rounds.iter().sum();
    FpcStats {
        spec: spec.canonical_string(),
        runs,
        seed,
        agreement_failures,
        termination_failures,
        rounds_p50: percentile(&rounds, 50),
        rounds_p99: percentile(&rounds, 99),
        rounds_max: *rounds.last().unwrap_or(&0),
        mean_rounds_milli: total * 1000 / runs.max(1),
        fingerprint: format!("{combined:016x}"),
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_deterministic_and_sane() {
        let spec = FpcSpec::parse("fpc:32:4:cautious:5:700").unwrap();
        let a = run_stats(&spec, 200, 0xFAC7);
        let b = run_stats(&spec, 200, 0xFAC7);
        assert_eq!(a, b, "same (spec, runs, seed) must reproduce");
        assert!(a.rounds_p50 <= a.rounds_p99);
        assert!(a.rounds_p99 <= a.rounds_max);
        assert!(a.mean_rounds_milli >= 1000 * crate::FINALITY_ROUNDS as u64);
        let c = run_stats(&spec, 200, 0xFAC8);
        assert_ne!(a.fingerprint, c.fingerprint, "seed must matter");
    }

    #[test]
    fn stats_survive_a_json_round_trip() {
        let spec = FpcSpec::parse("fpc:8:2:fixed-split").unwrap();
        let stats = run_stats(&spec, 50, 7);
        let json = serde_json::to_string(&stats).unwrap();
        let back: FpcStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 99), 99);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[], 50), 0);
    }
}
