//! The 2-contention complex `Cont²` (Definition 5, Figure 4).
//!
//! Two vertices of `Chr² s` are *contending* when their `View1` and `View2`
//! are strictly ordered in opposite directions: each believes it "went
//! first" in the round the other saw more. A 2-contention simplex is one in
//! which every two vertices contend; in the corresponding run all its
//! processes would pick distinct proposals when adopting from the smallest
//! observed `View1`.

use act_topology::{Complex, Simplex, VertexId};

use crate::views::views_of;

/// Whether two vertices of a level-2 complex are contending (the two
/// clauses of Definition 5).
pub fn are_contending(complex: &Complex, v: VertexId, w: VertexId) -> bool {
    let a = views_of(complex, v);
    let b = views_of(complex, w);
    (a.view1.is_proper_subset_of(b.view1) && b.view2.is_proper_subset_of(a.view2))
        || (b.view1.is_proper_subset_of(a.view1) && a.view2.is_proper_subset_of(b.view2))
}

/// Whether `σ` is a 2-contention simplex: every two distinct vertices
/// contend. Vertices (dimension 0) are vacuously contention simplices; the
/// empty simplex is not considered one.
pub fn is_contention_simplex(complex: &Complex, sigma: &Simplex) -> bool {
    if sigma.is_empty() {
        return false;
    }
    let vs = sigma.vertices();
    for (i, &v) in vs.iter().enumerate() {
        for &w in &vs[i + 1..] {
            if !are_contending(complex, v, w) {
                return false;
            }
        }
    }
    true
}

/// The 2-contention complex `Cont²` of a level-2 complex: the sub-complex
/// of all 2-contention simplices (Figure 4c shows it for `n = 3`).
///
/// `Cont²` is inclusion-closed because contention is a pairwise condition;
/// the returned complex stores its maximal simplices.
pub fn contention_complex(complex: &Complex) -> Complex {
    let mut sims = Vec::new();
    for facet in complex.facets() {
        for face in facet.non_empty_faces() {
            if is_contention_simplex(complex, &face) {
                sims.push(face);
            }
        }
    }
    complex.sub_complex(sims)
}

/// The maximal dimension of a contention simplex inside `σ` (−1 if `σ` is
/// empty). Because contention is pairwise, this is the size of a maximum
/// clique of the contention graph on `σ`'s vertices, minus one.
pub fn max_contention_dim(complex: &Complex, sigma: &Simplex) -> isize {
    let vs = sigma.vertices();
    let n = vs.len();
    // Adjacency bitmasks of the contention graph (n ≤ 64 always; in
    // practice n ≤ the process count).
    let mut adj = vec![0u64; n];
    for i in 0..n {
        for j in i + 1..n {
            if are_contending(complex, vs[i], vs[j]) {
                adj[i] |= 1 << j;
                adj[j] |= 1 << i;
            }
        }
    }
    // Exhaustive max clique over ≤ 2^n subsets (n is tiny here).
    let mut best: isize = -1;
    for mask in 1u64..(1 << n) {
        let size = mask.count_ones() as isize;
        if size - 1 <= best {
            continue;
        }
        let mut ok = true;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if (mask & !adj[i] & !(1 << i)) != 0 {
                ok = false;
                break;
            }
        }
        if ok {
            best = size - 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_topology::{ColorSet, Osp};

    fn chr2() -> Complex {
        Complex::standard(3).iterated_subdivision(2)
    }

    #[test]
    fn contention_is_symmetric_and_irreflexive() {
        let k = chr2();
        for facet in k.facets() {
            for &v in facet.vertices() {
                assert!(!are_contending(&k, v, v));
                for &w in facet.vertices() {
                    assert_eq!(are_contending(&k, v, w), are_contending(&k, w, v));
                }
            }
        }
    }

    #[test]
    fn figure_4a_reversed_runs_fully_contend() {
        // Round 1: {p2},{p1},{p3}; round 2: {p3},{p1},{p2} — reversed
        // order makes every pair contend (Figure 4a).
        let s = Complex::standard(3);
        let r1 = Osp::new(vec![
            ColorSet::from_indices([1]),
            ColorSet::from_indices([0]),
            ColorSet::from_indices([2]),
        ])
        .unwrap();
        let r2 = Osp::new(vec![
            ColorSet::from_indices([2]),
            ColorSet::from_indices([0]),
            ColorSet::from_indices([1]),
        ])
        .unwrap();
        let k = s.subdivide_patterned(2, move |_| vec![vec![r1.clone(), r2.clone()]]);
        let facet = &k.facets()[0];
        assert!(is_contention_simplex(&k, facet));
        assert_eq!(max_contention_dim(&k, facet), 2);
    }

    #[test]
    fn figure_4b_mixed_runs_single_contending_pair() {
        // Round 1: {p1,p2,p3}; round 2: {p2},{p3,p1} — only {p1,p2}
        // contend (Figure 4b).
        // NOTE: with a synchronous first round every View1 is equal, so no
        // pair has *strictly* ordered View1 — Figure 4b's caption uses the
        // runs r1 = {p2},{p1,p3} as the FIRST round. Re-reading: round 1 is
        // the synchronous run and round 2 the ordered one in the figure;
        // contention needs strict View1 inclusion, which fails. The figure's
        // contending pair comes from the interpretation with the ordered run
        // first; we test that interpretation.
        let s = Complex::standard(3);
        let r1 = Osp::new(vec![
            ColorSet::from_indices([1]),
            ColorSet::from_indices([2, 0]),
        ])
        .unwrap();
        let r2 = Osp::new(vec![ColorSet::full(3)]).unwrap();
        let k = s.subdivide_patterned(2, move |_| vec![vec![r1.clone(), r2.clone()]]);
        let facet = &k.facets()[0];
        // Round 1: p2 first, then {p1,p3}; round 2 synchronous: all View2
        // equal, so no strict View2 inclusion either: no contention.
        assert_eq!(max_contention_dim(&k, facet), 0);
        // The genuinely contending configuration: p1 fast in round 1 and
        // slow in round 2, p2 the opposite.
        let r1 = Osp::new(vec![
            ColorSet::from_indices([0]),
            ColorSet::from_indices([1, 2]),
        ])
        .unwrap();
        let r2 = Osp::new(vec![
            ColorSet::from_indices([1]),
            ColorSet::from_indices([0, 2]),
        ])
        .unwrap();
        let k = s.subdivide_patterned(2, move |_| vec![vec![r1.clone(), r2.clone()]]);
        let facet = &k.facets()[0];
        let vs = facet.vertices();
        let p1 = vs
            .iter()
            .copied()
            .find(|&v| k.color(v).index() == 0)
            .unwrap();
        let p2 = vs
            .iter()
            .copied()
            .find(|&v| k.color(v).index() == 1)
            .unwrap();
        let p3 = vs
            .iter()
            .copied()
            .find(|&v| k.color(v).index() == 2)
            .unwrap();
        assert!(are_contending(&k, p1, p2));
        assert!(!are_contending(&k, p1, p3));
        assert!(!are_contending(&k, p2, p3));
        assert_eq!(max_contention_dim(&k, facet), 1);
    }

    #[test]
    fn contention_complex_structure_for_3_processes() {
        // Figure 4c: compute Cont² of Chr² s. Every vertex is trivially a
        // contention simplex, so the complex covers all used vertices;
        // higher-dimensional contention simplices exist (e.g. Figure 4a's).
        let k = chr2();
        let cont = contention_complex(&k);
        assert!(!cont.is_void());
        assert!(
            cont.dim() >= 2,
            "fully reversed runs give 2-dimensional contention"
        );
        // Every maximal simplex really is a contention simplex.
        for f in cont.facets() {
            assert!(is_contention_simplex(&k, f));
        }
    }

    #[test]
    fn max_contention_dim_agrees_with_enumeration() {
        let k = chr2();
        for facet in k.facets().iter().take(40) {
            let brute = facet
                .non_empty_faces()
                .filter(|f| is_contention_simplex(&k, f))
                .map(|f| f.dim())
                .max()
                .unwrap_or(-1);
            assert_eq!(max_contention_dim(&k, facet), brute);
        }
    }

    #[test]
    fn empty_simplex_is_not_contention() {
        let k = chr2();
        assert!(!is_contention_simplex(&k, &Simplex::empty()));
        assert_eq!(max_contention_dim(&k, &Simplex::empty()), -1);
    }
}
