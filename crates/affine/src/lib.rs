//! Affine tasks for fair adversaries — Section 4 of *An Asynchronous
//! Computability Theorem for Fair Adversaries*.
//!
//! This crate turns an agreement function `α` (from `act-adversary`) into
//! the affine task `R_A ⊆ Chr² s` that captures the task computability of
//! the corresponding fair adversarial model:
//!
//! * [`views_of`] — the `View1` / `View2` structure of `Chr² s`;
//! * [`contention_complex`] / [`is_contention_simplex`] — the 2-contention
//!   complex `Cont²` (Definition 5, Figure 4);
//! * [`CriticalAnalysis`] — critical simplices (Definition 7, Figure 5),
//!   their members `CSM_α`, views `CSV_α`, and the concurrency map
//!   `Conc_α` (Definition 8, Figure 6);
//! * [`fair_affine_task`] — the affine task `R_A` (Definition 9, Figure 7);
//! * [`k_obstruction_free_task`] / [`t_resilient_task`] — the previously
//!   known affine tasks used as cross-checks (Definition 6, Figure 1b);
//! * [`AffineTask`] — the task abstraction: `Δ`-restrictions, recipes and
//!   iteration (`L^m`, the compact affine model `L^*`).
//!
//! # Quickstart
//!
//! ```
//! use act_adversary::AgreementFunction;
//! use act_affine::{fair_affine_task, k_obstruction_free_task};
//!
//! let alpha = AgreementFunction::k_concurrency(3, 1);
//! let r_a = fair_affine_task(&alpha);            // Definition 9
//! let r_of = k_obstruction_free_task(3, 1);      // Definition 6
//! assert!(r_a.complex().same_complex(r_of.complex()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contention;
mod critical;
mod fair;
mod known;
mod task;
mod views;

pub use contention::{
    are_contending, contention_complex, is_contention_simplex, max_contention_dim,
};
pub use critical::{CriticalAnalysis, CriticalInfo};
pub use fair::{
    alpha_is_symmetric, fair_affine_task, fair_affine_task_with, fair_census_quotiented,
    fair_census_quotiented_with, CriticalSideCondition, FairCensus,
};
pub use known::{
    k_obstruction_free_task, max_contention_of_task, t_resilient_task, wait_free_task,
};
pub use task::{AffineTask, APPLY_CALLS};
pub use views::{view2_carrier, views_of, Views};
