//! The affine task `R_A` of a fair adversary (Definition 9, Figure 7).
//!
//! `R_A` keeps exactly the facets of `Chr² s` in which every "non-critical"
//! contention simplex — one that cannot rely on critical simplices to reach
//! α-adaptive set consensus — is small enough to solve it on its own:
//!
//! ```text
//! R_A = Cl({σ ∈ facets(Chr² s) : ∀ θ ⊆ σ, P(θ, σ)})
//! P(θ, σ) ≡ θ ∈ Cont² ∧ χ(θ) ∩ (χ(CSM_α(ρ)) ∪ χ(CSV_α(τ))) = ∅
//!             ⟹ dim(θ) < Conc_α(τ)
//! ```
//!
//! with `τ = carrier(θ, Chr s)` and `ρ = carrier(σ, Chr s)`.
//!
//! **A note on the side condition.** Definition 9 of the arXiv text writes
//! the triple intersection `χ(θ) ∩ χ(CSM_α(ρ)) ∩ χ(CSV_α(τ)) = ∅`, but the
//! safety proof (Lemma 6) and the agreement proof of `µ_Q` (Property 10)
//! both use the *union* form above (a process is excused from the
//! concurrency bound if it is a critical member **or** observed by a
//! critical simplex). We implement both readings
//! ([`CriticalSideCondition`]); the union reading is the default. It is the
//! one that reproduces the known affine tasks: on `t`-resilient
//! adversaries `R_A` coincides *exactly* with Saraph et al.'s `R_{t-res}`
//! (every checked `(n, t)`), and on `k`-obstruction-free adversaries it
//! coincides with `R_{k-OF}` (Definition 6) at `k = 1` and `k = n`. For
//! intermediate `k` the two (both model-capturing) complexes differ:
//! at `n = 3` `R_A ⊊ R_{k-OF}`, and at `n = 4, k = 2` they are
//! incomparable. The test-suite and the Figure-7 experiment record the
//! exact relationship; Algorithm 1's safety and `µ_Q`'s properties are
//! verified against this `R_A` for `n ≤ 4`.

use act_adversary::AgreementFunction;
use act_topology::{
    parallel_filter_facets, subdivision_threads, ColorPerm, ColorSet, Complex, Simplex,
};

use crate::contention::is_contention_simplex;
use crate::critical::CriticalAnalysis;
use crate::task::AffineTask;

/// Which reading of Definition 9's side condition to use; see the module
/// documentation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CriticalSideCondition {
    /// `χ(θ) ∩ (χ(CSM_α(ρ)) ∪ χ(CSV_α(τ))) = ∅` — the form used by the
    /// paper's proofs (Lemma 6, Property 10). Default.
    #[default]
    Union,
    /// `χ(θ) ∩ χ(CSM_α(ρ)) ∩ χ(CSV_α(τ)) = ∅` — the form as literally
    /// printed in Definition 9.
    TripleIntersection,
}

/// Builds the affine task `R_A` for the fair-adversary model with agreement
/// function `alpha`, using the default (union) side condition.
///
/// # Panics
///
/// Panics if `alpha(Π) = 0` (the model admits no runs) or the agreement
/// function is structurally invalid.
///
/// # Examples
///
/// ```
/// use act_adversary::AgreementFunction;
/// use act_affine::fair_affine_task;
///
/// // Figure 7a: R_A for 1-obstruction-freedom over 3 processes.
/// let alpha = AgreementFunction::k_concurrency(3, 1);
/// let r = fair_affine_task(&alpha);
/// assert!(r.complex().facet_count() > 0);
/// assert!(r.complex().facet_count() < 169);
/// ```
pub fn fair_affine_task(alpha: &AgreementFunction) -> AffineTask {
    fair_affine_task_with(alpha, CriticalSideCondition::Union)
}

/// [`fair_affine_task`] with an explicit side-condition reading.
pub fn fair_affine_task_with(alpha: &AgreementFunction, side: CriticalSideCondition) -> AffineTask {
    let n = alpha.num_processes();
    alpha
        .validate()
        .expect("structurally valid agreement function");
    assert!(
        alpha.alpha(act_topology::ColorSet::full(n)) >= 1,
        "the model must admit at least one run (α(Π) ≥ 1)"
    );
    let chr2 = Complex::standard(n).iterated_subdivision(2);
    let complex = restrict_to_fair(&chr2, alpha, side);
    AffineTask::new(format!("R_A[{side:?}]"), complex)
}

/// The facet filter of Definition 9, applied to a level-2 complex.
///
/// The filter fans out over facet chunks; each worker owns a private
/// memoizing [`CriticalAnalysis`], and the per-chunk results are
/// concatenated in chunk order, so the kept-facet list (and hence the
/// complex) is identical to a serial filter for every thread count.
fn restrict_to_fair(
    chr2: &Complex,
    alpha: &AgreementFunction,
    side: CriticalSideCondition,
) -> Complex {
    let parent = chr2.parent().expect("level-2 complex").clone();
    let kept: Vec<Simplex> = parallel_filter_facets(
        chr2.facets(),
        subdivision_threads(),
        || CriticalAnalysis::new(&parent, alpha),
        |crit, sigma| facet_satisfies_p(chr2, crit, sigma, side),
    );
    chr2.sub_complex(kept)
}

/// The result of the symmetry-quotiented `R_A` census
/// ([`fair_census_quotiented`]): facet counts obtained from one
/// representative `Chr`-facet per orbit, without materializing `Chr² s`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FairCensus {
    /// The facet count of `R_A`: Σ over orbits of
    /// `orbit_size × |surviving representative-expansion facets|`.
    pub facet_count: usize,
    /// Number of `Chr s` facet orbits examined (compositions of `n`:
    /// 4, 8, 16 for n = 3, 4, 5 — versus 13, 75, 541 facets).
    pub orbit_count: usize,
    /// The facet count of the ambient `Chr² s`, from the same census.
    pub chr2_facet_count: usize,
}

/// Whether an agreement function is invariant under every color
/// permutation. Checked on the adjacent transpositions, which generate
/// `S_n`. Symmetric adversaries (`k`-obstruction-free, `t`-resilient,
/// wait-free) qualify; Figure 5b's adversary does not.
pub fn alpha_is_symmetric(alpha: &AgreementFunction) -> bool {
    let n = alpha.num_processes();
    for i in 0..n.saturating_sub(1) {
        let mut images: Vec<usize> = (0..n).collect();
        images.swap(i, i + 1);
        let perm = ColorPerm::from_images(&images).expect("a transposition is a bijection");
        for s in ColorSet::full(n).subsets() {
            if alpha.alpha(perm.apply_colors(s)) != alpha.alpha(s) {
                return false;
            }
        }
    }
    true
}

/// The symmetry-quotiented `R_A` census with the default (union) side
/// condition; see [`fair_census_quotiented_with`].
pub fn fair_census_quotiented(alpha: &AgreementFunction) -> Option<FairCensus> {
    fair_census_quotiented_with(alpha, CriticalSideCondition::Union)
}

/// Counts the facets of `R_A` through the color-symmetry quotient: the
/// facets of `Chr s` are partitioned into orbits (compositions of `n`),
/// only one representative per orbit is expanded to level 2 (against the
/// *full* `Chr s` as parent, so carrier and view lookups are exact), and
/// Definition 9 is evaluated on those expansions alone. Each surviving
/// representative facet stands for `orbit_size` facets of `R_A`.
///
/// This avoids building `Chr² s` entirely — 16 representative expansions
/// of 541 recipes each instead of 292 681 facets at `n = 5` — which is
/// what makes the n = 5 census tractable.
///
/// Sound only for color-symmetric agreement functions (Definition 9 is
/// equivariant exactly when `α` is); returns `None` otherwise, and callers
/// fall back to the direct [`fair_affine_task_with`] construction.
///
/// # Panics
///
/// Panics if `alpha` is structurally invalid or `α(Π) = 0`.
pub fn fair_census_quotiented_with(
    alpha: &AgreementFunction,
    side: CriticalSideCondition,
) -> Option<FairCensus> {
    let n = alpha.num_processes();
    alpha
        .validate()
        .expect("structurally valid agreement function");
    assert!(
        alpha.alpha(ColorSet::full(n)) >= 1,
        "the model must admit at least one run (α(Π) ≥ 1)"
    );
    if !alpha_is_symmetric(alpha) {
        return None;
    }
    let chr = Complex::standard(n).chromatic_subdivision();
    let quotient = chr.chromatic_subdivision_quotiented();
    let reps = quotient.representatives();
    let mut crit = CriticalAnalysis::new(&chr, alpha);
    let mut facet_count = 0usize;
    let mut chr2_facet_count = 0usize;
    for expansion in quotient.orbit_expansions() {
        let size = expansion.orbit.orbit_size();
        chr2_facet_count += size * expansion.rep_facets.len();
        let surviving = expansion
            .rep_facets
            .iter()
            .filter(|sigma| facet_satisfies_p(reps, &mut crit, sigma, side))
            .count();
        facet_count += size * surviving;
    }
    Some(FairCensus {
        facet_count,
        orbit_count: quotient.orbits().len(),
        chr2_facet_count,
    })
}

/// Whether every subset `θ` of the facet `σ` satisfies `P(θ, σ)`.
fn facet_satisfies_p(
    chr2: &Complex,
    crit: &mut CriticalAnalysis<'_>,
    sigma: &Simplex,
    side: CriticalSideCondition,
) -> bool {
    let rho = chr2.carrier_in_parent(sigma);
    let csm_rho = crit.member_colors(&rho);
    for theta in sigma.non_empty_faces() {
        if !is_contention_simplex(chr2, &theta) {
            continue;
        }
        let tau = chr2.carrier_in_parent(&theta);
        let csv_tau = crit.view_colors(&tau);
        let chi_theta = chr2.colors(&theta);
        let excused = match side {
            CriticalSideCondition::Union => {
                chi_theta.intersects(csm_rho) || chi_theta.intersects(csv_tau)
            }
            CriticalSideCondition::TripleIntersection => {
                chi_theta.intersection(csm_rho).intersects(csv_tau)
            }
        };
        if excused {
            continue;
        }
        let conc = crit.concurrency(&tau);
        if theta.dim() >= conc as isize {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::{zoo, Adversary};
    use act_topology::ColorSet;

    #[test]
    fn r_a_for_wait_free_is_all_of_chr2() {
        // α(P) = |P|: every contention simplex of dim d needs Conc > d,
        // and indeed no facet is excluded (the wait-free model is Chr² s).
        let alpha = AgreementFunction::of_adversary(&Adversary::wait_free(3));
        let r = fair_affine_task(&alpha);
        assert_eq!(r.complex().facet_count(), 169);
    }

    #[test]
    fn r_a_for_one_of_is_strict_subcomplex() {
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let r = fair_affine_task(&alpha);
        let count = r.complex().facet_count();
        assert!(count > 0 && count < 169, "got {count}");
    }

    #[test]
    fn r_a_for_figure_5b_adversary() {
        let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
        let r = fair_affine_task(&alpha);
        let count = r.complex().facet_count();
        assert!(count > 0 && count < 169, "got {count}");
    }

    #[test]
    fn r_a_is_monotone_in_agreement_power() {
        // More concurrency ⇒ more permitted facets.
        let r1 = fair_affine_task(&AgreementFunction::k_concurrency(3, 1));
        let r2 = fair_affine_task(&AgreementFunction::k_concurrency(3, 2));
        let r3 = fair_affine_task(&AgreementFunction::k_concurrency(3, 3));
        let c1 = r1.complex().facet_count();
        let c2 = r2.complex().facet_count();
        let c3 = r3.complex().facet_count();
        assert!(c1 <= c2 && c2 <= c3, "{c1} ≤ {c2} ≤ {c3} violated");
        assert_eq!(c3, 169, "3-concurrency over 3 processes is wait-free");
    }

    #[test]
    fn quotient_census_matches_direct_construction() {
        // The tentpole parity gate: for every symmetric model, the
        // quotiented census equals the facet count of the directly built
        // R_A, and the ambient count equals |Chr² s|.
        let models: Vec<AgreementFunction> = vec![
            AgreementFunction::k_concurrency(3, 1),
            AgreementFunction::k_concurrency(3, 2),
            AgreementFunction::of_adversary(&Adversary::wait_free(3)),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
            AgreementFunction::k_concurrency(4, 2),
        ];
        for alpha in &models {
            for side in [
                CriticalSideCondition::Union,
                CriticalSideCondition::TripleIntersection,
            ] {
                let census =
                    fair_census_quotiented_with(alpha, side).expect("symmetric model has a census");
                let direct = fair_affine_task_with(alpha, side);
                assert_eq!(
                    census.facet_count,
                    direct.complex().facet_count(),
                    "model {alpha:?}, side {side:?}"
                );
                let n = alpha.num_processes();
                let fubini2 = act_topology::fubini(n) * act_topology::fubini(n);
                assert_eq!(census.chr2_facet_count as u64, fubini2);
            }
        }
    }

    #[test]
    fn asymmetric_alpha_has_no_quotient_census() {
        let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
        assert!(!alpha_is_symmetric(&alpha));
        assert!(fair_census_quotiented(&alpha).is_none());
    }

    #[test]
    fn n5_census_is_reachable() {
        // Previously unreachable: |Chr² s| = 541² = 292 681 facets at
        // n = 5. The census touches only 16 representative expansions.
        let alpha = AgreementFunction::k_concurrency(5, 2);
        let census = fair_census_quotiented(&alpha).unwrap();
        assert_eq!(census.orbit_count, 16, "compositions of 5");
        assert_eq!(census.chr2_facet_count, 541 * 541);
        assert!(census.facet_count > 0 && census.facet_count < 541 * 541);
    }

    #[test]
    fn apply_to_shared_matches_apply_to() {
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let task = fair_affine_task(&alpha);
        let base = Complex::standard(3);
        let l1_direct = task.apply_to(&base);
        let l1_shared = task.apply_to_shared(&base);
        assert_eq!(l1_direct, l1_shared, "level 1 byte-identical");
        let l2_direct = task.apply_to(&l1_direct);
        let l2_shared = task.apply_to_shared(&l1_shared);
        assert_eq!(l2_direct, l2_shared, "level 2 byte-identical");
    }

    #[test]
    #[should_panic(expected = "α(Π) ≥ 1")]
    fn powerless_model_rejected() {
        let alpha = AgreementFunction::from_fn(2, |_| 0);
        let _ = fair_affine_task(&alpha);
    }

    #[test]
    fn one_resilient_r_a_contains_central_facets() {
        // For the 1-resilient adversary, fully synchronous double runs are
        // always allowed.
        let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1));
        let r = fair_affine_task(&alpha);
        let chr2 = r.complex();
        let full = ColorSet::full(3);
        let sync = chr2.facets().iter().find(|f| {
            f.vertices()
                .iter()
                .all(|&v| chr2.base_colors_of_vertex(v) == full)
        });
        assert!(sync.is_some(), "the synchronous facet survives in R_A");
    }
}
