//! `View1` / `View2` of vertices of `Chr² s` (Section 4 of the paper).
//!
//! For a vertex `v` of a level-2 complex, `View2(v)` is the set of processes
//! seen by `χ(v)` in the second immediate snapshot —
//! `χ(carrier(v, Chr s))` — and `View1(v)` is the set seen in the first:
//! `χ(carrier(v', s))` where `v'` is `χ(v)`'s own vertex inside
//! `carrier(v, Chr s)`.

use act_topology::{ColorSet, Complex, Simplex, VertexId};

/// The first- and second-round views of a vertex of a level-2 complex.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Views {
    /// `View1(v)`: processes seen in the first immediate snapshot.
    pub view1: ColorSet,
    /// `View2(v)`: processes seen in the second immediate snapshot.
    pub view2: ColorSet,
}

/// Computes `View1` and `View2` of a vertex of a level-2 complex.
///
/// # Panics
///
/// Panics if the complex is not at subdivision level ≥ 2 relative to its
/// base, or if the vertex's carrier violates self-inclusion (impossible for
/// complexes produced by this workspace's subdivisions).
pub fn views_of(complex: &Complex, v: VertexId) -> Views {
    let parent = complex
        .parent()
        .expect("views are defined on (at least) second subdivisions");
    let data = complex.vertex(v);
    let view2 = parent.colors(&data.carrier);
    let own = data
        .carrier
        .vertices()
        .iter()
        .copied()
        .find(|&w| parent.color(w) == data.color)
        .expect("self-inclusion: a process appears in its own snapshot");
    let view1 = parent.base_colors_of_vertex(own);
    Views { view1, view2 }
}

/// The carrier of `v` in the previous level, as a simplex (the simplicial
/// form of `View2`).
pub fn view2_carrier(complex: &Complex, v: VertexId) -> &Simplex {
    complex.carrier_of_vertex(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_nest_with_carriers() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        for facet in chr2.facets() {
            for &v in facet.vertices() {
                let w = views_of(&chr2, v);
                let c = chr2.color(v);
                assert!(w.view1.contains(c), "self-inclusion in round 1");
                assert!(w.view2.contains(c), "self-inclusion in round 2");
                // The total knowledge carrier contains both views' unions.
                let total = chr2.base_colors_of_vertex(v);
                assert!(w.view1.is_subset_of(total));
            }
        }
    }

    #[test]
    fn synchronous_then_solo_views() {
        use act_topology::{all_recipes, Osp};
        // Build the single Chr² facet for the run: round 1 synchronous,
        // round 2 fully sequential p1, p2, p3.
        let s = Complex::standard(3);
        let full = ColorSet::full(3);
        let _ = all_recipes(full, 1); // exercise the helper
        let recipe = vec![Osp::synchronous(full), Osp::sequential(full)];
        let k = s.subdivide_patterned(2, move |_| vec![recipe.clone()]);
        assert_eq!(k.facet_count(), 1);
        let facet = &k.facets()[0];
        for &v in facet.vertices() {
            let w = views_of(&k, v);
            assert_eq!(w.view1, full, "everyone saw everyone in round 1");
            // Round 2 sequential: p_i sees p_1..p_i.
            let c = k.color(v);
            assert_eq!(w.view2, ColorSet::from_indices(0..=c.index()));
        }
    }

    #[test]
    fn view2_matches_carrier_colors() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let parent = chr2.parent().unwrap();
        for facet in chr2.facets() {
            for &v in facet.vertices() {
                let w = views_of(&chr2, v);
                assert_eq!(w.view2, parent.colors(view2_carrier(&chr2, v)));
            }
        }
    }
}
