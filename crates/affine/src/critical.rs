//! Critical simplices (Definition 7), their members and views, and the
//! concurrency map (Definition 8) — Figures 5 and 6 of the paper.
//!
//! A critical simplex of `Chr s` is a set of processes sharing the same
//! first-round view whose disappearance would strictly lower the agreement
//! power of that view: it "witnesses" a level of agreement power. Critical
//! simplices drive both the waiting discipline of Algorithm 1 and the
//! definition of the affine task `R_A`.

use std::collections::HashMap;

use act_adversary::AgreementFunction;
use act_topology::{ColorSet, Complex, Simplex};

/// Derived critical-simplex data of one simplex of `Chr s`, produced by
/// [`CriticalAnalysis::analyze`].
#[derive(Clone, Debug)]
pub struct CriticalInfo {
    /// `CS_α(σ)`: the critical sub-simplices of `σ`.
    pub critical: Vec<Simplex>,
    /// `CSM_α(σ)`: the vertices of `σ` belonging to some critical simplex,
    /// as a simplex.
    pub members: Simplex,
    /// `χ(CSM_α(σ))`: the colors of the members.
    pub member_colors: ColorSet,
    /// `χ(CSV_α(σ))`: the colors of the carrier (in `s`) of the members —
    /// the processes observed by `σ`'s critical simplices in their `View1`.
    pub view_colors: ColorSet,
    /// `Conc_α(σ)`: the concurrency level (Definition 8).
    pub concurrency: usize,
}

/// Evaluator of Definitions 7 and 8 over a fixed level-1 complex (`Chr` of
/// the standard simplex) and agreement function, with memoization.
///
/// The memo cache is thread-private: the parallel facet filter of the
/// `R_A` construction (`fair.rs`) creates one `CriticalAnalysis` per
/// worker thread, so no locking is needed on the hot path. The type is
/// `Send` (asserted by a test), which is what the scoped-thread fan-out
/// requires.
///
/// # Examples
///
/// ```
/// use act_adversary::AgreementFunction;
/// use act_affine::CriticalAnalysis;
/// use act_topology::Complex;
///
/// let chr = Complex::standard(3).chromatic_subdivision();
/// let alpha = AgreementFunction::k_concurrency(3, 1);
/// let mut crit = CriticalAnalysis::new(&chr, &alpha);
/// // The synchronous facet (all carriers full) is critical for 1-OF.
/// let sync = chr.facets().iter()
///     .find(|f| f.vertices().iter().all(|&v| chr.base_colors_of_vertex(v).len() == 3))
///     .unwrap()
///     .clone();
/// assert!(crit.is_critical(&sync));
/// ```
pub struct CriticalAnalysis<'a> {
    chr: &'a Complex,
    alpha: &'a AgreementFunction,
    cache: HashMap<Simplex, CriticalInfo>,
}

impl<'a> CriticalAnalysis<'a> {
    /// Creates an analysis over a level-1 complex (a subdivision of the
    /// standard simplex) and an agreement function.
    ///
    /// # Panics
    ///
    /// Panics if `chr` is a base complex (level 0) or the process counts
    /// disagree.
    pub fn new(chr: &'a Complex, alpha: &'a AgreementFunction) -> Self {
        assert!(chr.level() >= 1, "critical simplices live in a subdivision");
        assert_eq!(
            chr.num_processes(),
            alpha.num_processes(),
            "complex and agreement function sizes differ"
        );
        CriticalAnalysis {
            chr,
            alpha,
            cache: HashMap::new(),
        }
    }

    /// The agreement function in use.
    pub fn alpha(&self) -> &AgreementFunction {
        self.alpha
    }

    /// Whether `σ` is a critical simplex (Definition 7): all its vertices
    /// share the carrier of `σ`, and removing `χ(σ)` from that carrier's
    /// colors strictly lowers the agreement power.
    pub fn is_critical(&self, sigma: &Simplex) -> bool {
        if sigma.is_empty() {
            return false;
        }
        let carrier_colors = self.chr.carrier_colors(sigma);
        if !sigma
            .vertices()
            .iter()
            .all(|&v| self.chr.base_colors_of_vertex(v) == carrier_colors)
        {
            return false;
        }
        let chi = self.chr.colors(sigma);
        self.alpha.alpha(carrier_colors.minus(chi)) < self.alpha.alpha(carrier_colors)
    }

    /// Full critical analysis of `σ` (memoized): `CS_α`, `CSM_α`, `CSV_α`
    /// and `Conc_α`.
    pub fn analyze(&mut self, sigma: &Simplex) -> &CriticalInfo {
        if !self.cache.contains_key(sigma) {
            let mut critical = Vec::new();
            let mut members = Simplex::empty();
            let mut concurrency = 0usize;
            for face in sigma.non_empty_faces() {
                if self.is_critical(&face) {
                    members = members.union(&face);
                    let power = self.alpha.alpha(self.chr.carrier_colors(&face));
                    concurrency = concurrency.max(power);
                    critical.push(face);
                }
            }
            let member_colors = self.chr.colors(&members);
            let view_colors = self.chr.carrier_colors(&members);
            let info = CriticalInfo {
                critical,
                members,
                member_colors,
                view_colors,
                concurrency,
            };
            self.cache.insert(sigma.clone(), info);
        }
        &self.cache[sigma]
    }

    /// `Conc_α(σ)` (Definition 8).
    pub fn concurrency(&mut self, sigma: &Simplex) -> usize {
        self.analyze(sigma).concurrency
    }

    /// `χ(CSM_α(σ))`.
    pub fn member_colors(&mut self, sigma: &Simplex) -> ColorSet {
        self.analyze(sigma).member_colors
    }

    /// `χ(CSV_α(σ))`.
    pub fn view_colors(&mut self, sigma: &Simplex) -> ColorSet {
        self.analyze(sigma).view_colors
    }

    /// The critical simplices of `σ` whose carrier has agreement power
    /// `≥ level`, used by the distribution lemma (Lemma 3).
    pub fn critical_at_least(&mut self, sigma: &Simplex, level: usize) -> Vec<Simplex> {
        let alpha = self.alpha;
        let chr = self.chr;
        self.analyze(sigma)
            .critical
            .iter()
            .filter(|t| alpha.alpha(chr.carrier_colors(t)) >= level)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::{zoo, Adversary};

    fn chr3() -> Complex {
        Complex::standard(3).chromatic_subdivision()
    }

    #[test]
    fn one_of_critical_simplices_are_synchronous_blocks() {
        // Figure 5a: for α(P) = min(|P|, 1), σ is critical iff
        // χ(σ) = χ(carrier(σ, s)) and all vertices share that carrier:
        // the "synchronous block on its whole carrier" simplices.
        let chr = chr3();
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let crit = CriticalAnalysis::new(&chr, &alpha);
        let mut count = 0;
        for facet in chr.facets() {
            for face in facet.non_empty_faces() {
                let expected = face
                    .vertices()
                    .iter()
                    .all(|&v| chr.base_colors_of_vertex(v) == chr.carrier_colors(&face))
                    && chr.colors(&face) == chr.carrier_colors(&face);
                assert_eq!(crit.is_critical(&face), expected, "{face:?}");
                if expected {
                    count += 1;
                }
            }
        }
        // Distinct critical simplices: the central simplex of Chr(t) for
        // every non-empty face t of s — but counted here once per facet
        // containing them; at least the 7 distinct ones exist.
        assert!(count >= 7);
    }

    #[test]
    fn distinct_one_of_critical_simplices() {
        // Count *distinct* critical simplices for 1-OF: exactly one per
        // non-empty face of s (its synchronous/central simplex): 7 for n=3.
        let chr = chr3();
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let crit = CriticalAnalysis::new(&chr, &alpha);
        let mut distinct = std::collections::BTreeSet::new();
        for facet in chr.facets() {
            for face in facet.non_empty_faces() {
                if crit.is_critical(&face) {
                    distinct.insert(face);
                }
            }
        }
        assert_eq!(distinct.len(), 7);
    }

    #[test]
    fn figure_5b_critical_simplices() {
        // The adversary {p2}, {p1,p3} + supersets (Figure 5b).
        let chr = chr3();
        let a = zoo::figure_5b_adversary();
        let alpha = AgreementFunction::of_adversary(&a);
        let crit = CriticalAnalysis::new(&chr, &alpha);
        // p2 running solo is critical: carrier {p2}, α({p2}) = 1 > α(∅).
        let solo_p2 = chr
            .facets()
            .iter()
            .flat_map(|f| f.non_empty_faces())
            .find(|f| {
                f.len() == 1
                    && chr.colors(f) == ColorSet::from_indices([1])
                    && chr.carrier_colors(f) == ColorSet::from_indices([1])
            })
            .unwrap();
        assert!(crit.is_critical(&solo_p2));
        // p1 running solo is NOT critical: α({p1}) = 0.
        let solo_p1 = chr
            .facets()
            .iter()
            .flat_map(|f| f.non_empty_faces())
            .find(|f| {
                f.len() == 1
                    && chr.colors(f) == ColorSet::from_indices([0])
                    && chr.carrier_colors(f) == ColorSet::from_indices([0])
            })
            .unwrap();
        assert!(!crit.is_critical(&solo_p1));
    }

    #[test]
    fn lemma_11_same_power_implies_same_view() {
        // ∀σ ∈ Chr s, two critical simplices of σ with equal agreement
        // power share their carrier (first-round view).
        let chr = chr3();
        let models: Vec<AgreementFunction> = vec![
            AgreementFunction::k_concurrency(3, 1),
            AgreementFunction::k_concurrency(3, 2),
            AgreementFunction::of_adversary(&zoo::figure_5b_adversary()),
            AgreementFunction::of_adversary(&Adversary::t_resilient(3, 1)),
            AgreementFunction::of_adversary(&Adversary::wait_free(3)),
        ];
        for alpha in &models {
            let mut crit = CriticalAnalysis::new(&chr, alpha);
            for facet in chr.facets() {
                let info = crit.analyze(facet).clone();
                for t1 in &info.critical {
                    for t2 in &info.critical {
                        let p1 = alpha.alpha(chr.carrier_colors(t1));
                        let p2 = alpha.alpha(chr.carrier_colors(t2));
                        if p1 == p2 {
                            assert_eq!(
                                chr.carrier_colors(t1),
                                chr.carrier_colors(t2),
                                "Lemma 11 violated"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn concurrency_map_for_one_of() {
        // Figure 6a: every simplex of Chr s containing a critical simplex
        // has concurrency 1, the others 0.
        let chr = chr3();
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let mut crit = CriticalAnalysis::new(&chr, &alpha);
        for facet in chr.facets() {
            for face in facet.non_empty_faces() {
                let c = crit.concurrency(&face);
                let has_critical = !crit.analyze(&face).critical.is_empty();
                assert_eq!(c, usize::from(has_critical));
            }
        }
    }

    #[test]
    fn concurrency_map_for_figure_5b() {
        // Figure 6b: concurrency levels 0, 1, 2 all occur.
        let chr = chr3();
        let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
        let mut crit = CriticalAnalysis::new(&chr, &alpha);
        let mut seen = std::collections::BTreeSet::new();
        for facet in chr.facets() {
            for face in facet.non_empty_faces() {
                seen.insert(crit.concurrency(&face));
            }
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn critical_analysis_is_send() {
        // The parallel R_A filter moves per-worker instances into scoped
        // threads; keep the type Send.
        fn assert_send<T: Send>() {}
        assert_send::<CriticalAnalysis<'_>>();
    }

    #[test]
    fn empty_simplex_is_not_critical() {
        let chr = chr3();
        let alpha = AgreementFunction::k_concurrency(3, 1);
        let crit = CriticalAnalysis::new(&chr, &alpha);
        assert!(!crit.is_critical(&Simplex::empty()));
    }

    #[test]
    fn members_and_views_are_consistent() {
        let chr = chr3();
        let alpha = AgreementFunction::of_adversary(&zoo::figure_5b_adversary());
        let mut crit = CriticalAnalysis::new(&chr, &alpha);
        for facet in chr.facets() {
            let info = crit.analyze(facet).clone();
            // Members are exactly the union of critical simplices' vertices.
            let mut expect = Simplex::empty();
            for t in &info.critical {
                expect = expect.union(t);
            }
            assert_eq!(info.members, expect);
            assert_eq!(info.member_colors, chr.colors(&info.members));
            assert!(info.member_colors.is_subset_of(info.view_colors) || info.members.is_empty());
        }
    }
}
