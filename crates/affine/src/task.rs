//! Affine tasks: pure sub-complexes of `Chr² s`, their carrier-map
//! restrictions, and their iteration (`L^m`, the affine model `L^*`).

use std::collections::HashMap;
use std::fmt;

use act_topology::{all_recipes, ColorSet, Complex, ProcessId, Recipe, Simplex, VertexId};

/// Process-global count of affine subdivision rounds: one per
/// [`AffineTask::apply_to`] call, i.e. one per domain-tower level actually
/// built. This is the unit of work a domain cache saves — regression tests
/// diff it to prove that a cached extension costs exactly one round and a
/// store-backed warm restart costs zero.
pub static APPLY_CALLS: act_obs::Counter = act_obs::Counter::new("affine.apply_to");

/// An affine task: a pure, non-empty, chromatic sub-complex `L ⊆ Chr² s`
/// (Section 2 of the paper). The associated task is `(s, L, Δ)` with
/// `Δ(t) = L ∩ Chr²(t)` for every face `t ⊆ s`.
///
/// # Examples
///
/// ```
/// use act_affine::AffineTask;
/// use act_topology::Complex;
///
/// // The wait-free affine task: all of Chr² s.
/// let chr2 = Complex::standard(3).iterated_subdivision(2);
/// let l = AffineTask::new("wait-free", chr2);
/// assert_eq!(l.complex().facet_count(), 169);
/// ```
#[derive(Clone)]
pub struct AffineTask {
    name: String,
    complex: Complex,
}

impl AffineTask {
    /// Wraps a level-2 sub-complex of `Chr² s` as an affine task.
    ///
    /// # Panics
    ///
    /// Panics if the complex is not a pure, non-empty, chromatic complex of
    /// dimension `n − 1` at subdivision level 2 over the standard simplex.
    pub fn new(name: impl Into<String>, complex: Complex) -> AffineTask {
        let n = complex.num_processes();
        assert_eq!(complex.level(), 2, "affine tasks live in Chr² s");
        assert_eq!(
            complex.base().num_vertices(),
            n,
            "affine tasks are defined over the standard simplex"
        );
        assert!(!complex.is_void(), "affine tasks are non-empty");
        assert!(complex.is_pure(), "affine tasks are pure complexes");
        assert_eq!(
            complex.dim(),
            n as isize - 1,
            "affine tasks have full dimension"
        );
        assert!(complex.is_chromatic(), "affine tasks are chromatic");
        AffineTask {
            name: name.into(),
            complex,
        }
    }

    /// The task's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of processes.
    pub fn num_processes(&self) -> usize {
        self.complex.num_processes()
    }

    /// The output complex `L`.
    pub fn complex(&self) -> &Complex {
        &self.complex
    }

    /// The carrier-map value `Δ(t) = L ∩ Chr²(t)` for the face of `s`
    /// spanned by `participants`. May be void ("participation must grow
    /// before outputs are produced").
    pub fn delta(&self, participants: ColorSet) -> Complex {
        self.complex.restrict_carrier_colors(participants)
    }

    /// The depth-2 recipes of `L ∩ Chr²(t)` for the face spanned by
    /// `participants`: the ordered-set-partition pairs over `participants`
    /// whose 2-round IS run lands in `L`.
    ///
    /// These recipes drive the iteration of the task over arbitrary
    /// complexes.
    pub fn recipes(&self, participants: ColorSet) -> Vec<Recipe> {
        let parent = self
            .complex
            .parent()
            .expect("level-2 complexes have a parent");
        // Base vertices resolved by color, not by index: a color-permuted
        // affine complex (see `act_topology::permute_complex`) keeps its
        // vertex numbering, so vertex `i` need not carry color `i`.
        let base = self.complex.base();
        let mut base_vertex: HashMap<ProcessId, VertexId> = HashMap::new();
        for i in 0..base.num_vertices() {
            let v = VertexId::from_index(i);
            base_vertex.insert(base.color(v), v);
        }
        let mut out = Vec::new();
        'recipes: for recipe in all_recipes(participants, 2) {
            let r1 = &recipe[0];
            let r2 = &recipe[1];
            // Resolve the level-1 vertex of each color.
            let mut level1: HashMap<ProcessId, VertexId> = HashMap::new();
            for c in participants.iter() {
                let view1 = r1.view_of(c).expect("recipe covers all participants");
                let carrier0 = Simplex::from_vertices(view1.iter().map(|p| base_vertex[&p]));
                match parent.find_vertex(c, &carrier0) {
                    Some(v) => {
                        level1.insert(c, v);
                    }
                    None => continue 'recipes,
                }
            }
            // Resolve the level-2 vertex of each color and collect the
            // candidate simplex.
            let mut verts = Vec::new();
            for c in participants.iter() {
                let view2 = r2.view_of(c).expect("recipe covers all participants");
                let carrier1 = Simplex::from_vertices(view2.iter().map(|p| level1[&p]));
                match self.complex.find_vertex(c, &carrier1) {
                    Some(v) => verts.push(v),
                    None => continue 'recipes,
                }
            }
            let candidate = Simplex::from_vertices(verts);
            if self.complex.contains_simplex(&candidate) {
                out.push(recipe);
            }
        }
        out
    }

    /// Applies one iteration of the task to a chromatic complex: every
    /// facet `σ` is replaced by the copies of `L ∩ Chr²(s_{χ(σ)})` drawn
    /// inside `Chr² σ`, glued along shared faces. Applying to the standard
    /// simplex `m` times yields `L^m`.
    pub fn apply_to(&self, complex: &Complex) -> Complex {
        APPLY_CALLS.add(1);
        complex.subdivide_patterned(2, |colors| self.recipes(colors))
    }

    /// [`AffineTask::apply_to`] with symmetry-orbit sharing: one
    /// representative facet per color-symmetry orbit of `complex` is
    /// expanded directly and the rest are transported
    /// ([`Complex::subdivide_patterned_orbit_shared`]). Byte-identical to
    /// `apply_to`; facets whose recipe sets are not equivariant fall back
    /// to direct expansion, so this is always correct — just faster when
    /// the input (and the task) are symmetric.
    pub fn apply_to_shared(&self, complex: &Complex) -> Complex {
        APPLY_CALLS.add(1);
        complex.subdivide_patterned_orbit_shared(2, |colors| self.recipes(colors))
    }

    /// The iterated task `L^m` over the standard simplex, a sub-complex of
    /// `Chr^{2m} s`.
    ///
    /// # Panics
    ///
    /// Panics if `m = 0`.
    pub fn iterate(&self, m: usize) -> Complex {
        assert!(m >= 1, "iteration count must be at least 1");
        let mut c = Complex::standard(self.num_processes());
        for _ in 0..m {
            c = self.apply_to(&c);
        }
        c
    }

    /// A portable description of the task: its full-participation recipes
    /// (each facet as its pair of ordered set partitions). Serializable
    /// with serde; [`AffineTask::from_recipes`] rebuilds the task.
    pub fn to_recipes(&self) -> Vec<Recipe> {
        self.complex
            .facets()
            .iter()
            .map(|f| self.complex.recipe_of_facet(f, 2))
            .collect()
    }

    /// Rebuilds an affine task from full-participation recipes (the
    /// inverse of [`AffineTask::to_recipes`]).
    ///
    /// # Panics
    ///
    /// Panics if a recipe does not describe a facet of `Chr² s` over `n`
    /// processes, or the resulting complex is not a valid affine task.
    pub fn from_recipes(name: impl Into<String>, n: usize, recipes: &[Recipe]) -> AffineTask {
        let chr2 = Complex::standard(n).iterated_subdivision(2);
        let base_facet = Complex::standard(n).facets()[0].clone();
        let facets: Vec<Simplex> = recipes
            .iter()
            .map(|r| {
                chr2.simplex_for_recipe(&base_facet, r)
                    .expect("recipe describes a facet of Chr² s")
            })
            .collect();
        AffineTask::new(name, chr2.sub_complex(facets))
    }
}

impl fmt::Debug for AffineTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AffineTask({}, {} facets of dim {})",
            self.name,
            self.complex.facet_count(),
            self.complex.dim()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_free(n: usize) -> AffineTask {
        AffineTask::new("wait-free", Complex::standard(n).iterated_subdivision(2))
    }

    #[test]
    fn wait_free_task_recipes_are_all() {
        let l = wait_free(3);
        let full = ColorSet::full(3);
        assert_eq!(l.recipes(full).len(), 169);
        let pair = ColorSet::from_indices([0, 1]);
        assert_eq!(l.recipes(pair).len(), 9);
        let solo = ColorSet::from_indices([2]);
        assert_eq!(l.recipes(solo).len(), 1);
    }

    #[test]
    fn iterate_once_reproduces_the_task() {
        let l = wait_free(2);
        let l1 = l.iterate(1);
        assert!(l1.same_complex(l.complex()));
    }

    #[test]
    fn iterate_twice_of_wait_free_is_chr4() {
        let l = wait_free(2);
        let l2 = l.iterate(2);
        let chr4 = Complex::standard(2).iterated_subdivision(4);
        assert_eq!(l2.facet_count(), chr4.facet_count());
        assert!(l2.same_complex(&chr4));
    }

    #[test]
    fn delta_restricts_participation() {
        let l = wait_free(3);
        let pair = ColorSet::from_indices([0, 1]);
        let d = l.delta(pair);
        assert!(!d.is_void());
        // Δ({p1,p2}) is Chr² of an edge: 9 facets.
        assert_eq!(d.facet_count(), 9);
        for f in d.facets() {
            assert!(d.carrier_colors(f).is_subset_of(pair));
        }
    }

    #[test]
    fn sub_task_recipes_subset_of_full() {
        // An affine task that keeps only runs whose second round is
        // synchronous.
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let kept: Vec<Simplex> = chr2
            .facets()
            .iter()
            .filter(|f| {
                f.vertices().iter().all(|&v| {
                    chr2.parent()
                        .unwrap()
                        .colors(chr2.carrier_of_vertex(v))
                        .len()
                        == 3
                })
            })
            .cloned()
            .collect();
        assert_eq!(kept.len(), 13, "one synchronous second round per Chr-facet");
        let l = AffineTask::new("sync-2nd", chr2.sub_complex(kept));
        let recipes = l.recipes(ColorSet::full(3));
        assert_eq!(recipes.len(), 13);
        for r in &recipes {
            assert_eq!(r[1].num_blocks(), 1, "second round is synchronous");
        }
        // Restricted participation: no sub-simplex of a sync-2nd facet has
        // carrier inside a proper face... actually the corner simplices do.
        // Just check recipes are consistent with delta.
        let pair = ColorSet::from_indices([0, 1]);
        let d = l.delta(pair);
        let r = l.recipes(pair);
        // Each recipe over the pair corresponds to a facet of Δ(pair) of
        // full pair dimension; Δ may also contain lower-dim facets.
        assert!(r.len() <= d.facet_count().max(9));
    }

    #[test]
    fn recipes_roundtrip_through_serialization() {
        use crate::fair::fair_affine_task;
        let alpha = act_adversary::AgreementFunction::k_concurrency(3, 1);
        let task = fair_affine_task(&alpha);
        let recipes = task.to_recipes();
        assert_eq!(recipes.len(), task.complex().facet_count());
        // Serde round-trip of the portable description.
        let json = serde_json::to_string(&recipes).unwrap();
        let back: Vec<Recipe> = serde_json::from_str(&json).unwrap();
        let rebuilt = AffineTask::from_recipes("roundtrip", 3, &back);
        assert!(rebuilt.complex().same_complex(task.complex()));
    }

    #[test]
    #[should_panic(expected = "Chr²")]
    fn wrong_level_rejected() {
        let chr = Complex::standard(2).chromatic_subdivision();
        let _ = AffineTask::new("bad", chr);
    }

    #[test]
    #[should_panic(expected = "pure")]
    fn non_pure_rejected() {
        let chr2 = Complex::standard(2).iterated_subdivision(2);
        // A facet plus a disconnected lower-dim simplex elsewhere.
        let facet = chr2.facets()[0].clone();
        let outside = chr2
            .used_vertices()
            .into_iter()
            .find(|&v| !facet.contains(v))
            .expect("Chr² of an edge has vertices outside any one facet");
        let sub = chr2.sub_complex(vec![facet, Simplex::vertex(outside)]);
        let _ = AffineTask::new("bad", sub);
    }
}
