//! The previously known affine tasks: `R_{k-OF}` (Definition 6, Gafni et
//! al.) and `R_{t-res}` (Saraph–Herlihy–Gafni), plus the wait-free task.
//!
//! These serve as independent cross-checks of the general `R_A`
//! construction: on a `k`-obstruction-free adversary, Definition 9 must
//! reduce to Definition 6 (the paper: "one can check, which is not
//! obvious"); the reproduction checks it computationally.
//!
//! *Extension hook*: the affine tasks for `k`-test-and-set of
//! Kuznetsov–Rieutord (reference [25] of the paper) would slot in here;
//! they are listed as future work by the paper and are out of scope.

use act_topology::{parallel_filter_facets, subdivision_threads, Complex, Simplex};

use crate::contention::max_contention_dim;
use crate::task::AffineTask;

/// The affine task `R_{k-OF}` of the `k`-obstruction-free adversary
/// (Definition 6): the pure complement in `Chr² s` of the contention
/// simplices of dimension `≥ k` — i.e. the facets whose largest contention
/// simplex has fewer than `k + 1` processes.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds `n`.
pub fn k_obstruction_free_task(n: usize, k: usize) -> AffineTask {
    assert!((1..=n).contains(&k), "k must be in 1..=n");
    let chr2 = Complex::standard(n).iterated_subdivision(2);
    // Pure complement as a chunked, order-preserving facet filter (the
    // facets of Chr² s are all maximal, so filtering them is equivalent).
    let kept: Vec<Simplex> = parallel_filter_facets(
        chr2.facets(),
        subdivision_threads(),
        || (),
        |(), facet| {
            !facet.non_empty_faces().any(|theta| {
                theta.dim() >= k as isize && crate::contention::is_contention_simplex(&chr2, &theta)
            })
        },
    );
    AffineTask::new(format!("R_{k}-OF"), chr2.sub_complex(kept))
}

/// The affine task `R_{t-res}` of the `t`-resilient adversary
/// (Saraph et al.): the facets of `Chr² s` in which every process sees at
/// least `n − t − 1` *other* processes across the two immediate snapshots —
/// equivalently, the pure complement of the star of the low-participation
/// skeleton (carriers of at most `n − t − 1` processes).
///
/// # Panics
///
/// Panics if `t >= n`.
pub fn t_resilient_task(n: usize, t: usize) -> AffineTask {
    assert!(t < n, "t-resilience requires t < n");
    let chr2 = Complex::standard(n).iterated_subdivision(2);
    // Chunked, order-preserving filter: identical to a serial filter for
    // every thread count.
    let kept: Vec<Simplex> = parallel_filter_facets(
        chr2.facets(),
        subdivision_threads(),
        || (),
        |(), f| {
            f.vertices()
                .iter()
                .all(|&v| chr2.base_colors_of_vertex(v).len() >= n - t)
        },
    );
    AffineTask::new(format!("R_{t}-res"), chr2.sub_complex(kept))
}

/// The wait-free affine task: all of `Chr² s` (Herlihy–Shavit; equal to
/// both `R_{(n-1)-res}` and `R_{n-OF}`).
pub fn wait_free_task(n: usize) -> AffineTask {
    AffineTask::new("wait-free", Complex::standard(n).iterated_subdivision(2))
}

/// Convenience: the maximal contention dimension over all facets of a
/// task's complex (diagnostics for Figure 7).
pub fn max_contention_of_task(task: &AffineTask) -> isize {
    let k = task.complex();
    k.facets()
        .iter()
        .map(|f| max_contention_dim(k, f))
        .max()
        .unwrap_or(-1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_adversary::AgreementFunction;

    use crate::fair::{fair_affine_task_with, CriticalSideCondition};

    #[test]
    fn wait_free_equals_full_chr2() {
        let l = wait_free_task(3);
        assert_eq!(l.complex().facet_count(), 169);
        let r = t_resilient_task(3, 2);
        assert!(l.complex().same_complex(r.complex()));
        let r = k_obstruction_free_task(3, 3);
        assert!(l.complex().same_complex(r.complex()));
    }

    #[test]
    fn figure_1b_one_resilient_task() {
        // Figure 1b: R_{1-res} for 3 processes is a proper sub-complex
        // excluding the corner regions where a process saw only itself.
        let r = t_resilient_task(3, 1);
        let count = r.complex().facet_count();
        assert!(count > 0 && count < 169, "got {count}");
        for f in r.complex().facets() {
            for &v in f.vertices() {
                assert!(r.complex().base_colors_of_vertex(v).len() >= 2);
            }
        }
    }

    #[test]
    fn k_of_tasks_are_nested() {
        let c1 = k_obstruction_free_task(3, 1).complex().facet_count();
        let c2 = k_obstruction_free_task(3, 2).complex().facet_count();
        let c3 = k_obstruction_free_task(3, 3).complex().facet_count();
        assert!(c1 < c2 && c2 < c3, "{c1} < {c2} < {c3} violated");
        assert_eq!(c3, 169);
    }

    #[test]
    fn definition_9_refines_definition_6() {
        // The paper says Definition 9 "reduces to" R_{k-OF} on the
        // k-obstruction-free adversary. Computationally (and consistently
        // with hand-simulating Algorithm 1), the relationship at n = 3 is:
        //
        //   R_A(Def 9) ⊆ R_{k-OF}(Def 6), with equality at k = 1 and k = n,
        //   and strict containment for intermediate k: Def 9 additionally
        //   excludes runs in which a process with a large View1 overtakes
        //   in round 2 without a critical excuse — runs Algorithm 1's
        //   waiting phase can never produce. (At n = 4, k = 2 the two
        //   complexes become incomparable — see tests/n4_validation.rs.)
        //   Both tasks capture the same model (validated by the
        //   solvability experiments).
        for n in 2..=3 {
            for k in 1..=n {
                let alpha = AgreementFunction::k_concurrency(n, k);
                let general = fair_affine_task_with(&alpha, CriticalSideCondition::Union);
                let direct = k_obstruction_free_task(n, k);
                let g = general.complex().canonical_facets();
                let d = direct.complex().canonical_facets();
                assert!(
                    g.is_subset(&d),
                    "R_A ⊆ R_{{k-OF}} violated for n = {n}, k = {k}"
                );
                if k == 1 || k == n {
                    assert_eq!(g, d, "equality at k = {k}, n = {n}");
                }
            }
        }
        // The documented strictness for (n, k) = (3, 2).
        let alpha = AgreementFunction::k_concurrency(3, 2);
        let general = fair_affine_task_with(&alpha, CriticalSideCondition::Union);
        assert_eq!(general.complex().facet_count(), 142);
        assert_eq!(k_obstruction_free_task(3, 2).complex().facet_count(), 163);
    }

    #[test]
    fn triple_intersection_reading_is_stricter() {
        // The literally-printed side condition of Definition 9 excludes
        // even more facets than the proofs' union form; both stay inside
        // Def 6. Recorded so the discrepancy is visible.
        for (n, k) in [(2, 1), (3, 1), (3, 2)] {
            let alpha = AgreementFunction::k_concurrency(n, k);
            let union = fair_affine_task_with(&alpha, CriticalSideCondition::Union);
            let triple = fair_affine_task_with(&alpha, CriticalSideCondition::TripleIntersection);
            let u = union.complex().canonical_facets();
            let t = triple.complex().canonical_facets();
            assert!(t.is_subset(&u), "triple ⊆ union for n = {n}, k = {k}");
            assert!(t.len() < u.len(), "strict for n = {n}, k = {k}");
        }
    }

    #[test]
    fn definition_9_equals_saraph_t_resilient_task() {
        // A reproduction finding: on t-resilient adversaries, the general
        // R_A of Definition 9 coincides EXACTLY with the independently
        // defined R_{t-res} of Saraph–Herlihy–Gafni, for every (n, t) we
        // can afford to check.
        use act_adversary::Adversary;
        for (n, t) in [(2usize, 0usize), (2, 1), (3, 0), (3, 1), (3, 2)] {
            let alpha = AgreementFunction::of_adversary(&Adversary::t_resilient(n, t));
            let general = fair_affine_task_with(&alpha, CriticalSideCondition::Union);
            let direct = t_resilient_task(n, t);
            assert!(
                general.complex().same_complex(direct.complex()),
                "R_A ≠ R_t-res for n = {n}, t = {t}: {} vs {} facets",
                general.complex().facet_count(),
                direct.complex().facet_count()
            );
        }
    }
}
