//! Portable binary encoding of complexes.
//!
//! A [`Complex`] is a chain of subdivision levels sharing `Arc`ed vertex
//! tables. This module flattens the whole chain — base first — into a
//! versioned, length-prefixed little-endian byte stream, and rebuilds a
//! structurally equal (`==`) chain from it. The encoding is the canonical
//! byte form behind [`Complex::content_hash`], and the payload the service
//! layer persists when it stores `R_A^ℓ` domain towers.
//!
//! Decoding is paranoid: every index is bounds-checked against the level it
//! refers to, so a truncated or bit-flipped payload yields a
//! [`PortableError`], never a panic or an out-of-range complex.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::color::{ColorSet, ProcessId, MAX_PROCESSES};
use crate::complex::{Complex, Structure, VertexData};
use crate::simplex::{Simplex, VertexId};

/// Magic prefix of the portable encoding (`ACTC`: act-topology complex).
const MAGIC: [u8; 4] = *b"ACTC";

/// Version of the portable byte layout. Bump on any change to the field
/// order or widths below — a mismatch is a decode error, so persisted
/// towers from an older layout degrade to clean rebuilds.
pub const PORTABLE_FORMAT_VERSION: u32 = 1;

/// A malformed portable payload: wrong magic/version, truncation, or an
/// out-of-range index. Carries a short human-readable reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableError(pub String);

impl fmt::Display for PortableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "portable complex: {}", self.0)
    }
}

impl std::error::Error for PortableError {}

fn err<T>(msg: impl Into<String>) -> Result<T, PortableError> {
    Err(PortableError(msg.into()))
}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn simplex(&mut self, s: &Simplex) {
        self.u32(s.len() as u32);
        for v in s.vertices() {
            self.u32(v.index() as u32);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32, PortableError> {
        match self.bytes.get(self.at..self.at + 4) {
            Some(b) => {
                self.at += 4;
                Ok(u32::from_le_bytes(b.try_into().unwrap()))
            }
            None => err("truncated (u32)"),
        }
    }

    fn u64(&mut self) -> Result<u64, PortableError> {
        match self.bytes.get(self.at..self.at + 8) {
            Some(b) => {
                self.at += 8;
                Ok(u64::from_le_bytes(b.try_into().unwrap()))
            }
            None => err("truncated (u64)"),
        }
    }

    /// Reads a length-prefixed simplex whose vertex ids must fall below
    /// `bound` (the vertex count of the level the simplex lives in).
    fn simplex(&mut self, bound: usize, what: &str) -> Result<Simplex, PortableError> {
        let len = self.u32()? as usize;
        if len > bound {
            return err(format!("{what} longer than its vertex table"));
        }
        let mut verts = Vec::with_capacity(len);
        for _ in 0..len {
            let v = self.u32()? as usize;
            if v >= bound {
                return err(format!("{what} vertex {v} out of range (< {bound})"));
            }
            verts.push(VertexId::from_index(v));
        }
        Ok(Simplex::from_vertices(verts))
    }
}

impl Complex {
    /// Whether two complexes share the same underlying representation
    /// (`Arc`-identical vertex table and facet list).
    ///
    /// This is a pointer check: `true` implies `==`, but two structurally
    /// equal complexes built independently report `false`. Callers use it
    /// as an O(1) fast path before a content-hash or structural compare.
    pub fn same_representation(&self, other: &Complex) -> bool {
        Arc::ptr_eq(&self.structure, &other.structure) && Arc::ptr_eq(&self.facets, &other.facets)
    }

    /// Encodes the whole subdivision chain (base first) into the versioned
    /// portable byte form. `decode_portable` round-trips to an `==` chain.
    pub fn encode_portable(&self) -> Vec<u8> {
        // Collect the chain base-first.
        let mut chain: Vec<&Complex> = Vec::new();
        let mut cur = Some(self);
        while let Some(c) = cur {
            chain.push(c);
            cur = c.parent();
        }
        chain.reverse();

        let mut w = Writer { out: Vec::new() };
        w.out.extend_from_slice(&MAGIC);
        w.u32(PORTABLE_FORMAT_VERSION);
        w.u32(self.num_processes() as u32);
        w.u32(chain.len() as u32);
        for level in &chain {
            let verts = &level.structure.vertices;
            w.u32(verts.len() as u32);
            for v in verts {
                w.u32(v.color.index() as u32);
                w.u64(v.label);
                w.simplex(&v.carrier);
                w.simplex(&v.base_carrier);
                w.u64(v.base_colors.bits());
            }
            w.u32(level.facets.len() as u32);
            for f in level.facets.iter() {
                w.simplex(f);
            }
        }
        w.out
    }

    /// Rebuilds a complex from [`Complex::encode_portable`] bytes.
    ///
    /// The result is structurally equal (`==`) to the encoded complex:
    /// every level's vertex table, facet list, and parent link are
    /// reproduced, and the derived key/star indices are rebuilt. Any
    /// truncation, version mismatch, or out-of-range index is a
    /// [`PortableError`].
    pub fn decode_portable(bytes: &[u8]) -> Result<Complex, PortableError> {
        let mut r = Reader { bytes, at: 0 };
        if bytes.get(..4) != Some(&MAGIC[..]) {
            return err("bad magic");
        }
        r.at = 4;
        let version = r.u32()?;
        if version != PORTABLE_FORMAT_VERSION {
            return err(format!(
                "format {version} != {PORTABLE_FORMAT_VERSION} (re-encode required)"
            ));
        }
        let n = r.u32()? as usize;
        if !(1..=MAX_PROCESSES).contains(&n) {
            return err(format!("process count {n} out of range"));
        }
        let num_levels = r.u32()? as usize;
        if num_levels == 0 {
            return err("empty chain");
        }
        // A subdivision chain deeper than 64 levels is far beyond anything
        // this system builds; treat it as corruption, not a work order.
        if num_levels > 64 {
            return err(format!("implausible chain depth {num_levels}"));
        }

        let mut parent: Option<Complex> = None;
        let mut base_count = 0usize;
        for level in 0..num_levels {
            let vertex_count = r.u32()? as usize;
            if r.bytes.len() - r.at < vertex_count {
                // Cheap plausibility bound before allocating: each vertex
                // occupies at least one byte of payload.
                return err("vertex table longer than payload");
            }
            if level == 0 {
                base_count = vertex_count;
            }
            let parent_count = parent.as_ref().map_or(0, Complex::num_vertices);
            // Base carriers index the level-0 table; at the base itself
            // that table is the one being read.
            let base_bound = if level == 0 { vertex_count } else { base_count };
            let mut vertices = Vec::with_capacity(vertex_count);
            for _ in 0..vertex_count {
                let color_idx = r.u32()? as usize;
                if color_idx >= n {
                    return err(format!("vertex color {color_idx} out of range (< {n})"));
                }
                let label = r.u64()?;
                let carrier = r.simplex(parent_count, "carrier")?;
                if level == 0 && !carrier.is_empty() {
                    return err("base vertex with a non-empty carrier");
                }
                let base_carrier = r.simplex(base_bound, "base carrier")?;
                let base_colors = ColorSet::from_bits(r.u64()?);
                vertices.push(VertexData {
                    color: ProcessId::new(color_idx),
                    carrier,
                    base_carrier,
                    base_colors,
                    label,
                });
            }
            let facet_count = r.u32()? as usize;
            if r.bytes.len() - r.at < facet_count {
                return err("facet list longer than payload");
            }
            let mut facets = Vec::with_capacity(facet_count);
            for _ in 0..facet_count {
                facets.push(r.simplex(vertex_count, "facet")?);
            }
            // The key index is derived: empty at the base (carriers are
            // empty there), canonical (color, carrier) → id above it —
            // exactly what the subdivision arena produces.
            let key_index: HashMap<(ProcessId, Simplex), VertexId> = if level == 0 {
                HashMap::new()
            } else {
                vertices
                    .iter()
                    .enumerate()
                    .map(|(i, v)| ((v.color, v.carrier.clone()), VertexId::from_index(i)))
                    .collect()
            };
            let structure = Arc::new(Structure {
                n,
                level,
                parent: parent.clone(),
                vertices,
                key_index,
            });
            parent = Some(Complex::assemble(structure, facets));
        }
        if r.at != bytes.len() {
            return err("trailing bytes after chain");
        }
        Ok(parent.expect("num_levels >= 1"))
    }

    /// A 128-bit content hash of the complex (over the portable byte
    /// form), suitable as a cache or store key: equal complexes hash
    /// equal, and unequal ones collide with probability ~2⁻¹²⁸.
    pub fn content_hash(&self) -> u128 {
        act_obs::content_hash128(&self.encode_portable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level_tower() -> Complex {
        Complex::standard(3)
            .chromatic_subdivision()
            .chromatic_subdivision()
    }

    #[test]
    fn encode_decode_round_trips_to_equality() {
        let chr2 = two_level_tower();
        let bytes = chr2.encode_portable();
        let back = Complex::decode_portable(&bytes).expect("decodes");
        assert_eq!(back, chr2);
        assert_eq!(back.level(), 2);
        assert_eq!(back.facet_count(), 169);
        // Derived indices work: carrier lookups and star queries agree.
        assert_eq!(back.content_hash(), chr2.content_hash());
    }

    #[test]
    fn round_trip_preserves_labels_and_restricted_facets() {
        let inputs = Complex::from_labeled_vertices(
            2,
            vec![(ProcessId::new(0), 7), (ProcessId::new(1), 9)],
            vec![vec![0, 1], vec![0]],
        );
        let chr = inputs.chromatic_subdivision();
        let back = Complex::decode_portable(&chr.encode_portable()).expect("decodes");
        assert_eq!(back, chr);
        assert_eq!(*back.base(), inputs);
    }

    #[test]
    fn content_hash_separates_unequal_complexes() {
        let a = Complex::standard(3);
        let b = Complex::standard(2);
        assert_ne!(a.content_hash(), b.content_hash());
        let chr = a.chromatic_subdivision();
        assert_ne!(a.content_hash(), chr.content_hash());
    }

    #[test]
    fn same_representation_is_pointer_identity() {
        let a = Complex::standard(3);
        let b = a.clone();
        assert!(a.same_representation(&b));
        let rebuilt = Complex::decode_portable(&a.encode_portable()).unwrap();
        assert_eq!(rebuilt, a);
        assert!(!a.same_representation(&rebuilt));
    }

    #[test]
    fn corrupt_payloads_error_instead_of_panicking() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let good = chr.encode_portable();

        assert!(Complex::decode_portable(&[]).is_err());
        assert!(Complex::decode_portable(&good[..good.len() / 2]).is_err());
        assert!(Complex::decode_portable(&good[1..]).is_err());

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Complex::decode_portable(&trailing).is_err());

        // Flip bytes all over the payload: every outcome must be a clean
        // error or a decode — never a panic — and a successful decode of a
        // tampered payload must not hash like the original.
        for at in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[at] ^= 0xff;
            if let Ok(c) = Complex::decode_portable(&bad) {
                assert_ne!(c.content_hash(), chr.content_hash());
            }
        }
    }

    #[test]
    fn version_bump_is_a_decode_error() {
        let mut bytes = Complex::standard(2).encode_portable();
        bytes[4] = bytes[4].wrapping_add(1); // version lives after the magic
        let e = Complex::decode_portable(&bytes).unwrap_err();
        assert!(e.to_string().contains("format"));
    }
}
