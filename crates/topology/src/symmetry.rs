//! Color symmetry: the `S_n` action on chromatic complexes, orbit censuses,
//! and canonical forms.
//!
//! Every structure of the paper — `Chr^m s`, the fair restrictions `R_A`,
//! map-search constraint tables — is equivariant under permutations of the
//! process colors. This module makes that symmetry first-class:
//!
//! * [`ColorPerm`] — an element of `S_n` acting on [`ProcessId`]s,
//!   [`ColorSet`]s, [`Osp`]s and recipes;
//! * [`chain_action`] — lifts a color permutation to a vertex bijection on
//!   every level of a subdivision chain (checking equivariance of carriers
//!   and base data), the combinatorial form of the induced simplicial
//!   automorphism;
//! * [`SymmetryGroup`] / [`SymmetryGroup::orbits_of_facets`] — the subgroup
//!   of color permutations that preserve a complex, and the partition of
//!   its facets into orbits (one representative + orbit/stabilizer sizes
//!   per class);
//! * [`permute_complex`] / [`canonical_complex`] — the relabeled complex
//!   `π · K` and the minimal image of `K` under `S_n`, used to key caches
//!   by symmetry class so color-permuted queries share one entry.
//!
//! Orbit counts are drastically smaller than facet counts: the facets of
//! `Chr s` are the ordered set partitions of `n` colors (Fubini numbers:
//! 13, 75, 541 for n = 3, 4, 5) while their `S_n`-orbits are the
//! *compositions* of `n` (4, 8, 16) — the quotient is what makes n = 5
//! structures tractable.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Mutex;

use crate::color::{ColorSet, ProcessId};
use crate::complex::{Complex, Structure, VertexData};
use crate::maps::VertexMap;
use crate::osp::Osp;
use crate::simplex::{Simplex, VertexId};
use crate::subdivision::Recipe;
use std::sync::Arc;

/// Largest process count for which the full symmetric group is enumerated
/// (`8! = 40320`); beyond it, symmetry machinery degrades to the trivial
/// group rather than blowing up.
pub const SYMMETRY_MAX_DEGREE: usize = 8;

/// A permutation of the process colors `{0, …, n-1}`: an element of `S_n`
/// acting on [`ProcessId`]s and everything built from them.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ColorPerm {
    /// `images[i]` is the image of color `i`.
    images: Vec<u32>,
}

impl ColorPerm {
    /// The identity permutation on `n` colors.
    pub fn identity(n: usize) -> ColorPerm {
        ColorPerm {
            images: (0..n as u32).collect(),
        }
    }

    /// Builds a permutation from its image vector (`images[i]` = image of
    /// color `i`). Returns `None` if the vector is not a bijection.
    pub fn from_images(images: &[usize]) -> Option<ColorPerm> {
        let n = images.len();
        let mut seen = vec![false; n];
        for &img in images {
            if img >= n || seen[img] {
                return None;
            }
            seen[img] = true;
        }
        Some(ColorPerm {
            images: images.iter().map(|&i| i as u32).collect(),
        })
    }

    /// The number of colors acted on.
    pub fn degree(&self) -> usize {
        self.images.len()
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.images
            .iter()
            .enumerate()
            .all(|(i, &img)| i as u32 == img)
    }

    /// The image `π(p)` of a color.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the permutation's degree.
    pub fn apply(&self, p: ProcessId) -> ProcessId {
        ProcessId::new(self.images[p.index()] as usize)
    }

    /// The image of a color set, element-wise.
    pub fn apply_colors(&self, cs: ColorSet) -> ColorSet {
        cs.iter().map(|p| self.apply(p)).collect()
    }

    /// The image of an ordered set partition, block-wise (block order is
    /// preserved; a permutation maps OSPs to OSPs).
    pub fn apply_osp(&self, osp: &Osp) -> Osp {
        Osp::new(osp.blocks().iter().map(|&b| self.apply_colors(b)).collect())
            .expect("a color permutation maps valid OSPs to valid OSPs")
    }

    /// The image of a subdivision recipe, round-wise.
    pub fn apply_recipe(&self, recipe: &Recipe) -> Recipe {
        recipe.iter().map(|o| self.apply_osp(o)).collect()
    }

    /// The composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &ColorPerm) -> ColorPerm {
        assert_eq!(self.degree(), other.degree(), "degree mismatch");
        ColorPerm {
            images: other
                .images
                .iter()
                .map(|&mid| self.images[mid as usize])
                .collect(),
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> ColorPerm {
        let mut inv = vec![0u32; self.images.len()];
        for (i, &img) in self.images.iter().enumerate() {
            inv[img as usize] = i as u32;
        }
        ColorPerm { images: inv }
    }

    /// All `n!` permutations of `n` colors, in lexicographic order of their
    /// image vectors (the identity first). Deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`SYMMETRY_MAX_DEGREE`].
    pub fn all(n: usize) -> Vec<ColorPerm> {
        assert!(
            n <= SYMMETRY_MAX_DEGREE,
            "refusing to enumerate S_{n} (> S_{SYMMETRY_MAX_DEGREE})"
        );
        let mut out = Vec::new();
        let mut images: Vec<u32> = Vec::with_capacity(n);
        let mut used = vec![false; n];
        fn rec(n: usize, images: &mut Vec<u32>, used: &mut [bool], out: &mut Vec<ColorPerm>) {
            if images.len() == n {
                out.push(ColorPerm {
                    images: images.clone(),
                });
                return;
            }
            for i in 0..n {
                if !used[i] {
                    used[i] = true;
                    images.push(i as u32);
                    rec(n, images, used, out);
                    images.pop();
                    used[i] = false;
                }
            }
        }
        rec(n, &mut images, &mut used, &mut out);
        out
    }
}

impl fmt::Debug for ColorPerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ColorPerm(")?;
        for (i, img) in self.images.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{i}→{img}")?;
        }
        write!(f, ")")
    }
}

/// How base-level labels are matched when lifting a color permutation to a
/// vertex bijection (see [`chain_action`]).
#[derive(Clone, Copy, Debug)]
pub enum LabelMatching<'a> {
    /// A base vertex `(c, l)` must map to `(π(c), l)`: genuine
    /// automorphisms of the labeled complex.
    Strict,
    /// Labels are ignored where unambiguous: `(c, l)` maps to the unique
    /// vertex of color `π(c)` when both color classes are singletons,
    /// falling back to exact label match otherwise. This is the right
    /// notion for *transport*: rainbow-labeled inputs (process `i` holds
    /// value `i`) are not strictly symmetric, but their subdivision
    /// structure is.
    Blind,
    /// A base vertex `(c, l)` maps to `(π(c), m[l])` for the given label
    /// map: diagonal (color, value) symmetries of tasks.
    Relabeled(&'a HashMap<u64, u64>),
}

/// A color permutation lifted to a vertex bijection on every level of a
/// subdivision chain: the combinatorial form of the induced simplicial
/// automorphism. Built by [`chain_action`]; level 0 is the base.
#[derive(Clone, Debug)]
pub struct ChainAction {
    perm: ColorPerm,
    /// `levels[l][v]` is the image of vertex `v` of level `l` (base-first).
    levels: Vec<Vec<VertexId>>,
}

impl ChainAction {
    /// The underlying color permutation.
    pub fn perm(&self) -> &ColorPerm {
        &self.perm
    }

    /// Number of levels covered (chain length, base included).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The vertex map of level `l` (base-first), as a dense table.
    pub fn level_map(&self, level: usize) -> &[VertexId] {
        &self.levels[level]
    }

    /// The image of a vertex at level `l`.
    pub fn apply_vertex(&self, level: usize, v: VertexId) -> VertexId {
        self.levels[level][v.index()]
    }

    /// The image of a simplex at level `l`.
    pub fn apply_simplex(&self, level: usize, s: &Simplex) -> Simplex {
        Simplex::from_vertices(s.vertices().iter().map(|&v| self.levels[level][v.index()]))
    }

    /// The inverse action (inverse permutation, inverted level maps).
    pub fn inverse(&self) -> ChainAction {
        let levels = self
            .levels
            .iter()
            .map(|map| {
                let mut inv = vec![VertexId::from_index(0); map.len()];
                for (i, &img) in map.iter().enumerate() {
                    inv[img.index()] = VertexId::from_index(i);
                }
                inv
            })
            .collect();
        ChainAction {
            perm: self.perm.inverse(),
            levels,
        }
    }

    /// Whether the action maps the facet set of `complex` (a sub-complex of
    /// the chain's top level) onto itself — i.e. whether it restricts to an
    /// automorphism of `complex` and not just of the ambient level.
    pub fn preserves_facets(&self, complex: &Complex) -> bool {
        let level = complex.level();
        let set: HashSet<&Simplex> = complex.facets().iter().collect();
        complex
            .facets()
            .iter()
            .all(|f| set.contains(&self.apply_simplex(level, f)))
    }
}

/// Lifts a color permutation to a vertex bijection on every level of a
/// subdivision chain, verifying equivariance as it goes.
///
/// Base vertices are matched per [`LabelMatching`]; a level-`l ≥ 1` vertex
/// `(c, carrier)` maps to the interned vertex `(π(c), action(carrier))`,
/// which must exist and carry equivariant base data. Returns `None` when
/// the permutation does not act on the chain (missing image vertex,
/// ambiguous label match, base data mismatch, or a non-bijective level
/// map) — callers then simply don't share work across that permutation.
pub fn chain_action(
    complex: &Complex,
    perm: &ColorPerm,
    matching: LabelMatching<'_>,
) -> Option<ChainAction> {
    if perm.degree() != complex.num_processes() {
        return None;
    }
    // Collect the chain base-first.
    let mut chain: Vec<&Complex> = Vec::with_capacity(complex.level() + 1);
    let mut c = complex;
    loop {
        chain.push(c);
        match c.parent() {
            Some(p) => c = p,
            None => break,
        }
    }
    chain.reverse();

    let mut levels: Vec<Vec<VertexId>> = Vec::with_capacity(chain.len());

    // Base level: match vertices by (color, label) per the matching mode.
    let base = chain[0];
    let mut by_color: HashMap<ProcessId, Vec<VertexId>> = HashMap::new();
    for i in 0..base.num_vertices() {
        let v = VertexId::from_index(i);
        by_color.entry(base.color(v)).or_default().push(v);
    }
    let mut base_map: Vec<VertexId> = Vec::with_capacity(base.num_vertices());
    for i in 0..base.num_vertices() {
        let d = base.vertex(VertexId::from_index(i));
        let target_color = perm.apply(d.color);
        let candidates = by_color.get(&target_color)?;
        let source_class_len = by_color.get(&d.color).map_or(0, Vec::len);
        let image = match matching {
            LabelMatching::Blind if candidates.len() == 1 && source_class_len == 1 => candidates[0],
            LabelMatching::Relabeled(map) => {
                let target_label = *map.get(&d.label)?;
                unique_with_label(base, candidates, target_label)?
            }
            // Strict, or Blind with an ambiguous color class.
            _ => unique_with_label(base, candidates, d.label)?,
        };
        base_map.push(image);
    }
    if !is_bijection(&base_map) {
        return None;
    }
    levels.push(base_map);

    // Subdivision levels: follow carriers, verify base data equivariance.
    for level_idx in 1..chain.len() {
        let level = chain[level_idx];
        let prev_map = &levels[level_idx - 1];
        let base_map = &levels[0];
        let mut map: Vec<VertexId> = Vec::with_capacity(level.num_vertices());
        for i in 0..level.num_vertices() {
            let d = level.vertex(VertexId::from_index(i));
            let mapped_carrier =
                Simplex::from_vertices(d.carrier.vertices().iter().map(|&v| prev_map[v.index()]));
            let image = level.find_vertex(perm.apply(d.color), &mapped_carrier)?;
            let id = level.vertex(image);
            let mapped_base = Simplex::from_vertices(
                d.base_carrier
                    .vertices()
                    .iter()
                    .map(|&v| base_map[v.index()]),
            );
            if id.base_carrier != mapped_base || id.base_colors != perm.apply_colors(d.base_colors)
            {
                return None;
            }
            map.push(image);
        }
        if !is_bijection(&map) {
            return None;
        }
        levels.push(map);
    }

    Some(ChainAction {
        perm: perm.clone(),
        levels,
    })
}

fn unique_with_label(base: &Complex, candidates: &[VertexId], label: u64) -> Option<VertexId> {
    let mut found = None;
    for &v in candidates {
        if base.vertex(v).label == label {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some(v);
        }
    }
    found
}

fn is_bijection(map: &[VertexId]) -> bool {
    let mut seen = vec![false; map.len()];
    for v in map {
        if v.index() >= map.len() || seen[v.index()] {
            return false;
        }
        seen[v.index()] = true;
    }
    true
}

/// One orbit of a complex's facets under a [`SymmetryGroup`].
#[derive(Clone, Debug)]
pub struct FacetOrbit {
    /// Index (into `facets()`) of the orbit representative — the smallest
    /// member, so representatives are stable across runs.
    pub representative: usize,
    /// All members as `(facet index, group element index)` pairs, where
    /// element `g` maps the representative onto the member. The
    /// representative itself appears with the identity element.
    pub members: Vec<(usize, usize)>,
    /// Order of the representative's stabilizer subgroup
    /// (`orbit_size × stabilizer_size = group order`).
    pub stabilizer_size: usize,
}

impl FacetOrbit {
    /// Number of facets in the orbit.
    pub fn orbit_size(&self) -> usize {
        self.members.len()
    }
}

/// The subgroup of `S_n` acting on a complex: every color permutation that
/// lifts to a vertex bijection of the chain ([`chain_action`]) *and* maps
/// the complex's facet set onto itself. The identity is always element 0.
pub struct SymmetryGroup {
    complex: Complex,
    elements: Vec<ChainAction>,
    canon_cache: Mutex<HashMap<Simplex, Simplex>>,
}

impl SymmetryGroup {
    /// The order of the group (≥ 1; the identity always acts).
    pub fn order(&self) -> usize {
        self.elements.len()
    }

    /// The group elements (identity first).
    pub fn elements(&self) -> &[ChainAction] {
        &self.elements
    }

    /// A specific element.
    pub fn element(&self, i: usize) -> &ChainAction {
        &self.elements[i]
    }

    /// The complex acted on.
    pub fn complex(&self) -> &Complex {
        &self.complex
    }

    /// Partitions the complex's facets into orbits. Each orbit records its
    /// representative (smallest facet index), all members with a group
    /// element mapping the representative onto them, and the stabilizer
    /// size. Orbit sizes sum to the facet count; for each orbit,
    /// `orbit_size × stabilizer_size` equals the group order.
    pub fn orbits_of_facets(&self) -> Vec<FacetOrbit> {
        let level = self.complex.level();
        let facets = self.complex.facets();
        let index_of: HashMap<&Simplex, usize> =
            facets.iter().enumerate().map(|(i, f)| (f, i)).collect();
        let mut assigned = vec![false; facets.len()];
        let mut orbits = Vec::new();
        for rep in 0..facets.len() {
            if assigned[rep] {
                continue;
            }
            let mut members: Vec<(usize, usize)> = Vec::new();
            let mut member_set: HashSet<usize> = HashSet::new();
            let mut stabilizer = 0usize;
            for (gi, g) in self.elements.iter().enumerate() {
                let image = g.apply_simplex(level, &facets[rep]);
                let idx = *index_of
                    .get(&image)
                    .expect("group elements preserve the facet set");
                if idx == rep {
                    stabilizer += 1;
                }
                if member_set.insert(idx) {
                    debug_assert!(!assigned[idx], "orbits partition the facet set");
                    assigned[idx] = true;
                    members.push((idx, gi));
                }
            }
            members.sort_unstable_by_key(|&(idx, _)| idx);
            debug_assert_eq!(members.len() * stabilizer, self.order());
            orbits.push(FacetOrbit {
                representative: rep,
                members,
                stabilizer_size: stabilizer,
            });
        }
        orbits
    }

    /// The canonical form of a simplex of the complex's top level: the
    /// minimal image under the group. Invariant on orbits (two simplices
    /// have equal canonical forms iff some group element maps one onto the
    /// other) and idempotent. Memoized.
    pub fn canonical_form(&self, s: &Simplex) -> Simplex {
        if let Some(hit) = self.canon_cache.lock().unwrap().get(s) {
            return hit.clone();
        }
        let level = self.complex.level();
        let min = self
            .elements
            .iter()
            .map(|g| g.apply_simplex(level, s))
            .min()
            .expect("the group contains the identity");
        self.canon_cache
            .lock()
            .unwrap()
            .insert(s.clone(), min.clone());
        min
    }
}

impl fmt::Debug for SymmetryGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymmetryGroup")
            .field("order", &self.order())
            .field("complex", &self.complex)
            .finish()
    }
}

/// Infers the label relabeling under which `perm` could act on a labeled
/// base complex, from the base's facet structure: a facet must map to the
/// unique facet with the permuted color set, which forces `m(label)` for
/// every vertex of it. Labels never forced are completed identically.
///
/// This recovers the "diagonal" symmetries of inputs whose labels are tied
/// to colors — e.g. rainbow set-consensus inputs, where process `i` starts
/// with value `i` and only joint color-and-value relabelings act. Returns
/// `None` when the forced constraints conflict, the completion is not a
/// bijection, or the result is the identity map (then plain label matching
/// already decides). The returned map is a *candidate*: [`chain_action`]
/// still verifies it vertex by vertex.
fn inferred_label_map(base: &Complex, perm: &ColorPerm) -> Option<HashMap<u64, u64>> {
    let mut map: HashMap<u64, u64> = HashMap::new();
    for facet in base.facets() {
        let target_colors = perm.apply_colors(base.colors(facet));
        let mut candidates = base
            .facets()
            .iter()
            .filter(|g| base.colors(g) == target_colors);
        let (image, unique) = (candidates.next(), candidates.next().is_none());
        let image = match image {
            Some(g) if unique => g,
            // No color-matched image (perm cannot act) or an ambiguous
            // one (no forcing from this facet).
            Some(_) => continue,
            None => return None,
        };
        for &v in facet.vertices() {
            let d = base.vertex(v);
            let w = *image
                .vertices()
                .iter()
                .find(|&&w| base.color(w) == perm.apply(d.color))?;
            let target = base.vertex(w).label;
            match map.insert(d.label, target) {
                Some(prev) if prev != target => return None,
                _ => {}
            }
        }
    }
    // Complete identically on labels the facets never forced.
    for i in 0..base.num_vertices() {
        let l = base.vertex(VertexId::from_index(i)).label;
        map.entry(l).or_insert(l);
    }
    let mut seen = HashSet::new();
    if !map.values().all(|&v| seen.insert(v)) {
        return None;
    }
    if map.iter().all(|(k, v)| k == v) {
        return None;
    }
    Some(map)
}

/// Whether a set of chain actions is closed under composition (elementwise
/// on every level map). Inferred label maps are chosen per permutation, so
/// closure — which [`SymmetryGroup::orbits_of_facets`] relies on for its
/// partition — must be verified rather than assumed.
fn actions_are_closed(elements: &[ChainAction]) -> bool {
    let index: HashMap<&Vec<Vec<VertexId>>, usize> =
        elements.iter().map(|a| (&a.levels, 0usize)).collect();
    for a in elements {
        for b in elements {
            let composed: Vec<Vec<VertexId>> = a
                .levels
                .iter()
                .zip(&b.levels)
                .map(|(am, bm)| bm.iter().map(|&v| am[v.index()]).collect())
                .collect();
            if !index.contains_key(&composed) {
                return false;
            }
        }
    }
    true
}

/// [`symmetry_group`] with label-map inference: permutations that fail
/// blind/strict matching are retried under a label relabeling inferred
/// from the chain's base facets ([`LabelMatching::Relabeled`]).
///
/// This finds the diagonal color-and-label symmetries of labeled inputs
/// (rainbow set-consensus pseudospheres and the `R_A^ℓ` towers over them)
/// that [`LabelMatching::Blind`] alone cannot see, which is what lets
/// orbit-shared subdivision quotient those towers. Falls back to the plain
/// blind group when the inferred elements do not compose closedly (orbit
/// censuses require a genuine group).
pub fn symmetry_group_inferred(complex: &Complex) -> SymmetryGroup {
    let n = complex.num_processes();
    if n > SYMMETRY_MAX_DEGREE {
        return symmetry_group(complex, LabelMatching::Blind);
    }
    let mut base = complex;
    while let Some(p) = base.parent() {
        base = p;
    }
    let mut elements = Vec::new();
    let mut inferred = false;
    for perm in ColorPerm::all(n) {
        let action = match chain_action(complex, &perm, LabelMatching::Blind) {
            Some(a) => Some(a),
            None => inferred_label_map(base, &perm).and_then(|m| {
                inferred = true;
                chain_action(complex, &perm, LabelMatching::Relabeled(&m))
            }),
        };
        if let Some(a) = action {
            if a.preserves_facets(complex) {
                elements.push(a);
            }
        }
    }
    assert!(
        !elements.is_empty() && elements[0].perm().is_identity(),
        "the identity always acts"
    );
    if inferred && elements.len() > 1 && !actions_are_closed(&elements) {
        return symmetry_group(complex, LabelMatching::Blind);
    }
    SymmetryGroup {
        complex: complex.clone(),
        elements,
        canon_cache: Mutex::new(HashMap::new()),
    }
}

/// Computes the symmetry group of a complex: all color permutations lifting
/// to chain actions that preserve the facet set. For `n >` the enumeration
/// bound ([`SYMMETRY_MAX_DEGREE`]) only the identity is returned.
pub fn symmetry_group(complex: &Complex, matching: LabelMatching<'_>) -> SymmetryGroup {
    let n = complex.num_processes();
    let perms = if n <= SYMMETRY_MAX_DEGREE {
        ColorPerm::all(n)
    } else {
        vec![ColorPerm::identity(n)]
    };
    let mut elements = Vec::new();
    for perm in &perms {
        if let Some(action) = chain_action(complex, perm, matching) {
            if action.preserves_facets(complex) {
                elements.push(action);
            }
        }
    }
    assert!(
        !elements.is_empty() && elements[0].perm().is_identity(),
        "the identity always acts"
    );
    SymmetryGroup {
        complex: complex.clone(),
        elements,
        canon_cache: Mutex::new(HashMap::new()),
    }
}

/// The relabeled complex `π · K`: every vertex keeps its id and carrier but
/// its color (and cached base colors) are pushed through `π`, recursively
/// down the chain. Cheap (no re-interning); facet lists are unchanged as id
/// sets. `permute_complex(permute_complex(K, π), π⁻¹) == K`.
pub fn permute_complex(complex: &Complex, perm: &ColorPerm) -> Complex {
    assert_eq!(
        perm.degree(),
        complex.num_processes(),
        "permutation degree must match the process count"
    );
    let parent = complex.parent().map(|p| permute_complex(p, perm));
    let vertices: Vec<VertexData> = complex
        .structure
        .vertices
        .iter()
        .map(|d| VertexData {
            color: perm.apply(d.color),
            carrier: d.carrier.clone(),
            base_carrier: d.base_carrier.clone(),
            base_colors: perm.apply_colors(d.base_colors),
            label: d.label,
        })
        .collect();
    let key_index = if complex.level() == 0 {
        HashMap::new()
    } else {
        vertices
            .iter()
            .enumerate()
            .map(|(i, d)| ((d.color, d.carrier.clone()), VertexId::from_index(i)))
            .collect()
    };
    let structure = Arc::new(Structure {
        n: complex.structure.n,
        level: complex.structure.level,
        parent,
        vertices,
        key_index,
    });
    Complex::assemble(structure, complex.facets().to_vec())
}

/// The canonical form of a complex under the color action: the minimal
/// [`Complex::encode_portable`] image over all of `S_n`, together with the
/// permutation achieving it. Two complexes differing only by a color
/// permutation have equal canonical forms, so canonical content hashes key
/// caches by symmetry class. For `n >` [`SYMMETRY_MAX_DEGREE`] the complex
/// is returned unchanged with the identity.
pub fn canonical_complex(complex: &Complex) -> (Complex, ColorPerm) {
    let n = complex.num_processes();
    if n > SYMMETRY_MAX_DEGREE {
        return (complex.clone(), ColorPerm::identity(n));
    }
    let mut best: Option<(Vec<u8>, Complex, ColorPerm)> = None;
    for perm in ColorPerm::all(n) {
        let image = permute_complex(complex, &perm);
        let bytes = image.encode_portable();
        let better = match &best {
            None => true,
            Some((b, _, _)) => bytes < *b,
        };
        if better {
            best = Some((bytes, image, perm));
        }
    }
    let (_, image, perm) = best.expect("S_n is non-empty");
    (image, perm)
}

/// Canonicalizes a *pair* of complexes jointly: the permutation minimizing
/// `(encode(π·a), encode(π·b))` lexicographically. Returns the canonical
/// content hashes of both components and the minimizing permutation. Used
/// to key domain caches by the symmetry class of an (affine task, inputs)
/// query so color-permuted queries share one tower.
pub fn canonical_pair_hashes(a: &Complex, b: &Complex) -> (u128, u128, ColorPerm) {
    let n = a.num_processes();
    assert_eq!(n, b.num_processes(), "pair must share a process count");
    if n > SYMMETRY_MAX_DEGREE {
        return (a.content_hash(), b.content_hash(), ColorPerm::identity(n));
    }
    let mut best: Option<(Vec<u8>, Vec<u8>, ColorPerm)> = None;
    for perm in ColorPerm::all(n) {
        let bytes_a = permute_complex(a, &perm).encode_portable();
        // Compare the first component before paying for the second.
        if let Some((ba, bb, _)) = &best {
            match bytes_a.cmp(ba) {
                std::cmp::Ordering::Greater => continue,
                std::cmp::Ordering::Equal => {
                    let bytes_b = permute_complex(b, &perm).encode_portable();
                    if bytes_b < *bb {
                        best = Some((bytes_a, bytes_b, perm));
                    }
                    continue;
                }
                std::cmp::Ordering::Less => {}
            }
        }
        let bytes_b = permute_complex(b, &perm).encode_portable();
        best = Some((bytes_a, bytes_b, perm));
    }
    let (bytes_a, bytes_b, perm) = best.expect("S_n is non-empty");
    (
        act_obs::content_hash128(&bytes_a),
        act_obs::content_hash128(&bytes_b),
        perm,
    )
}

/// Transports a map-search witness across symmetry actions: given a
/// simplicial map `w` solving the *permuted* query (domain and outputs
/// pushed through a group element), returns `v ↦ cod⁻¹(w(dom(v)))`, which
/// solves the original query. `domain_map` is the top-level vertex table of
/// the domain action; `codomain_inverse` the inverted vertex table of the
/// output action.
pub fn transport_vertex_map(
    witness: &VertexMap,
    domain_map: &[VertexId],
    codomain_inverse: &[VertexId],
) -> VertexMap {
    let mut out = VertexMap::new();
    for (i, &image) in domain_map.iter().enumerate() {
        if let Some(w) = witness.get(image) {
            out.set(VertexId::from_index(i), codomain_inverse[w.index()]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osp::fubini;

    fn swap01(n: usize) -> ColorPerm {
        let mut images: Vec<usize> = (0..n).collect();
        images.swap(0, 1);
        ColorPerm::from_images(&images).unwrap()
    }

    #[test]
    fn perm_group_basics() {
        let n = 4;
        let perms = ColorPerm::all(n);
        assert_eq!(perms.len(), 24);
        assert!(perms[0].is_identity());
        for p in &perms {
            assert!(p.compose(&p.inverse()).is_identity());
            assert!(p.inverse().compose(p).is_identity());
        }
        let s = swap01(n);
        assert_eq!(s.apply(ProcessId::new(0)), ProcessId::new(1));
        assert_eq!(
            s.apply_colors(ColorSet::from_indices([0, 2])),
            ColorSet::from_indices([1, 2])
        );
        assert!(ColorPerm::from_images(&[0, 0, 1]).is_none());
    }

    #[test]
    fn chr_symmetry_group_is_full_sn() {
        for n in 2..=4 {
            let chr = Complex::standard(n).chromatic_subdivision();
            let group = symmetry_group(&chr, LabelMatching::Strict);
            assert_eq!(group.order(), (1..=n).product::<usize>(), "n = {n}");
        }
    }

    #[test]
    fn chr_orbits_are_compositions() {
        // Facets of Chr s are OSPs of n colors; their S_n-orbits are the
        // compositions of n: 2, 4, 8 for n = 2, 3, 4.
        for (n, compositions) in [(2usize, 2usize), (3, 4), (4, 8)] {
            let chr = Complex::standard(n).chromatic_subdivision();
            let group = symmetry_group(&chr, LabelMatching::Strict);
            let orbits = group.orbits_of_facets();
            assert_eq!(orbits.len(), compositions, "n = {n}");
            let total: usize = orbits.iter().map(FacetOrbit::orbit_size).sum();
            assert_eq!(total as u64, fubini(n));
            for orbit in &orbits {
                assert_eq!(orbit.orbit_size() * orbit.stabilizer_size, group.order());
                assert_eq!(orbit.members[0].0, orbit.representative);
                assert_eq!(
                    orbit.representative,
                    orbit.members.iter().map(|&(i, _)| i).min().unwrap()
                );
            }
        }
    }

    #[test]
    fn orbit_members_are_reachable_from_representative() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let group = symmetry_group(&chr, LabelMatching::Strict);
        for orbit in group.orbits_of_facets() {
            let rep = &chr.facets()[orbit.representative];
            for &(member, gi) in &orbit.members {
                let image = group.element(gi).apply_simplex(chr.level(), rep);
                assert_eq!(image, chr.facets()[member]);
            }
        }
    }

    #[test]
    fn canonical_form_is_orbit_invariant_and_idempotent() {
        let chr = Complex::standard(3).iterated_subdivision(2);
        let group = symmetry_group(&chr, LabelMatching::Strict);
        for orbit in group.orbits_of_facets() {
            let rep_canon = group.canonical_form(&chr.facets()[orbit.representative]);
            assert_eq!(group.canonical_form(&rep_canon), rep_canon, "idempotent");
            for &(member, _) in &orbit.members {
                assert_eq!(
                    group.canonical_form(&chr.facets()[member]),
                    rep_canon,
                    "constant on the orbit"
                );
            }
        }
    }

    #[test]
    fn chain_action_rejects_asymmetric_labels() {
        // Rainbow labels (process i holds value i) break Strict symmetry
        // but not Blind transport.
        let verts = vec![(ProcessId::new(0), 10), (ProcessId::new(1), 20)];
        let base = Complex::from_labeled_vertices(2, verts, vec![vec![0, 1]]);
        let chr = base.chromatic_subdivision();
        let swap = swap01(2);
        assert!(chain_action(&chr, &swap, LabelMatching::Strict).is_none());
        let blind = chain_action(&chr, &swap, LabelMatching::Blind).unwrap();
        assert!(blind.preserves_facets(&chr));
        // The action is an involution on vertices.
        for i in 0..chr.num_vertices() {
            let v = VertexId::from_index(i);
            let w = blind.apply_vertex(1, v);
            assert_eq!(blind.apply_vertex(1, w), v);
            assert_eq!(chr.color(w), swap.apply(chr.color(v)));
        }
    }

    #[test]
    fn relabeled_matching_follows_the_label_map() {
        let verts = vec![(ProcessId::new(0), 10), (ProcessId::new(1), 20)];
        let base = Complex::from_labeled_vertices(2, verts, vec![vec![0, 1]]);
        let swap = swap01(2);
        let map: HashMap<u64, u64> = [(10, 20), (20, 10)].into_iter().collect();
        let act = chain_action(&base, &swap, LabelMatching::Relabeled(&map)).unwrap();
        assert_eq!(act.apply_vertex(0, VertexId::from_index(0)).index(), 1);
        // A label map missing an entry kills the action.
        let partial: HashMap<u64, u64> = [(10, 20)].into_iter().collect();
        assert!(chain_action(&base, &swap, LabelMatching::Relabeled(&partial)).is_none());
    }

    #[test]
    fn permute_complex_round_trips() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        for perm in ColorPerm::all(3) {
            let image = permute_complex(&chr2, &perm);
            assert_eq!(image.facet_count(), chr2.facet_count());
            assert_eq!(permute_complex(&image, &perm.inverse()), chr2);
            // The permuted complex is the same abstract complex relabeled:
            // its encode differs unless the permutation is a symmetry that
            // fixes the representation, but its canonical form agrees.
            assert_eq!(
                canonical_complex(&image).0,
                canonical_complex(&chr2).0,
                "canonical form is a class invariant"
            );
        }
    }

    #[test]
    fn canonical_pair_shares_class_across_permutations() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let base = Complex::standard(3);
        let (ha, hb, perm) = canonical_pair_hashes(&chr, &base);
        for p in ColorPerm::all(3) {
            let (ha2, hb2, perm2) =
                canonical_pair_hashes(&permute_complex(&chr, &p), &permute_complex(&base, &p));
            assert_eq!((ha, hb), (ha2, hb2), "class invariant");
            // The minimizing permutations compose coherently: applying
            // them lands both queries on the identical canonical pair.
            let canon1 = permute_complex(&chr, &perm);
            let canon2 = permute_complex(&permute_complex(&chr, &p), &perm2);
            assert_eq!(canon1, canon2);
        }
    }

    #[test]
    fn transported_witness_solves_the_original_query() {
        // Identity-shaped check on a small chain: transport through a swap
        // and verify simpliciality is preserved.
        let chr = Complex::standard(2).chromatic_subdivision();
        let out = Complex::standard(2);
        let swap = swap01(2);
        let dom_act = chain_action(&chr, &swap, LabelMatching::Strict).unwrap();
        let out_act = chain_action(&out, &swap, LabelMatching::Strict).unwrap();
        // A chromatic witness for the permuted query: send every vertex of
        // color c to the output vertex of color c.
        let mut witness = VertexMap::new();
        for i in 0..chr.num_vertices() {
            let v = VertexId::from_index(i);
            witness.set(v, VertexId::from_index(chr.color(v).index()));
        }
        let transported = transport_vertex_map(
            &witness,
            dom_act.level_map(chr.level()),
            out_act.inverse().level_map(0),
        );
        assert!(transported.is_chromatic(&chr, &out));
        assert!(transported.is_simplicial(&chr, &out));
    }
}
