//! Graph connectivity, vertex links and link-connectivity of complexes.
//!
//! Section 8 of the paper observes that continuous-map arguments need
//! *link-connected* complexes, and that "only very special adversaries,
//! such as `A_{t-res}`, have link-connected counterparts (see, e.g., the
//! affine task corresponding to 1-obstruction-freedom in Figure 7a)".
//! This module provides the machinery to check that observation
//! computationally: connected components of a complex's 1-skeleton, the
//! link of a vertex, and link-connectivity.

use std::collections::HashMap;

use crate::complex::Complex;
use crate::simplex::{Simplex, VertexId};

/// Union-find over a fixed universe.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The number of connected components of the complex's 1-skeleton,
/// counted over the vertices used by its facets (0 for a void complex).
///
/// Two vertices are connected when they appear together in some simplex
/// (equivalently, in some facet).
pub fn connected_components(complex: &Complex) -> usize {
    let used = complex.used_vertices();
    if used.is_empty() {
        return 0;
    }
    let index: HashMap<VertexId, usize> = used.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut uf = UnionFind::new(used.len());
    for facet in complex.facets() {
        let vs = facet.vertices();
        for w in vs.windows(2) {
            uf.union(index[&w[0]], index[&w[1]]);
        }
    }
    let mut roots = std::collections::BTreeSet::new();
    for i in 0..used.len() {
        roots.insert(uf.find(i));
    }
    roots.len()
}

/// Whether the complex's 1-skeleton is connected (void complexes are not).
pub fn is_connected(complex: &Complex) -> bool {
    connected_components(complex) == 1
}

/// The link of a vertex: `Lk(v) = {σ : v ∉ σ, σ ∪ {v} ∈ K}`, returned as
/// a complex sharing the vertex table (its facets are `f \ {v}` for the
/// facets `f` containing `v`).
pub fn vertex_link(complex: &Complex, v: VertexId) -> Complex {
    let facets: Vec<Simplex> = complex
        .facets()
        .iter()
        .filter(|f| f.contains(v))
        .map(|f| f.filter(|w| w != v))
        .filter(|s| !s.is_empty())
        .collect();
    complex.sub_complex(facets)
}

/// A vertex whose link is disconnected, if any — the witness that the
/// complex is *not* link-connected.
pub fn link_disconnection_witness(complex: &Complex) -> Option<VertexId> {
    complex.used_vertices().into_iter().find(|&v| {
        let link = vertex_link(complex, v);
        !link.is_void() && connected_components(&link) > 1
    })
}

/// Whether every used vertex has a connected (or empty) link.
pub fn is_link_connected(complex: &Complex) -> bool {
    link_disconnection_witness(complex).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ProcessId;

    #[test]
    fn standard_simplex_is_link_connected() {
        for n in 2..=4 {
            let s = Complex::standard(n);
            assert!(is_connected(&s));
            assert!(is_link_connected(&s));
        }
    }

    #[test]
    fn subdivisions_are_link_connected() {
        for m in 1..=2 {
            let c = Complex::standard(3).iterated_subdivision(m);
            assert!(is_connected(&c), "Chr^{m} s connected");
            assert!(is_link_connected(&c), "Chr^{m} s link-connected");
        }
    }

    #[test]
    fn two_triangles_joined_at_a_vertex_fail_link_connectivity() {
        // Two triangles sharing exactly one vertex: the shared vertex's
        // link is two disjoint edges.
        let verts = vec![
            (ProcessId::new(0), 0),
            (ProcessId::new(1), 0),
            (ProcessId::new(2), 0),
            (ProcessId::new(1), 1),
            (ProcessId::new(2), 1),
        ];
        let c = Complex::from_labeled_vertices(3, verts, vec![vec![0, 1, 2], vec![0, 3, 4]]);
        assert!(is_connected(&c));
        let witness = link_disconnection_witness(&c);
        assert_eq!(witness, Some(VertexId::from_index(0)));
        assert!(!is_link_connected(&c));
        let link = vertex_link(&c, VertexId::from_index(0));
        assert_eq!(connected_components(&link), 2);
    }

    #[test]
    fn disconnected_complex_components() {
        let verts = vec![
            (ProcessId::new(0), 0),
            (ProcessId::new(1), 0),
            (ProcessId::new(0), 1),
            (ProcessId::new(1), 1),
        ];
        let c = Complex::from_labeled_vertices(2, verts, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(connected_components(&c), 2);
        assert!(!is_connected(&c));
        // Each vertex's link is a single vertex: connected.
        assert!(is_link_connected(&c));
    }

    #[test]
    fn void_complex_has_no_components() {
        let s = Complex::standard(2);
        let void = s.sub_complex(Vec::<Simplex>::new());
        assert_eq!(connected_components(&void), 0);
        assert!(!is_connected(&void));
        assert!(is_link_connected(&void));
    }

    #[test]
    fn link_of_interior_vertex_of_chr_is_a_cycle() {
        // The central vertex of Chr s (n = 3) has a link that is a cycle
        // of edges: connected, pure of dimension 1.
        let chr = Complex::standard(3).chromatic_subdivision();
        let central = chr
            .used_vertices()
            .into_iter()
            .find(|&v| {
                chr.vertex(v).carrier.len() == 3 && {
                    // interior: carrier is the full simplex
                    chr.base_colors_of_vertex(v).len() == 3
                }
            })
            .unwrap();
        let link = vertex_link(&chr, central);
        assert!(is_connected(&link));
        assert!(link.is_pure());
        assert_eq!(link.dim(), 1);
    }
}
