//! Deterministic fork/join helpers for the subdivision engine.
//!
//! The engine parallelizes by splitting facet lists into contiguous chunks,
//! processing each chunk on a scoped OS thread (`std::thread::scope`), and
//! merging per-chunk results *in chunk order*. Because the chunks partition
//! the serial iteration order, the merged output is byte-identical to a
//! serial build for every thread count.
//!
//! The default thread count honours the `RAYON_NUM_THREADS` environment
//! variable (the convention of the rayon ecosystem), falling back to the
//! machine's available parallelism. `RAYON_NUM_THREADS=1` forces serial
//! execution — which, by the determinism guarantee above, produces exactly
//! the same complexes as any parallel run.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::simplex::Simplex;

/// The number of worker threads subdivision-engine operations fan out to:
/// `RAYON_NUM_THREADS` if set to a positive integer, otherwise the
/// machine's available parallelism.
///
/// A malformed value (non-numeric, or zero) is not a panic: it warns once
/// on stderr and falls back to the machine default, so a bad environment
/// degrades a run's thread count instead of killing it.
pub fn subdivision_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(t) if t >= 1 => return t,
            _ if v.trim().is_empty() => {} // unset-equivalent; no warning
            _ => warn_bad_thread_env(&v),
        }
    }
    default_threads()
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Warns (once per process) about a malformed `RAYON_NUM_THREADS`.
fn warn_bad_thread_env(raw: &str) {
    use std::sync::Once;
    static WARNED: Once = Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "act-topology: malformed RAYON_NUM_THREADS={raw:?} \
             (expected a positive integer); using available parallelism"
        );
    });
}

/// Splits `0..len` into at most `chunks` contiguous, non-empty, ascending
/// ranges of near-equal size.
pub(crate) fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Runs `f` over the chunk ranges of `0..len` on up to `threads` scoped
/// threads, returning the per-chunk results in chunk order.
///
/// With `threads <= 1` (or a single chunk) no thread is spawned. Because
/// the chunks partition `0..len` in order, concatenating the results
/// reproduces the serial iteration order — the primitive both the
/// subdivision engine and the map-search engine build their deterministic
/// fan-outs on.
pub fn parallel_map_ranges<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut out = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let f = &f;
                scope.spawn(move || f(range))
            })
            .collect();
        for handle in handles {
            out.push(handle.join().expect("subdivision worker panicked"));
        }
    });
    out
}

/// Renders a worker's panic payload as a message for degraded-mode
/// reporting (panics raised with `panic!("…")` carry a `String` or
/// `&str`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`parallel_map_ranges`] with panic containment: each chunk reports
/// `Ok(result)` or, when its worker panicked, `Err(message)` — the panic
/// is caught at the fork/join boundary instead of aborting the process,
/// so callers can retry or degrade the poisoned chunk while keeping every
/// healthy chunk's result.
///
/// Chunk order (and therefore determinism of the healthy results) is
/// identical to [`parallel_map_ranges`]. With `threads <= 1` (or a single
/// chunk) the closure runs inline under [`catch_unwind`], so the serial
/// path has the same containment contract as the parallel one.
pub fn parallel_map_ranges_catch<T, F>(
    len: usize,
    threads: usize,
    f: F,
) -> Vec<(Range<usize>, Result<T, String>)>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, threads);
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .map(|range| {
                let result =
                    catch_unwind(AssertUnwindSafe(|| f(range.clone()))).map_err(panic_message);
                (range, result)
            })
            .collect();
    }
    let mut out = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let f = &f;
                let handle = scope.spawn({
                    let range = range.clone();
                    move || f(range)
                });
                (range, handle)
            })
            .collect();
        for (range, handle) in handles {
            let result = handle.join().map_err(panic_message);
            out.push((range, result));
        }
    });
    out
}

/// Filters a facet list on up to `threads` scoped threads, preserving
/// order: each worker owns a private predicate state created by `init`
/// (e.g. a memoizing critical-simplex analysis), and the per-chunk results
/// are concatenated in chunk order, so the output equals the serial filter
/// for every thread count.
pub fn parallel_filter_facets<S, I, P>(
    facets: &[Simplex],
    threads: usize,
    init: I,
    pred: P,
) -> Vec<Simplex>
where
    I: Fn() -> S + Sync,
    P: Fn(&mut S, &Simplex) -> bool + Sync,
{
    parallel_map_ranges(facets.len(), threads, |range| {
        let mut state = init();
        facets[range]
            .iter()
            .filter(|f| pred(&mut state, f))
            .cloned()
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::VertexId;

    #[test]
    fn chunk_ranges_partition_the_input() {
        for len in 0..40 {
            for chunks in 1..8 {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "contiguous and ascending");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, len);
                if len > 0 {
                    assert_eq!(ranges.len(), chunks.min(len));
                }
            }
        }
    }

    #[test]
    fn parallel_map_preserves_chunk_order() {
        let out = parallel_map_ranges(10, 4, |r| r.clone());
        assert_eq!(out, chunk_ranges(10, 4));
    }

    #[test]
    fn parallel_filter_matches_serial_for_every_thread_count() {
        let facets: Vec<Simplex> = (0..25)
            .map(|i| Simplex::vertex(VertexId::from_index(i)))
            .collect();
        let keep = |_: &mut (), f: &Simplex| !f.vertices()[0].index().is_multiple_of(3);
        let serial = parallel_filter_facets(&facets, 1, || (), keep);
        for threads in 2..6 {
            let parallel = parallel_filter_facets(&facets, threads, || (), keep);
            assert_eq!(parallel, serial);
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(subdivision_threads() >= 1);
    }

    #[test]
    fn malformed_thread_env_warns_and_defaults() {
        // The variable is process-global; concurrent tests that *read* it
        // only ever see a value that resolves to a positive count, so
        // briefly poisoning it is safe.
        let saved = std::env::var("RAYON_NUM_THREADS").ok();
        for bad in ["lots", "0", "-3", "1.5", "  "] {
            std::env::set_var("RAYON_NUM_THREADS", bad);
            assert!(
                subdivision_threads() >= 1,
                "malformed value {bad:?} must fall back, not panic"
            );
        }
        std::env::set_var("RAYON_NUM_THREADS", " 3 ");
        assert_eq!(subdivision_threads(), 3, "whitespace-padded values parse");
        match saved {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }

    #[test]
    fn catch_variant_matches_plain_map_on_healthy_workers() {
        for threads in [1usize, 2, 4] {
            let plain = parallel_map_ranges(10, threads, |r| r.len());
            let caught = parallel_map_ranges_catch(10, threads, |r| r.len());
            assert_eq!(caught.len(), plain.len());
            for ((range, result), expected) in caught.iter().zip(&plain) {
                assert!(!range.is_empty());
                assert_eq!(result.as_ref().unwrap(), expected);
            }
        }
    }

    #[test]
    fn panicking_chunk_is_contained_and_reported() {
        // Silence the default panic printout for the intentional panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1usize, 3] {
            let results = parallel_map_ranges_catch(9, threads, |r| {
                if r.contains(&4) {
                    panic!("injected chunk failure at {}", r.start);
                }
                r.len()
            });
            let mut failed = 0;
            for (range, result) in &results {
                if range.contains(&4) {
                    failed += 1;
                    let msg = result.as_ref().unwrap_err();
                    assert!(
                        msg.contains("injected chunk failure"),
                        "panic message surfaces: {msg}"
                    );
                } else {
                    assert_eq!(*result.as_ref().unwrap(), range.len());
                }
            }
            assert_eq!(failed, 1, "exactly one chunk owns index 4");
        }
        std::panic::set_hook(prev);
    }
}
