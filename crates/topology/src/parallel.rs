//! Deterministic fork/join helpers for the subdivision engine.
//!
//! The engine parallelizes by splitting facet lists into contiguous chunks,
//! processing each chunk on a scoped OS thread (`std::thread::scope`), and
//! merging per-chunk results *in chunk order*. Because the chunks partition
//! the serial iteration order, the merged output is byte-identical to a
//! serial build for every thread count.
//!
//! The default thread count honours the `RAYON_NUM_THREADS` environment
//! variable (the convention of the rayon ecosystem), falling back to the
//! machine's available parallelism. `RAYON_NUM_THREADS=1` forces serial
//! execution — which, by the determinism guarantee above, produces exactly
//! the same complexes as any parallel run.

use std::num::NonZeroUsize;
use std::ops::Range;

use crate::simplex::Simplex;

/// The number of worker threads subdivision-engine operations fan out to:
/// `RAYON_NUM_THREADS` if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn subdivision_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into at most `chunks` contiguous, non-empty, ascending
/// ranges of near-equal size.
pub(crate) fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Runs `f` over the chunk ranges of `0..len` on up to `threads` scoped
/// threads, returning the per-chunk results in chunk order.
///
/// With `threads <= 1` (or a single chunk) no thread is spawned. Because
/// the chunks partition `0..len` in order, concatenating the results
/// reproduces the serial iteration order — the primitive both the
/// subdivision engine and the map-search engine build their deterministic
/// fan-outs on.
pub fn parallel_map_ranges<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut out = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let f = &f;
                scope.spawn(move || f(range))
            })
            .collect();
        for handle in handles {
            out.push(handle.join().expect("subdivision worker panicked"));
        }
    });
    out
}

/// Filters a facet list on up to `threads` scoped threads, preserving
/// order: each worker owns a private predicate state created by `init`
/// (e.g. a memoizing critical-simplex analysis), and the per-chunk results
/// are concatenated in chunk order, so the output equals the serial filter
/// for every thread count.
pub fn parallel_filter_facets<S, I, P>(
    facets: &[Simplex],
    threads: usize,
    init: I,
    pred: P,
) -> Vec<Simplex>
where
    I: Fn() -> S + Sync,
    P: Fn(&mut S, &Simplex) -> bool + Sync,
{
    parallel_map_ranges(facets.len(), threads, |range| {
        let mut state = init();
        facets[range]
            .iter()
            .filter(|f| pred(&mut state, f))
            .cloned()
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::VertexId;

    #[test]
    fn chunk_ranges_partition_the_input() {
        for len in 0..40 {
            for chunks in 1..8 {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "contiguous and ascending");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, len);
                if len > 0 {
                    assert_eq!(ranges.len(), chunks.min(len));
                }
            }
        }
    }

    #[test]
    fn parallel_map_preserves_chunk_order() {
        let out = parallel_map_ranges(10, 4, |r| r.clone());
        assert_eq!(out, chunk_ranges(10, 4));
    }

    #[test]
    fn parallel_filter_matches_serial_for_every_thread_count() {
        let facets: Vec<Simplex> = (0..25)
            .map(|i| Simplex::vertex(VertexId::from_index(i)))
            .collect();
        let keep = |_: &mut (), f: &Simplex| !f.vertices()[0].index().is_multiple_of(3);
        let serial = parallel_filter_facets(&facets, 1, || (), keep);
        for threads in 2..6 {
            let parallel = parallel_filter_facets(&facets, threads, || (), keep);
            assert_eq!(parallel, serial);
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(subdivision_threads() >= 1);
    }
}
