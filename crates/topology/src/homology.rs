//! Simplicial homology over GF(2): Betti numbers and Euler
//! characteristics of complexes.
//!
//! The ACT literature characterizes solvability through connectivity
//! properties of protocol complexes; Section 8 of the paper discusses why
//! point-set arguments need link-connectivity. This module computes the
//! actual invariants — `β₀` (components), `β₁`, `β₂`, … over GF(2) — so
//! the reproduction can report the homotopy-level structure of every
//! affine task: subdivisions of the simplex are acyclic, while e.g.
//! `R_{1-OF}` splits into seven acyclic pieces.
//!
//! Boundary-matrix ranks are computed by Gaussian elimination over GF(2)
//! with `u64`-packed bit rows — ample for the paper's complexes (a few
//! hundred simplices per dimension).

use std::collections::HashMap;

use crate::complex::Complex;
use crate::simplex::Simplex;

/// Dense GF(2) matrix with bit-packed rows.
struct BitMatrix {
    rows: usize,
    cols: usize,
    words: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    fn new(rows: usize, cols: usize) -> Self {
        let words = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            words,
            data: vec![0; rows * words],
        }
    }

    fn set(&mut self, r: usize, c: usize) {
        self.data[r * self.words + c / 64] ^= 1u64 << (c % 64);
    }

    fn get(&self, r: usize, c: usize) -> bool {
        self.data[r * self.words + c / 64] >> (c % 64) & 1 == 1
    }

    /// Rank over GF(2), destroying the matrix.
    fn rank(mut self) -> usize {
        let mut rank = 0;
        for col in 0..self.cols {
            // Find a pivot row at or below `rank`.
            let pivot = (rank..self.rows).find(|&r| self.get(r, col));
            let Some(pivot) = pivot else { continue };
            // Swap rows.
            for w in 0..self.words {
                self.data
                    .swap(rank * self.words + w, pivot * self.words + w);
            }
            // Eliminate the column from every other row.
            for r in 0..self.rows {
                if r != rank && self.get(r, col) {
                    for w in 0..self.words {
                        let v = self.data[rank * self.words + w];
                        self.data[r * self.words + w] ^= v;
                    }
                }
            }
            rank += 1;
            if rank == self.rows {
                break;
            }
        }
        rank
    }
}

/// The GF(2) Betti numbers `β₀, …, β_dim` of a complex (empty for a void
/// complex).
///
/// `β₀` counts connected components; a complex homotopy-equivalent to a
/// point has Betti vector `[1, 0, …, 0]`.
pub fn betti_numbers(complex: &Complex) -> Vec<usize> {
    let dim = complex.dim();
    if dim < 0 {
        return Vec::new();
    }
    let dim = dim as usize;
    // Enumerate simplices per dimension with stable indices.
    let mut by_dim: Vec<Vec<Simplex>> = vec![Vec::new(); dim + 1];
    let mut index: Vec<HashMap<Simplex, usize>> = vec![HashMap::new(); dim + 1];
    for s in complex.all_simplices() {
        let d = s.dim() as usize;
        if !index[d].contains_key(&s) {
            index[d].insert(s.clone(), by_dim[d].len());
            by_dim[d].push(s);
        }
    }
    // Boundary ranks: rank_d = rank of ∂_d : C_d -> C_{d-1}, d ≥ 1.
    let mut ranks = vec![0usize; dim + 2];
    for d in 1..=dim {
        let rows = by_dim[d].len();
        let cols = by_dim[d - 1].len();
        if rows == 0 || cols == 0 {
            continue;
        }
        let mut m = BitMatrix::new(rows, cols);
        for (r, s) in by_dim[d].iter().enumerate() {
            for face in s.non_empty_faces() {
                if face.dim() == d as isize - 1 {
                    m.set(r, index[d - 1][&face]);
                }
            }
        }
        ranks[d] = m.rank();
    }
    // β_d = dim C_d − rank ∂_d − rank ∂_{d+1}.
    (0..=dim)
        .map(|d| by_dim[d].len() - ranks[d] - ranks[d + 1])
        .collect()
}

/// The Euler characteristic `Σ (−1)^d · f_d`.
pub fn euler_characteristic(complex: &Complex) -> isize {
    complex
        .f_vector()
        .iter()
        .enumerate()
        .map(|(d, &count)| {
            if d % 2 == 0 {
                count as isize
            } else {
                -(count as isize)
            }
        })
        .sum()
}

/// Whether the complex has the GF(2) homology of a point
/// (`β = [1, 0, …, 0]`).
pub fn is_acyclic(complex: &Complex) -> bool {
    let betti = betti_numbers(complex);
    betti.first() == Some(&1) && betti.iter().skip(1).all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::ProcessId;
    use crate::complex::Complex;

    #[test]
    fn standard_simplices_are_acyclic() {
        for n in 1..=4 {
            let s = Complex::standard(n);
            assert!(is_acyclic(&s), "n = {n}");
            assert_eq!(euler_characteristic(&s), 1);
        }
    }

    #[test]
    fn subdivisions_are_acyclic() {
        // |Chr^m s| = |s| is contractible.
        for m in 1..=2 {
            let c = Complex::standard(3).iterated_subdivision(m);
            assert!(is_acyclic(&c), "Chr^{m}");
            assert_eq!(euler_characteristic(&c), 1);
        }
    }

    #[test]
    fn circle_has_beta_one() {
        // A hollow triangle (three edges, no 2-face): β = [1, 1].
        let verts = vec![
            (ProcessId::new(0), 0),
            (ProcessId::new(1), 0),
            (ProcessId::new(2), 0),
        ];
        let c = Complex::from_labeled_vertices(3, verts, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert_eq!(betti_numbers(&c), vec![1, 1]);
        assert_eq!(euler_characteristic(&c), 0);
        assert!(!is_acyclic(&c));
    }

    #[test]
    fn sphere_boundary_has_top_homology() {
        // The boundary of the tetrahedron: β = [1, 0, 1] (a 2-sphere).
        let s = Complex::standard(4);
        let boundary = s.skeleton(2);
        assert_eq!(betti_numbers(&boundary), vec![1, 0, 1]);
        assert_eq!(euler_characteristic(&boundary), 2);
    }

    #[test]
    fn disjoint_pieces_add_beta_zero() {
        let verts = vec![
            (ProcessId::new(0), 0),
            (ProcessId::new(1), 0),
            (ProcessId::new(0), 1),
            (ProcessId::new(1), 1),
        ];
        let c = Complex::from_labeled_vertices(2, verts, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(betti_numbers(&c), vec![2, 0]);
        assert_eq!(euler_characteristic(&c), 2);
    }

    #[test]
    fn void_complex_has_no_betti_numbers() {
        let s = Complex::standard(2);
        let void = s.sub_complex(Vec::<crate::simplex::Simplex>::new());
        assert!(betti_numbers(&void).is_empty());
        assert_eq!(euler_characteristic(&void), 0);
    }

    #[test]
    fn beta_zero_matches_connected_components() {
        use crate::connectivity::connected_components;
        let chr = Complex::standard(3).chromatic_subdivision();
        // Take a few random-ish sub-complexes and compare β₀ with the
        // union-find component count.
        for step in 1..6 {
            let facets: Vec<_> = chr.facets().iter().step_by(step).cloned().collect();
            let sub = chr.sub_complex(facets);
            let betti = betti_numbers(&sub);
            assert_eq!(betti[0], connected_components(&sub), "step {step}");
        }
    }
}
