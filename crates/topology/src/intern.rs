//! Hash-consing arena for subdivision vertices and facet lists.
//!
//! Every vertex of a subdivision level is identified by its canonical key
//! `(color, carrier)` — the process it belongs to and the simplex of the
//! previous level it subdivides. The [`InternArena`] maps each key to a
//! dense [`VertexId`], issuing ids in first-occurrence order so that
//! identical intern sequences produce identical vertex tables. Resolving an
//! id returns the key, making interning a bijection between keys and the
//! ids issued so far (`intern ∘ resolve = id`).

use std::collections::{HashMap, HashSet};

use crate::color::{ColorSet, ProcessId};
use crate::complex::VertexData;
use crate::simplex::{Simplex, VertexId};

/// Interning (hash-consing) arena mapping canonical vertex keys
/// `(color, carrier)` to dense [`VertexId`]s.
///
/// Ids are issued in first-occurrence order, so the arena contents are a
/// deterministic function of the intern-call sequence. The subdivision
/// engine builds one arena per subdivision round; parallel builds construct
/// per-chunk arenas and replay them into a global arena in chunk order,
/// yielding the same table as a serial build.
///
/// # Examples
///
/// ```
/// use act_topology::{ColorSet, InternArena, ProcessId, Simplex};
///
/// let mut arena = InternArena::new();
/// let p = ProcessId::new(0);
/// let id = arena.intern(p, Simplex::empty(), Simplex::empty(), ColorSet::singleton(p));
/// // Interning the same key again returns the same id…
/// assert_eq!(
///     arena.intern(p, Simplex::empty(), Simplex::empty(), ColorSet::singleton(p)),
///     id,
/// );
/// // …and resolving the id recovers the key.
/// let (color, carrier) = arena.resolve(id).unwrap();
/// assert_eq!((color, carrier.clone()), (p, Simplex::empty()));
/// assert_eq!(arena.len(), 1);
/// ```
#[derive(Default)]
pub struct InternArena {
    vertices: Vec<VertexData>,
    key_index: HashMap<(ProcessId, Simplex), VertexId>,
}

impl InternArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        InternArena::default()
    }

    /// The number of distinct keys interned so far.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Interns the key `(color, carrier)`, recording the base-carrier data
    /// on first occurrence, and returns its dense id.
    ///
    /// The base data of a key is a function of the key (the base carrier of
    /// a subdivision vertex is determined by its carrier), so later calls
    /// with the same key simply return the existing id.
    pub fn intern(
        &mut self,
        color: ProcessId,
        carrier: Simplex,
        base_carrier: Simplex,
        base_colors: ColorSet,
    ) -> VertexId {
        if let Some(&v) = self.key_index.get(&(color, carrier.clone())) {
            return v;
        }
        let id = VertexId::from_index(self.vertices.len());
        self.vertices.push(VertexData {
            color,
            carrier: carrier.clone(),
            base_carrier,
            base_colors,
            label: 0,
        });
        self.key_index.insert((color, carrier), id);
        id
    }

    /// Looks up the id of a key without interning it.
    pub fn lookup(&self, color: ProcessId, carrier: &Simplex) -> Option<VertexId> {
        self.key_index.get(&(color, carrier.clone())).copied()
    }

    /// Resolves an id back to its canonical key.
    pub fn resolve(&self, id: VertexId) -> Option<(ProcessId, &Simplex)> {
        self.vertices.get(id.index()).map(|d| (d.color, &d.carrier))
    }

    /// The full data of an interned vertex.
    pub fn vertex(&self, id: VertexId) -> Option<&VertexData> {
        self.vertices.get(id.index())
    }

    /// The vertex table in id order (used when replaying one arena into
    /// another during the parallel merge).
    pub(crate) fn vertex_table(&self) -> &[VertexData] {
        &self.vertices
    }

    /// Consumes the arena into the vertex table and key index of a
    /// [`crate::Complex`] level.
    pub(crate) fn into_parts(self) -> (Vec<VertexData>, HashMap<(ProcessId, Simplex), VertexId>) {
        (self.vertices, self.key_index)
    }
}

/// Order-preserving deduplicating facet list: the facet analogue of
/// [`InternArena`]. Keeps the first occurrence of every facet.
#[derive(Default)]
pub(crate) struct FacetAccumulator {
    facets: Vec<Simplex>,
    seen: HashSet<Simplex>,
}

impl FacetAccumulator {
    pub(crate) fn new() -> Self {
        FacetAccumulator::default()
    }

    pub(crate) fn push(&mut self, facet: Simplex) {
        if self.seen.insert(facet.clone()) {
            self.facets.push(facet);
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.facets.len()
    }

    pub(crate) fn into_facets(self) -> Vec<Simplex> {
        self.facets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_first_occurrence_ordered() {
        let mut arena = InternArena::new();
        let c0 = ProcessId::new(0);
        let c1 = ProcessId::new(1);
        let s = Simplex::vertex(VertexId::from_index(7));
        let a = arena.intern(c0, s.clone(), Simplex::empty(), ColorSet::EMPTY);
        let b = arena.intern(c1, s.clone(), Simplex::empty(), ColorSet::EMPTY);
        let a2 = arena.intern(c0, s.clone(), Simplex::empty(), ColorSet::EMPTY);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn resolve_round_trips_through_lookup() {
        let mut arena = InternArena::new();
        for i in 0..4 {
            let color = ProcessId::new(i % 2);
            let carrier = Simplex::vertex(VertexId::from_index(i));
            arena.intern(color, carrier, Simplex::empty(), ColorSet::EMPTY);
        }
        for i in 0..arena.len() {
            let id = VertexId::from_index(i);
            let (color, carrier) = arena.resolve(id).unwrap();
            assert_eq!(arena.lookup(color, &carrier.clone()), Some(id));
        }
        assert!(arena.resolve(VertexId::from_index(99)).is_none());
    }

    #[test]
    fn facet_accumulator_dedups_keeping_order() {
        let mut acc = FacetAccumulator::new();
        let a = Simplex::vertex(VertexId::from_index(0));
        let b = Simplex::vertex(VertexId::from_index(1));
        acc.push(b.clone());
        acc.push(a.clone());
        acc.push(b.clone());
        assert_eq!(acc.into_facets(), vec![b, a]);
    }
}
