//! Combinatorial-topology substrate for the FACT reproduction:
//! chromatic simplicial complexes, the standard chromatic subdivision, and
//! the carrier machinery of Herlihy–Shavit / Kuznetsov–Rieutord–He.
//!
//! This crate implements Section 2 and Appendix A of *An Asynchronous
//! Computability Theorem for Fair Adversaries* (Kuznetsov, Rieutord, He,
//! PODC 2018):
//!
//! * [`ProcessId`] / [`ColorSet`] — processes as colors, process sets as
//!   bitmasks;
//! * [`Osp`] — ordered set partitions, the combinatorial form of
//!   immediate-snapshot runs (Figure 3);
//! * [`Simplex`] / [`Complex`] — chromatic complexes represented by their
//!   facets, with closure / star / pure-complement / skeleton operations;
//! * [`Complex::chromatic_subdivision`] — the standard chromatic
//!   subdivision `Chr` with full carrier tracking (Figure 1a), plus the
//!   recipe-driven subdivision used to iterate affine tasks;
//! * [`VertexMap`] — simplicial / chromatic / carried-map verification;
//! * [`realization_coordinates`] — Kozlov's geometric embedding, used to
//!   export the paper's figures.
//!
//! # Quickstart
//!
//! ```
//! use act_topology::{Complex, fubini};
//!
//! // Figure 1a: the standard chromatic subdivision of a triangle.
//! let s = Complex::standard(3);
//! let chr = s.chromatic_subdivision();
//! assert_eq!(chr.facet_count() as u64, fubini(3)); // 13 triangles
//!
//! // Chr² s, the home of every affine task in the paper.
//! let chr2 = chr.chromatic_subdivision();
//! assert_eq!(chr2.facet_count(), 169);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod color;
mod complex;
mod connectivity;
mod geometry;
mod homology;
mod intern;
mod maps;
mod osp;
mod parallel;
mod portable;
mod simplex;
mod subdivision;
mod symmetry;

pub use color::{ColorSet, Iter, ProcessId, Subsets, MAX_PROCESSES};
pub use complex::{CanonicalVertex, Complex, SimplexSet, VertexData};
pub use connectivity::{
    connected_components, is_connected, is_link_connected, link_disconnection_witness, vertex_link,
};
pub use geometry::{
    barycentric_to_plane, facet_volume_fractions, realization_coordinates,
    verify_subdivision_geometry,
};
pub use homology::{betti_numbers, euler_characteristic, is_acyclic};
pub use intern::InternArena;
pub use maps::VertexMap;
pub use osp::{fubini, ordered_set_partitions, osp_table, Osp, OspError};
pub use parallel::{
    parallel_filter_facets, parallel_map_ranges, parallel_map_ranges_catch, subdivision_threads,
};
pub use portable::{PortableError, PORTABLE_FORMAT_VERSION};
pub use simplex::{Faces, Simplex, VertexId};
pub use subdivision::{all_recipes, OrbitExpansion, QuotientedSubdivision, Recipe};
pub use symmetry::{
    canonical_complex, canonical_pair_hashes, chain_action, permute_complex, symmetry_group,
    symmetry_group_inferred, transport_vertex_map, ChainAction, ColorPerm, FacetOrbit,
    LabelMatching, SymmetryGroup, SYMMETRY_MAX_DEGREE,
};
