//! Simplices: sorted sets of vertex identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex within one level of a [`Complex`].
///
/// Vertex ids are only meaningful relative to the complex (and subdivision
/// level) that issued them.
///
/// [`Complex`]: crate::Complex
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VertexId(pub(crate) u32);

impl VertexId {
    /// Sentinel for "no vertex": used by image tables during orbit
    /// transport. Never issued by an arena (a level would need 2³² − 1
    /// real vertices first).
    pub const NONE: VertexId = VertexId(u32::MAX);

    /// The zero-based index of this vertex in its level's vertex table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a vertex id from a raw index. Only meaningful for indices
    /// obtained from the same complex.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32"))
    }
}

/// A simplex: a non-empty-or-empty set of vertices of a single level of a
/// complex, stored sorted and duplicate-free.
///
/// The *dimension* of a simplex is its cardinality minus one; the empty
/// simplex has dimension −1 and is used as the identity for carrier unions.
///
/// # Examples
///
/// ```
/// use act_topology::{Simplex, VertexId};
///
/// let s = Simplex::from_vertices([VertexId::from_index(2), VertexId::from_index(0)]);
/// assert_eq!(s.dim(), 1);
/// assert!(s.contains(VertexId::from_index(0)));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Simplex {
    verts: Vec<VertexId>,
}

impl Simplex {
    /// The empty simplex (dimension −1).
    pub fn empty() -> Self {
        Simplex { verts: Vec::new() }
    }

    /// A single-vertex simplex.
    pub fn vertex(v: VertexId) -> Self {
        Simplex { verts: vec![v] }
    }

    /// Builds a simplex from vertices, sorting and deduplicating.
    pub fn from_vertices<I: IntoIterator<Item = VertexId>>(verts: I) -> Self {
        let mut v: Vec<VertexId> = verts.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Simplex { verts: v }
    }

    /// The vertices of the simplex, in increasing id order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.verts
    }

    /// The number of vertices.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Whether this is the empty simplex.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// The dimension (`len() - 1`; −1 for the empty simplex).
    pub fn dim(&self) -> isize {
        self.verts.len() as isize - 1
    }

    /// Whether `v` is a vertex of this simplex.
    pub fn contains(&self, v: VertexId) -> bool {
        self.verts.binary_search(&v).is_ok()
    }

    /// Whether `self` is a face of `other` (subset of vertices; every
    /// simplex is a face of itself).
    pub fn is_face_of(&self, other: &Simplex) -> bool {
        if self.verts.len() > other.verts.len() {
            return false;
        }
        // Merge-walk: both are sorted.
        let mut it = other.verts.iter();
        'outer: for v in &self.verts {
            for w in it.by_ref() {
                match w.cmp(v) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether `self` is a proper face of `other`.
    pub fn is_proper_face_of(&self, other: &Simplex) -> bool {
        self.verts.len() < other.verts.len() && self.is_face_of(other)
    }

    /// The union of two simplices (join of vertex sets).
    #[must_use]
    pub fn union(&self, other: &Simplex) -> Simplex {
        let mut v = Vec::with_capacity(self.verts.len() + other.verts.len());
        let (mut i, mut j) = (0, 0);
        while i < self.verts.len() && j < other.verts.len() {
            match self.verts[i].cmp(&other.verts[j]) {
                std::cmp::Ordering::Less => {
                    v.push(self.verts[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    v.push(other.verts[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    v.push(self.verts[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        v.extend_from_slice(&self.verts[i..]);
        v.extend_from_slice(&other.verts[j..]);
        Simplex { verts: v }
    }

    /// The intersection of two simplices.
    #[must_use]
    pub fn intersection(&self, other: &Simplex) -> Simplex {
        let mut v = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.verts.len() && j < other.verts.len() {
            match self.verts[i].cmp(&other.verts[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    v.push(self.verts[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Simplex { verts: v }
    }

    /// The set difference `self \ other`.
    #[must_use]
    pub fn minus(&self, other: &Simplex) -> Simplex {
        Simplex {
            verts: self
                .verts
                .iter()
                .copied()
                .filter(|v| !other.contains(*v))
                .collect(),
        }
    }

    /// Whether the two simplices share a vertex.
    pub fn intersects(&self, other: &Simplex) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.verts.len() && j < other.verts.len() {
            match self.verts[i].cmp(&other.verts[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Iterates over all faces of this simplex, including the empty face
    /// and the simplex itself (`2^len` faces).
    ///
    /// Intended for the small simplices of chromatic complexes (at most one
    /// vertex per process).
    pub fn faces(&self) -> Faces<'_> {
        Faces {
            simplex: self,
            next_mask: 0,
            done: false,
        }
    }

    /// Iterates over the non-empty faces of this simplex.
    pub fn non_empty_faces(&self) -> impl Iterator<Item = Simplex> + '_ {
        self.faces().filter(|f| !f.is_empty())
    }

    /// The face consisting of the vertices selected by `keep`.
    pub fn filter<F: FnMut(VertexId) -> bool>(&self, mut keep: F) -> Simplex {
        Simplex {
            verts: self.verts.iter().copied().filter(|&v| keep(v)).collect(),
        }
    }
}

impl fmt::Debug for Simplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Simplex[")?;
        for (i, v) in self.verts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", v.0)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<VertexId> for Simplex {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        Simplex::from_vertices(iter)
    }
}

/// Iterator over the faces of a [`Simplex`], produced by [`Simplex::faces`].
#[derive(Clone, Debug)]
pub struct Faces<'a> {
    simplex: &'a Simplex,
    next_mask: u64,
    done: bool,
}

impl Iterator for Faces<'_> {
    type Item = Simplex;

    fn next(&mut self) -> Option<Simplex> {
        if self.done {
            return None;
        }
        let mask = self.next_mask;
        let n = self.simplex.verts.len();
        debug_assert!(n <= 63, "faces() supports simplices of at most 63 vertices");
        let verts = self
            .simplex
            .verts
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1u64 << i) != 0)
            .map(|(_, &v)| v)
            .collect();
        if mask + 1 == 1u64 << n {
            self.done = true;
        } else {
            self.next_mask = mask + 1;
        }
        Some(Simplex { verts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sx(ids: &[usize]) -> Simplex {
        Simplex::from_vertices(ids.iter().map(|&i| VertexId::from_index(i)))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = sx(&[3, 1, 3, 0]);
        assert_eq!(
            s.vertices().iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn empty_simplex_dimension() {
        assert_eq!(Simplex::empty().dim(), -1);
        assert!(Simplex::empty().is_empty());
    }

    #[test]
    fn face_relations() {
        let big = sx(&[0, 1, 2, 5]);
        assert!(sx(&[1, 5]).is_face_of(&big));
        assert!(sx(&[1, 5]).is_proper_face_of(&big));
        assert!(big.is_face_of(&big));
        assert!(!big.is_proper_face_of(&big));
        assert!(!sx(&[1, 3]).is_face_of(&big));
        assert!(Simplex::empty().is_face_of(&big));
    }

    #[test]
    fn union_intersection_minus() {
        let a = sx(&[0, 2, 4]);
        let b = sx(&[2, 3]);
        assert_eq!(a.union(&b), sx(&[0, 2, 3, 4]));
        assert_eq!(a.intersection(&b), sx(&[2]));
        assert_eq!(a.minus(&b), sx(&[0, 4]));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&sx(&[1, 5])));
    }

    #[test]
    fn faces_enumerates_power_set() {
        let s = sx(&[0, 1, 2]);
        let faces: Vec<Simplex> = s.faces().collect();
        assert_eq!(faces.len(), 8);
        for f in &faces {
            assert!(f.is_face_of(&s));
        }
        let mut sorted = faces.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn faces_of_empty() {
        let faces: Vec<Simplex> = Simplex::empty().faces().collect();
        assert_eq!(faces, vec![Simplex::empty()]);
    }

    #[test]
    fn filter_selects_subset() {
        let s = sx(&[0, 1, 2, 3]);
        let even = s.filter(|v| v.index() % 2 == 0);
        assert_eq!(even, sx(&[0, 2]));
    }
}
