//! Chromatic simplicial complexes with carrier tracking.
//!
//! A [`Complex`] is one "level" of an iterated subdivision: level 0 is a
//! *base* complex (the standard simplex `s`, or a task's input complex) and
//! level `m + 1` is obtained from level `m` by the standard chromatic
//! subdivision (see [`crate::subdivision`]). Every vertex of a subdivision
//! level records its *carrier* — the simplex of the previous level it
//! subdivides — so the carrier maps of the paper are O(1) lookups.
//!
//! Complexes are represented by their *maximal* simplices (facets); a
//! simplex belongs to the complex iff it is a face of a facet. Sub-complex
//! operations (closure, star, pure complement, skeleton, color restriction)
//! produce new `Complex` values that share the underlying vertex tables.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use crate::color::{ColorSet, ProcessId};
use crate::simplex::{Simplex, VertexId};

/// Data attached to a single vertex of a complex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexData {
    /// The process (color) of this vertex.
    pub color: ProcessId,
    /// The carrier of this vertex in the *parent* level: the simplex whose
    /// subdivision produced it. Empty at level 0.
    pub carrier: Simplex,
    /// The carrier of this vertex in the *base* (level 0) complex. At level
    /// 0, the singleton of the vertex itself.
    pub base_carrier: Simplex,
    /// The colors of `base_carrier`, cached: the set of processes "seen" by
    /// this vertex's process through all subdivision rounds.
    pub base_colors: ColorSet,
    /// Base-level payload (e.g. a task input value); 0 for subdivision
    /// vertices.
    pub label: u64,
}

pub(crate) struct Structure {
    pub(crate) n: usize,
    pub(crate) level: usize,
    pub(crate) parent: Option<Complex>,
    pub(crate) vertices: Vec<VertexData>,
    /// Canonical key → id, for subdivision levels (key = (color, carrier)).
    pub(crate) key_index: HashMap<(ProcessId, Simplex), VertexId>,
}

/// A chromatic simplicial complex, represented by its maximal simplices.
///
/// Cloning is cheap: the vertex table and facet list are shared.
///
/// # Examples
///
/// ```
/// use act_topology::Complex;
///
/// let s = Complex::standard(3);
/// assert_eq!(s.facet_count(), 1);
/// let chr = s.chromatic_subdivision();
/// assert_eq!(chr.facet_count(), 13); // Figure 1a of the paper
/// assert_eq!(chr.num_vertices(), 12);
/// ```
#[derive(Clone)]
pub struct Complex {
    pub(crate) structure: Arc<Structure>,
    pub(crate) facets: Arc<Vec<Simplex>>,
    /// For each vertex id, the indices (into `facets`) of facets containing
    /// it — the star index used for fast membership tests.
    pub(crate) star_index: Arc<Vec<Vec<u32>>>,
}

impl Complex {
    /// The standard `(n-1)`-simplex `s` as a complex: one vertex per
    /// process, a single facet.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds [`crate::MAX_PROCESSES`].
    pub fn standard(n: usize) -> Complex {
        assert!(n >= 1, "the standard simplex needs at least one process");
        let vertices: Vec<VertexData> = (0..n)
            .map(|i| VertexData {
                color: ProcessId::new(i),
                carrier: Simplex::empty(),
                base_carrier: Simplex::vertex(VertexId::from_index(i)),
                base_colors: ColorSet::singleton(ProcessId::new(i)),
                label: 0,
            })
            .collect();
        let facet = Simplex::from_vertices((0..n).map(VertexId::from_index));
        Complex::from_base(n, vertices, vec![facet])
    }

    /// Builds a base (level 0) complex from labeled vertices and facets.
    ///
    /// Each vertex is `(color, label)`; facets are given as lists of vertex
    /// indices. Used for task input/output complexes.
    ///
    /// # Panics
    ///
    /// Panics if a facet references an out-of-range vertex or contains two
    /// vertices of the same color.
    pub fn from_labeled_vertices(
        n: usize,
        verts: Vec<(ProcessId, u64)>,
        facets: Vec<Vec<usize>>,
    ) -> Complex {
        let vertices: Vec<VertexData> = verts
            .iter()
            .enumerate()
            .map(|(i, &(color, label))| VertexData {
                color,
                carrier: Simplex::empty(),
                base_carrier: Simplex::vertex(VertexId::from_index(i)),
                base_colors: ColorSet::singleton(color),
                label,
            })
            .collect();
        let facet_simplices: Vec<Simplex> = facets
            .into_iter()
            .map(|f| {
                let sx = Simplex::from_vertices(f.into_iter().map(VertexId::from_index));
                for v in sx.vertices() {
                    assert!(
                        v.index() < vertices.len(),
                        "facet references unknown vertex"
                    );
                }
                let mut colors = ColorSet::EMPTY;
                for v in sx.vertices() {
                    let c = vertices[v.index()].color;
                    assert!(!colors.contains(c), "facet has two vertices of color {c}");
                    colors = colors.with(c);
                }
                sx
            })
            .collect();
        Complex::from_base(n, vertices, facet_simplices)
    }

    fn from_base(n: usize, vertices: Vec<VertexData>, facets: Vec<Simplex>) -> Complex {
        let structure = Arc::new(Structure {
            n,
            level: 0,
            parent: None,
            vertices,
            key_index: HashMap::new(),
        });
        Complex::assemble(structure, facets)
    }

    pub(crate) fn assemble(structure: Arc<Structure>, facets: Vec<Simplex>) -> Complex {
        let mut star_index = vec![Vec::new(); structure.vertices.len()];
        for (i, f) in facets.iter().enumerate() {
            for v in f.vertices() {
                star_index[v.index()].push(i as u32);
            }
        }
        Complex {
            structure,
            facets: Arc::new(facets),
            star_index: Arc::new(star_index),
        }
    }

    /// The number of processes (colors) of the system.
    pub fn num_processes(&self) -> usize {
        self.structure.n
    }

    /// The subdivision level: 0 for a base complex, `m` for a sub-complex
    /// of `Chr^m` of the base.
    pub fn level(&self) -> usize {
        self.structure.level
    }

    /// The complex whose subdivision produced this level's vertices
    /// (`None` at level 0).
    pub fn parent(&self) -> Option<&Complex> {
        self.structure.parent.as_ref()
    }

    /// The base (level 0) complex.
    pub fn base(&self) -> &Complex {
        let mut c = self;
        while let Some(p) = c.parent() {
            c = p;
        }
        c
    }

    /// The number of vertices in this level's vertex table.
    ///
    /// This counts the vertices of the *full* subdivision level; a
    /// sub-complex sharing the table may use only some of them (see
    /// [`Complex::used_vertices`]).
    pub fn num_vertices(&self) -> usize {
        self.structure.vertices.len()
    }

    /// The vertices actually appearing in some facet of this complex.
    pub fn used_vertices(&self) -> Vec<VertexId> {
        let mut used: Vec<bool> = vec![false; self.num_vertices()];
        for f in self.facets.iter() {
            for v in f.vertices() {
                used[v.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| VertexId::from_index(i))
            .collect()
    }

    /// The data of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this complex's level.
    pub fn vertex(&self, v: VertexId) -> &VertexData {
        &self.structure.vertices[v.index()]
    }

    /// The color (process) of vertex `v`.
    pub fn color(&self, v: VertexId) -> ProcessId {
        self.vertex(v).color
    }

    /// The colors of a simplex: `χ(σ)`.
    pub fn colors(&self, simplex: &Simplex) -> ColorSet {
        simplex
            .vertices()
            .iter()
            .fold(ColorSet::EMPTY, |acc, &v| acc.with(self.color(v)))
    }

    /// The carrier of vertex `v` in the parent level (empty at level 0).
    pub fn carrier_of_vertex(&self, v: VertexId) -> &Simplex {
        &self.vertex(v).carrier
    }

    /// The carrier of a simplex in the parent level: the union (equivalently,
    /// by the containment property, the maximum) of its vertices' carriers.
    pub fn carrier_in_parent(&self, simplex: &Simplex) -> Simplex {
        let mut acc = Simplex::empty();
        for &v in simplex.vertices() {
            acc = acc.union(&self.vertex(v).carrier);
        }
        acc
    }

    /// The carrier of a simplex in the base complex, as a simplex of the
    /// base's vertex table.
    pub fn carrier_in_base(&self, simplex: &Simplex) -> Simplex {
        let mut acc = Simplex::empty();
        for &v in simplex.vertices() {
            acc = acc.union(&self.vertex(v).base_carrier);
        }
        acc
    }

    /// The colors of the carrier of `v` in the base complex:
    /// `χ(carrier(v, base))` — the set of processes "seen" by `χ(v)` through
    /// all subdivision rounds.
    pub fn base_colors_of_vertex(&self, v: VertexId) -> ColorSet {
        self.vertex(v).base_colors
    }

    /// The colors of the carrier of a simplex in the base complex.
    pub fn carrier_colors(&self, simplex: &Simplex) -> ColorSet {
        simplex.vertices().iter().fold(ColorSet::EMPTY, |acc, &v| {
            acc.union(self.base_colors_of_vertex(v))
        })
    }

    /// The facets (maximal simplices) of this complex.
    pub fn facets(&self) -> &[Simplex] {
        &self.facets
    }

    /// The number of facets.
    pub fn facet_count(&self) -> usize {
        self.facets.len()
    }

    /// Whether the complex has no facets.
    pub fn is_void(&self) -> bool {
        self.facets.is_empty()
    }

    /// The dimension of the complex: the maximal facet dimension (−1 if
    /// void).
    pub fn dim(&self) -> isize {
        self.facets.iter().map(Simplex::dim).max().unwrap_or(-1)
    }

    /// Whether the complex is *pure*: all facets share the maximal
    /// dimension.
    pub fn is_pure(&self) -> bool {
        let d = self.dim();
        self.facets.iter().all(|f| f.dim() == d)
    }

    /// Whether the complex is chromatic: no facet repeats a color (the
    /// coloring is then automatically non-collapsing on every simplex).
    pub fn is_chromatic(&self) -> bool {
        self.facets.iter().all(|f| self.colors(f).len() == f.len())
    }

    /// Whether `simplex` belongs to this complex (is a face of a facet).
    /// The empty simplex belongs to every non-void complex.
    pub fn contains_simplex(&self, simplex: &Simplex) -> bool {
        if simplex.is_empty() {
            return !self.is_void();
        }
        let first = simplex.vertices()[0];
        if first.index() >= self.star_index.len() {
            return false;
        }
        self.star_index[first.index()]
            .iter()
            .any(|&fi| simplex.is_face_of(&self.facets[fi as usize]))
    }

    /// Enumerates every simplex of the complex (all faces of all facets,
    /// deduplicated), excluding the empty simplex. Exponential in facet
    /// size; intended for the small chromatic complexes of the paper.
    pub fn all_simplices(&self) -> Vec<Simplex> {
        let mut set = BTreeSet::new();
        for f in self.facets.iter() {
            for face in f.non_empty_faces() {
                set.insert(face);
            }
        }
        set.into_iter().collect()
    }

    /// Builds the sub-complex (sharing this complex's vertex table) whose
    /// facets are the maximal elements of `simplices`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a simplex references an unknown vertex.
    pub fn sub_complex<I: IntoIterator<Item = Simplex>>(&self, simplices: I) -> Complex {
        let mut sims: Vec<Simplex> = simplices.into_iter().collect();
        debug_assert!(sims
            .iter()
            .all(|s| s.vertices().iter().all(|v| v.index() < self.num_vertices())));
        // Keep only maximal simplices.
        sims.sort_by_key(|s| std::cmp::Reverse(s.len()));
        sims.dedup();
        let mut maximal: Vec<Simplex> = Vec::new();
        'outer: for s in sims {
            for m in &maximal {
                if s.is_face_of(m) {
                    continue 'outer;
                }
            }
            maximal.push(s);
        }
        Complex::assemble(Arc::clone(&self.structure), maximal)
    }

    /// The pure complement `Pc(S, K)` (Section 2 of the paper): the closure
    /// of the facets of `K` having no face in `S`.
    ///
    /// `S` is given as a predicate over simplices; a facet survives iff none
    /// of its non-empty faces satisfies the predicate.
    pub fn pure_complement<F: FnMut(&Simplex) -> bool>(&self, mut in_s: F) -> Complex {
        let surviving: Vec<Simplex> = self
            .facets
            .iter()
            .filter(|facet| !facet.non_empty_faces().any(|face| in_s(&face)))
            .cloned()
            .collect();
        Complex::assemble(Arc::clone(&self.structure), surviving)
    }

    /// The star `St(S, K)`: all simplices of `K` having a face in `S`,
    /// returned as a list of simplices (the star is generally not a
    /// complex).
    pub fn star<F: FnMut(&Simplex) -> bool>(&self, mut in_s: F) -> Vec<Simplex> {
        let mut out = BTreeSet::new();
        for facet in self.facets.iter() {
            for face in facet.non_empty_faces() {
                if face.non_empty_faces().any(|sub| in_s(&sub)) {
                    out.insert(face);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The `k`-skeleton: the sub-complex of simplices of dimension ≤ `k`.
    pub fn skeleton(&self, k: isize) -> Complex {
        let mut sims = BTreeSet::new();
        for facet in self.facets.iter() {
            if facet.dim() <= k {
                sims.insert(facet.clone());
            } else {
                // All (k+1)-subsets of the facet.
                for face in facet.non_empty_faces() {
                    if face.dim() == k {
                        sims.insert(face);
                    }
                }
            }
        }
        self.sub_complex(sims)
    }

    /// The sub-complex of simplices whose base carrier uses only colors in
    /// `allowed` — i.e. `K ∩ Chr^m(t)` where `t` is the face of the base
    /// spanned by `allowed` (for a base with one vertex per color).
    ///
    /// This is the `Δ(σ) = L ∩ Chr^ℓ(σ)` operation of affine tasks.
    pub fn restrict_carrier_colors(&self, allowed: ColorSet) -> Complex {
        let mut sims = Vec::new();
        for facet in self.facets.iter() {
            let kept = facet.filter(|v| self.base_colors_of_vertex(v).is_subset_of(allowed));
            if !kept.is_empty() {
                sims.push(kept);
            }
        }
        self.sub_complex(sims)
    }

    /// The sub-complex of simplices whose base carrier is contained in the
    /// given base simplex (the general form of
    /// [`Complex::restrict_carrier_colors`] for bases with several vertices
    /// per color).
    pub fn restrict_base_carrier(&self, base_face: &Simplex) -> Complex {
        let mut sims = Vec::new();
        for facet in self.facets.iter() {
            let kept = facet.filter(|v| self.vertex(v).base_carrier.is_face_of(base_face));
            if !kept.is_empty() {
                sims.push(kept);
            }
        }
        self.sub_complex(sims)
    }

    /// Counts simplices by dimension (index `d` holds the number of
    /// `d`-simplices), excluding the empty simplex.
    pub fn f_vector(&self) -> Vec<usize> {
        let sims = self.all_simplices();
        let maxd = sims.iter().map(Simplex::dim).max().unwrap_or(-1);
        if maxd < 0 {
            return Vec::new();
        }
        let mut counts = vec![0usize; (maxd + 1) as usize];
        for s in sims {
            counts[s.dim() as usize] += 1;
        }
        counts
    }

    /// The intern-key signature of a simplex: the ordered list of
    /// `(color, base-carrier)` pairs of its vertices.
    ///
    /// Two simplices with equal signatures are indistinguishable to any
    /// computation that only consults vertex colors and base carriers
    /// (carrier maps `Δ ∘ carrier`, candidate output sets, …). Interned
    /// subdivisions repeat identical signatures across thousands of
    /// facets, so the signature is the natural memoization key for
    /// per-facet tables (the map-search engine keys its constraint-tuple
    /// cache on it).
    pub fn simplex_signature(&self, simplex: &Simplex) -> Vec<(ProcessId, Simplex)> {
        simplex
            .vertices()
            .iter()
            .map(|&v| {
                let data = self.vertex(v);
                (data.color, data.base_carrier.clone())
            })
            .collect()
    }

    /// Looks up a subdivision vertex by its canonical key
    /// `(color, carrier-in-parent)`.
    pub fn find_vertex(&self, color: ProcessId, carrier: &Simplex) -> Option<VertexId> {
        self.structure
            .key_index
            .get(&(color, carrier.clone()))
            .copied()
    }

    /// A canonical, structure-independent description of this complex's
    /// facet set, usable to compare complexes built through different
    /// constructions over the same base. Expensive; intended for tests.
    pub fn canonical_facets(&self) -> BTreeSet<BTreeSet<CanonicalVertex>> {
        self.facets
            .iter()
            .map(|f| {
                f.vertices()
                    .iter()
                    .map(|&v| self.canonical_vertex(v))
                    .collect()
            })
            .collect()
    }

    /// The canonical description of a vertex: its color together with the
    /// canonical descriptions of its carrier's vertices (recursively down to
    /// the base, where the label is used).
    pub fn canonical_vertex(&self, v: VertexId) -> CanonicalVertex {
        let data = self.vertex(v);
        match self.parent() {
            None => CanonicalVertex {
                color: data.color,
                label: data.label,
                carrier: BTreeSet::new(),
            },
            Some(parent) => CanonicalVertex {
                color: data.color,
                label: 0,
                carrier: data
                    .carrier
                    .vertices()
                    .iter()
                    .map(|&w| parent.canonical_vertex(w))
                    .collect(),
            },
        }
    }

    /// Whether two complexes over the same base have identical simplices,
    /// compared structurally. Expensive; intended for tests and
    /// cross-validation experiments.
    pub fn same_complex(&self, other: &Complex) -> bool {
        // Compare closures, not facet lists, so differently-factored facet
        // sets of the same complex are still equal. Both inputs store
        // maximal simplices, so facet-set equality is complex equality.
        self.canonical_facets() == other.canonical_facets()
    }
}

impl PartialEq for Complex {
    /// Structural equality of the interned representations: same process
    /// count, same level chain, same vertex tables, same facet lists.
    ///
    /// Because subdivision vertices are hash-consed in first-occurrence
    /// order, two complexes built by the same construction — serially or in
    /// parallel, in any thread count — compare equal. For complexes built
    /// through *different* constructions over the same base (where interned
    /// ids may differ), use [`Complex::same_complex`].
    fn eq(&self, other: &Self) -> bool {
        structures_eq(&self.structure, &other.structure) && *self.facets == *other.facets
    }
}

impl Eq for Complex {}

fn structures_eq(a: &Arc<Structure>, b: &Arc<Structure>) -> bool {
    if Arc::ptr_eq(a, b) {
        return true;
    }
    // `key_index` is derived from `vertices` (and `star_index` from the
    // facets), so vertex-table equality covers them.
    a.n == b.n
        && a.level == b.level
        && a.vertices == b.vertices
        && match (&a.parent, &b.parent) {
            (None, None) => true,
            (Some(p), Some(q)) => p == q,
            _ => false,
        }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Complex")
            .field("n", &self.structure.n)
            .field("level", &self.structure.level)
            .field("vertices", &self.num_vertices())
            .field("facets", &self.facet_count())
            .field("dim", &self.dim())
            .finish()
    }
}

/// Structure-independent canonical description of a vertex; see
/// [`Complex::canonical_vertex`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CanonicalVertex {
    /// Color of the vertex.
    pub color: ProcessId,
    /// Base label (only at level 0).
    pub label: u64,
    /// Canonical carrier (empty at level 0).
    pub carrier: BTreeSet<CanonicalVertex>,
}

/// A set of simplices indexable by hash, used for `S` arguments of star /
/// pure-complement computations.
#[derive(Clone, Debug, Default)]
pub struct SimplexSet {
    set: HashSet<Simplex>,
}

impl SimplexSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SimplexSet::default()
    }

    /// Inserts a simplex; returns whether it was newly inserted.
    pub fn insert(&mut self, s: Simplex) -> bool {
        self.set.insert(s)
    }

    /// Whether the set contains `s`.
    pub fn contains(&self, s: &Simplex) -> bool {
        self.set.contains(s)
    }

    /// Number of simplices in the set.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates over the simplices of the set.
    pub fn iter(&self) -> impl Iterator<Item = &Simplex> {
        self.set.iter()
    }
}

impl FromIterator<Simplex> for SimplexSet {
    fn from_iter<I: IntoIterator<Item = Simplex>>(iter: I) -> Self {
        SimplexSet {
            set: iter.into_iter().collect(),
        }
    }
}

impl Extend<Simplex> for SimplexSet {
    fn extend<I: IntoIterator<Item = Simplex>>(&mut self, iter: I) {
        self.set.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_simplex_shape() {
        let s = Complex::standard(4);
        assert_eq!(s.num_vertices(), 4);
        assert_eq!(s.facet_count(), 1);
        assert_eq!(s.dim(), 3);
        assert!(s.is_pure());
        assert!(s.is_chromatic());
        assert_eq!(s.level(), 0);
        assert!(s.parent().is_none());
    }

    #[test]
    fn colors_of_facet() {
        let s = Complex::standard(3);
        let facet = s.facets()[0].clone();
        assert_eq!(s.colors(&facet), ColorSet::full(3));
    }

    #[test]
    fn contains_simplex_checks_faces() {
        let s = Complex::standard(3);
        let facet = s.facets()[0].clone();
        for face in facet.non_empty_faces() {
            assert!(s.contains_simplex(&face));
        }
        assert!(s.contains_simplex(&Simplex::empty()));
    }

    #[test]
    fn sub_complex_prunes_non_maximal() {
        let s = Complex::standard(3);
        let facet = s.facets()[0].clone();
        let edge = Simplex::from_vertices(facet.vertices()[..2].iter().copied());
        let sub = s.sub_complex(vec![edge.clone(), facet.clone(), edge.clone()]);
        assert_eq!(sub.facet_count(), 1);
        assert_eq!(sub.facets()[0], facet);
    }

    #[test]
    fn skeleton_of_standard_simplex() {
        let s = Complex::standard(4);
        let skel1 = s.skeleton(1);
        // 1-skeleton of a tetrahedron: 6 edges.
        assert_eq!(skel1.facet_count(), 6);
        assert_eq!(skel1.dim(), 1);
        assert!(skel1.is_pure());
        let f = skel1.f_vector();
        assert_eq!(f, vec![4, 6]);
    }

    #[test]
    fn f_vector_of_standard() {
        let s = Complex::standard(3);
        assert_eq!(s.f_vector(), vec![3, 3, 1]);
    }

    #[test]
    fn pure_complement_removes_star() {
        let s = Complex::standard(3);
        // Remove everything adjacent to vertex 0: no facet survives.
        let v0 = VertexId::from_index(0);
        let pc = s.pure_complement(|sx| sx.len() == 1 && sx.contains(v0));
        assert!(pc.is_void());
    }

    #[test]
    fn labeled_base_complex() {
        // Two possible inputs for each of two processes: a 2-process
        // binary-input pseudosphere (4 vertices, 4 edges).
        let verts = vec![
            (ProcessId::new(0), 0),
            (ProcessId::new(0), 1),
            (ProcessId::new(1), 0),
            (ProcessId::new(1), 1),
        ];
        let facets = vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]];
        let c = Complex::from_labeled_vertices(2, verts, facets);
        assert_eq!(c.facet_count(), 4);
        assert!(c.is_chromatic());
        assert_eq!(c.dim(), 1);
        assert_eq!(c.vertex(VertexId::from_index(1)).label, 1);
    }

    #[test]
    #[should_panic(expected = "two vertices of color")]
    fn monochrome_facet_rejected() {
        let verts = vec![(ProcessId::new(0), 0), (ProcessId::new(0), 1)];
        let _ = Complex::from_labeled_vertices(1, verts, vec![vec![0, 1]]);
    }

    #[test]
    fn independently_built_subdivisions_compare_equal() {
        // Equality is derived from the interned tables, so two independent
        // builds of `Chr s` (fresh arenas, fresh Arcs) are `==`.
        let a = Complex::standard(3).chromatic_subdivision();
        let b = Complex::standard(3).chromatic_subdivision();
        assert_eq!(a, b);
        // And it is structural, not pointer-based: a proper sub-complex of
        // the same structure differs.
        let sub = a.sub_complex(vec![a.facets()[0].clone()]);
        assert_ne!(a, sub);
        assert_ne!(a, Complex::standard(3));
    }

    #[test]
    fn same_complex_detects_equality_and_difference() {
        let a = Complex::standard(3);
        let b = Complex::standard(3);
        assert!(a.same_complex(&b));
        let facet = a.facets()[0].clone();
        let edge = Simplex::from_vertices(facet.vertices()[..2].iter().copied());
        let sub = a.sub_complex(vec![edge]);
        assert!(!sub.same_complex(&b));
    }

    #[test]
    fn star_collects_cofaces() {
        let s = Complex::standard(3);
        let v0 = VertexId::from_index(0);
        // St({v0}, s): all simplices containing v0.
        let star = s.star(|sx| sx.len() == 1 && sx.contains(v0));
        assert_eq!(star.len(), 4, "v0, two edges, one triangle");
        for sx in &star {
            assert!(sx.contains(v0));
        }
    }

    #[test]
    fn simplex_set_operations() {
        let mut set = SimplexSet::new();
        assert!(set.is_empty());
        let s = Complex::standard(2);
        let facet = s.facets()[0].clone();
        assert!(set.insert(facet.clone()));
        assert!(!set.insert(facet.clone()), "duplicate insert is a no-op");
        assert!(set.contains(&facet));
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().count(), 1);
        let collected: SimplexSet = facet.non_empty_faces().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn restrict_base_carrier_on_labeled_base() {
        // A pseudosphere-like base with two vertices per color: restrict
        // to one input facet.
        let verts = vec![
            (ProcessId::new(0), 0),
            (ProcessId::new(0), 1),
            (ProcessId::new(1), 0),
            (ProcessId::new(1), 1),
        ];
        let base = Complex::from_labeled_vertices(
            2,
            verts,
            vec![vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]],
        );
        let chr = base.chromatic_subdivision();
        let target = base.facets()[0].clone();
        let restricted = chr.restrict_base_carrier(&target);
        assert!(!restricted.is_void());
        for f in restricted.facets() {
            assert!(chr.carrier_in_base(f).is_face_of(&target));
        }
        // The restriction is exactly Chr of one edge: 3 facets.
        assert_eq!(restricted.facet_count(), 3);
    }

    #[test]
    fn used_vertices_of_subcomplex() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let one_facet = chr.sub_complex(vec![chr.facets()[0].clone()]);
        assert_eq!(one_facet.used_vertices().len(), 3);
        assert_eq!(
            one_facet.num_vertices(),
            chr.num_vertices(),
            "table is shared"
        );
    }

    #[test]
    fn skeleton_zero_is_vertices() {
        let s = Complex::standard(3);
        let skel0 = s.skeleton(0);
        assert_eq!(skel0.facet_count(), 3);
        assert_eq!(skel0.dim(), 0);
    }

    #[test]
    fn f_vector_of_void_complex_is_empty() {
        let s = Complex::standard(2);
        let void = s.sub_complex(Vec::<Simplex>::new());
        assert!(void.f_vector().is_empty());
        assert_eq!(void.dim(), -1);
        assert!(void.is_void());
    }

    #[test]
    fn simplex_signatures_key_on_color_and_base_carrier() {
        let chr = Complex::standard(3).chromatic_subdivision();
        // The central facet (every vertex carried by the whole base facet)
        // has a signature distinct from any corner facet.
        let sigs: Vec<_> = chr
            .facets()
            .iter()
            .map(|f| chr.simplex_signature(f))
            .collect();
        assert_eq!(sigs.len(), 13);
        for (f, sig) in chr.facets().iter().zip(&sigs) {
            assert_eq!(sig.len(), f.len());
            for (&v, (color, base)) in f.vertices().iter().zip(sig) {
                assert_eq!(chr.color(v), *color);
                assert_eq!(&chr.vertex(v).base_carrier, base);
            }
        }
        // A second subdivision repeats signatures: strictly fewer unique
        // signatures than facets (the memoization win).
        let chr2 = chr.chromatic_subdivision();
        let mut unique: BTreeSet<Vec<(ProcessId, Simplex)>> = BTreeSet::new();
        for f in chr2.facets() {
            unique.insert(chr2.simplex_signature(f));
        }
        assert!(unique.len() < chr2.facet_count());
    }

    #[test]
    fn base_carrier_of_base_vertex_is_itself() {
        let s = Complex::standard(3);
        for i in 0..3 {
            let v = VertexId::from_index(i);
            assert_eq!(s.vertex(v).base_carrier, Simplex::vertex(v));
            assert_eq!(
                s.base_colors_of_vertex(v),
                ColorSet::singleton(ProcessId::new(i))
            );
        }
    }
}
