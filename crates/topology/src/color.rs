//! Process identifiers ("colors") and sets of processes.
//!
//! In the chromatic-complex formalism of Herlihy–Shavit, each vertex of a
//! complex carries a *color* identifying a process. We represent colors as
//! small integer indices and sets of colors as 64-bit bitmasks, which makes
//! the subset-lattice computations of the paper (agreement functions,
//! adversary restrictions, carriers) cheap and allocation-free.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of processes supported by [`ColorSet`]'s bitmask.
pub const MAX_PROCESSES: usize = 64;

/// The identifier of a process, i.e. a *color* in the chromatic-complex
/// sense. Processes of an `n`-process system are `ProcessId::new(0)` through
/// `ProcessId::new(n - 1)`.
///
/// # Examples
///
/// ```
/// use act_topology::ProcessId;
///
/// let p = ProcessId::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p3"); // papers index processes from 1
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_PROCESSES`.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_PROCESSES,
            "process index {index} exceeds the supported maximum of {MAX_PROCESSES}"
        );
        ProcessId(index as u32)
    }

    /// The zero-based index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper names processes p1..pn, one-based.
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<ProcessId> for usize {
    fn from(p: ProcessId) -> usize {
        p.index()
    }
}

/// A set of processes (a set of colors), represented as a bitmask.
///
/// `ColorSet` is the workhorse of the adversary and carrier computations:
/// live sets, participating sets, carriers in the standard simplex `s`, and
/// the `View1`/`View2` sets of the paper are all `ColorSet`s.
///
/// # Examples
///
/// ```
/// use act_topology::{ColorSet, ProcessId};
///
/// let all = ColorSet::full(3);
/// let q = ColorSet::from_indices([0, 2]);
/// assert!(q.is_subset_of(all));
/// assert_eq!(q.len(), 2);
/// assert_eq!(all.minus(q), ColorSet::singleton(ProcessId::new(1)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ColorSet(u64);

impl ColorSet {
    /// The empty set of processes.
    pub const EMPTY: ColorSet = ColorSet(0);

    /// Creates the set `{p0, ..., p(n-1)}` of all processes of an
    /// `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(
            n <= MAX_PROCESSES,
            "at most {MAX_PROCESSES} processes are supported"
        );
        if n == MAX_PROCESSES {
            ColorSet(u64::MAX)
        } else {
            ColorSet((1u64 << n) - 1)
        }
    }

    /// Creates a singleton set.
    #[inline]
    pub fn singleton(p: ProcessId) -> Self {
        ColorSet(1u64 << p.0)
    }

    /// Creates a set from zero-based process indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= MAX_PROCESSES`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut s = ColorSet::EMPTY;
        for i in indices {
            s = s.with(ProcessId::new(i));
        }
        s
    }

    /// Creates a set directly from its bitmask representation.
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        ColorSet(bits)
    }

    /// The bitmask representation of this set.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The number of processes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `p` belongs to the set.
    #[inline]
    pub fn contains(self, p: ProcessId) -> bool {
        self.0 & (1u64 << p.0) != 0
    }

    /// The set with `p` added.
    #[inline]
    #[must_use]
    pub fn with(self, p: ProcessId) -> Self {
        ColorSet(self.0 | (1u64 << p.0))
    }

    /// The set with `p` removed.
    #[inline]
    #[must_use]
    pub fn without(self, p: ProcessId) -> Self {
        ColorSet(self.0 & !(1u64 << p.0))
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: ColorSet) -> Self {
        ColorSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersection(self, other: ColorSet) -> Self {
        ColorSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn minus(self, other: ColorSet) -> Self {
        ColorSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: ColorSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊊ other`.
    #[inline]
    pub fn is_proper_subset_of(self, other: ColorSet) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Whether the two sets have a process in common.
    #[inline]
    pub fn intersects(self, other: ColorSet) -> bool {
        self.0 & other.0 != 0
    }

    /// The smallest process in the set, if any. Used by the paper's
    /// deterministic selections (e.g. `min_Q`).
    #[inline]
    pub fn min(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId(self.0.trailing_zeros()))
        }
    }

    /// Iterates over the processes of the set in increasing index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Iterates over all subsets of this set (including the empty set and
    /// the set itself), in an arbitrary but deterministic order.
    ///
    /// This is the standard "subset enumeration of a bitmask" trick and is
    /// used pervasively by the adversary computations.
    pub fn subsets(self) -> Subsets {
        Subsets {
            mask: self.0,
            current: 0,
            done: false,
        }
    }

    /// Iterates over the non-empty subsets of this set.
    pub fn non_empty_subsets(self) -> impl Iterator<Item = ColorSet> {
        self.subsets().filter(|s| !s.is_empty())
    }
}

impl fmt::Debug for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ColorSet{self}")
    }
}

impl fmt::Display for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for ColorSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ColorSet::EMPTY;
        for p in iter {
            s = s.with(p);
        }
        s
    }
}

impl Extend<ProcessId> for ColorSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            *self = self.with(p);
        }
    }
}

impl IntoIterator for ColorSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the processes of a [`ColorSet`], produced by
/// [`ColorSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let tz = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(ProcessId(tz))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

/// Iterator over all subsets of a [`ColorSet`], produced by
/// [`ColorSet::subsets`].
#[derive(Clone, Debug)]
pub struct Subsets {
    mask: u64,
    current: u64,
    done: bool,
}

impl Iterator for Subsets {
    type Item = ColorSet;

    fn next(&mut self) -> Option<ColorSet> {
        if self.done {
            return None;
        }
        let result = ColorSet(self.current);
        if self.current == self.mask {
            self.done = true;
        } else {
            // Standard sub-mask enumeration step.
            self.current = (self.current.wrapping_sub(self.mask)) & self.mask;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_set_has_expected_members() {
        let s = ColorSet::full(4);
        assert_eq!(s.len(), 4);
        for i in 0..4 {
            assert!(s.contains(ProcessId::new(i)));
        }
        assert!(!s.contains(ProcessId::new(4)));
    }

    #[test]
    fn empty_set_behaves() {
        assert!(ColorSet::EMPTY.is_empty());
        assert_eq!(ColorSet::EMPTY.len(), 0);
        assert_eq!(ColorSet::EMPTY.min(), None);
        assert_eq!(ColorSet::EMPTY.iter().count(), 0);
    }

    #[test]
    fn with_and_without_are_inverse() {
        let p = ProcessId::new(3);
        let s = ColorSet::from_indices([0, 1]);
        assert_eq!(s.with(p).without(p), s);
        assert_eq!(s.with(p).len(), 3);
    }

    #[test]
    fn subset_relations() {
        let a = ColorSet::from_indices([0, 1]);
        let b = ColorSet::from_indices([0, 1, 2]);
        assert!(a.is_subset_of(b));
        assert!(a.is_proper_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert!(a.is_subset_of(a));
        assert!(!a.is_proper_subset_of(a));
    }

    #[test]
    fn set_algebra() {
        let a = ColorSet::from_indices([0, 1, 2]);
        let b = ColorSet::from_indices([1, 2, 3]);
        assert_eq!(a.union(b), ColorSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersection(b), ColorSet::from_indices([1, 2]));
        assert_eq!(a.minus(b), ColorSet::from_indices([0]));
        assert!(a.intersects(b));
        assert!(!a.intersects(ColorSet::from_indices([3])));
    }

    #[test]
    fn min_returns_smallest() {
        let s = ColorSet::from_indices([5, 2, 7]);
        assert_eq!(s.min(), Some(ProcessId::new(2)));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = ColorSet::from_indices([4, 1, 6]);
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![1, 4, 6]);
    }

    #[test]
    fn subsets_enumerates_power_set() {
        let s = ColorSet::from_indices([0, 2, 3]);
        let subs: Vec<ColorSet> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        // All distinct, all subsets.
        for (i, a) in subs.iter().enumerate() {
            assert!(a.is_subset_of(s));
            for b in &subs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn subsets_of_empty_is_just_empty() {
        let subs: Vec<ColorSet> = ColorSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![ColorSet::EMPTY]);
    }

    #[test]
    fn display_formats_match_paper_conventions() {
        let s = ColorSet::from_indices([0, 2]);
        assert_eq!(s.to_string(), "{p1,p3}");
        assert_eq!(ProcessId::new(0).to_string(), "p1");
    }

    #[test]
    fn from_iterator_collects() {
        let s: ColorSet = [0usize, 3].into_iter().map(ProcessId::new).collect();
        assert_eq!(s, ColorSet::from_indices([0, 3]));
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn oversized_process_id_panics() {
        let _ = ProcessId::new(64);
    }
}
