//! Ordered set partitions and their correspondence with immediate-snapshot
//! runs.
//!
//! A facet of the standard chromatic subdivision `Chr σ` of a simplex `σ`
//! corresponds to an *ordered set partition* (OSP) of the colors of `σ`:
//! the sequence of concurrency classes of an immediate-snapshot (IS) run.
//! In the run `(B1, ..., Bm)`, the processes of block `Bj` all obtain the
//! snapshot `B1 ∪ ... ∪ Bj` (cf. Figure 3 of the paper).
//!
//! The number of OSPs of a `k`-element set is the `k`-th Fubini (ordered
//! Bell) number: 1, 1, 3, 13, 75, 541, 4683, ... — exactly the facet count
//! of `Chr` of a `(k-1)`-simplex.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::color::{ColorSet, ProcessId};

/// An ordered set partition of a set of processes: a sequence of disjoint,
/// non-empty blocks whose union is the ground set.
///
/// Interpreted as an immediate-snapshot schedule, block `i` is the `i`-th
/// concurrency class; every process in block `i` sees exactly the union of
/// blocks `1..=i`.
///
/// # Examples
///
/// ```
/// use act_topology::{ColorSet, Osp};
///
/// // The ordered run {p2}, {p1}, {p3} from Figure 3a of the paper.
/// let run = Osp::new(vec![
///     ColorSet::from_indices([1]),
///     ColorSet::from_indices([0]),
///     ColorSet::from_indices([2]),
/// ]).unwrap();
/// assert_eq!(run.view_of(act_topology::ProcessId::new(0)),
///            Some(ColorSet::from_indices([0, 1])));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Osp {
    blocks: Vec<ColorSet>,
}

/// Error returned by [`Osp::new`] when the proposed blocks do not form an
/// ordered set partition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OspError {
    /// A block was empty.
    EmptyBlock,
    /// Two blocks shared a process.
    OverlappingBlocks,
}

impl fmt::Display for OspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OspError::EmptyBlock => write!(f, "ordered set partition contains an empty block"),
            OspError::OverlappingBlocks => {
                write!(f, "ordered set partition blocks are not disjoint")
            }
        }
    }
}

impl std::error::Error for OspError {}

impl Osp {
    /// Creates an ordered set partition from its blocks.
    ///
    /// # Errors
    ///
    /// Returns an error if a block is empty or two blocks intersect.
    pub fn new(blocks: Vec<ColorSet>) -> Result<Self, OspError> {
        let mut seen = ColorSet::EMPTY;
        for b in &blocks {
            if b.is_empty() {
                return Err(OspError::EmptyBlock);
            }
            if seen.intersects(*b) {
                return Err(OspError::OverlappingBlocks);
            }
            seen = seen.union(*b);
        }
        Ok(Osp { blocks })
    }

    /// The single-block ("synchronous") partition of `ground`, or the empty
    /// partition if `ground` is empty.
    pub fn synchronous(ground: ColorSet) -> Self {
        if ground.is_empty() {
            Osp { blocks: Vec::new() }
        } else {
            Osp {
                blocks: vec![ground],
            }
        }
    }

    /// The fully sequential partition running the processes of `ground` one
    /// at a time, in increasing index order.
    pub fn sequential(ground: ColorSet) -> Self {
        Osp {
            blocks: ground.iter().map(ColorSet::singleton).collect(),
        }
    }

    /// The blocks of the partition, in schedule order.
    pub fn blocks(&self) -> &[ColorSet] {
        &self.blocks
    }

    /// The number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The ground set (union of all blocks).
    pub fn ground(&self) -> ColorSet {
        self.blocks.iter().fold(ColorSet::EMPTY, |a, b| a.union(*b))
    }

    /// The immediate-snapshot view of process `p` in this run: the union of
    /// all blocks up to and including `p`'s own. Returns `None` if `p` does
    /// not appear in the partition.
    pub fn view_of(&self, p: ProcessId) -> Option<ColorSet> {
        let mut acc = ColorSet::EMPTY;
        for b in &self.blocks {
            acc = acc.union(*b);
            if b.contains(p) {
                return Some(acc);
            }
        }
        None
    }

    /// All `(process, view)` pairs of the run, grouped by block.
    pub fn views(&self) -> Vec<(ProcessId, ColorSet)> {
        let mut out = Vec::with_capacity(self.ground().len());
        let mut acc = ColorSet::EMPTY;
        for b in &self.blocks {
            acc = acc.union(*b);
            for p in b.iter() {
                out.push((p, acc));
            }
        }
        out
    }
}

impl fmt::Debug for Osp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Osp({self})")
    }
}

impl fmt::Display for Osp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// Enumerates every ordered set partition of `ground`, in a deterministic
/// order. The empty ground set yields exactly one empty partition.
///
/// # Examples
///
/// ```
/// use act_topology::{ColorSet, ordered_set_partitions, fubini};
///
/// let all = ordered_set_partitions(ColorSet::full(3));
/// assert_eq!(all.len(), 13); // Fubini(3): the 13 facets of Chr s, n = 3
/// assert_eq!(all.len() as u64, fubini(3));
/// ```
pub fn ordered_set_partitions(ground: ColorSet) -> Vec<Osp> {
    osp_table(ground).as_ref().clone()
}

/// The memoized table of ordered set partitions of `ground`, shared
/// process-wide: every subdivision round and every adversary of a census
/// re-uses one enumeration per color set instead of recomputing it.
///
/// The table is behind an `Arc`, so holding it is cheap; use
/// [`ordered_set_partitions`] when an owned `Vec` is needed.
pub fn osp_table(ground: ColorSet) -> Arc<Vec<Osp>> {
    static OSP_TABLE: OnceLock<Mutex<HashMap<ColorSet, Arc<Vec<Osp>>>>> = OnceLock::new();
    let cache = OSP_TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let lock = |m: &'static Mutex<HashMap<ColorSet, Arc<Vec<Osp>>>>| {
        m.lock().unwrap_or_else(|e| e.into_inner())
    };
    if let Some(hit) = lock(cache).get(&ground) {
        return Arc::clone(hit);
    }
    // Enumerate outside the lock so concurrent misses on other color sets
    // are not serialized; the first finisher wins on a racing key.
    let computed = Arc::new(enumerate(ground));
    let mut guard = lock(cache);
    Arc::clone(guard.entry(ground).or_insert(computed))
}

fn enumerate(ground: ColorSet) -> Vec<Osp> {
    let mut out = Vec::new();
    let mut blocks = Vec::new();
    recurse(ground, &mut blocks, &mut out);
    out
}

fn recurse(remaining: ColorSet, blocks: &mut Vec<ColorSet>, out: &mut Vec<Osp>) {
    if remaining.is_empty() {
        out.push(Osp {
            blocks: blocks.clone(),
        });
        return;
    }
    // Choose every non-empty subset of `remaining` as the next block.
    for first in remaining.non_empty_subsets() {
        blocks.push(first);
        recurse(remaining.minus(first), blocks, out);
        blocks.pop();
    }
}

/// The `k`-th Fubini (ordered Bell) number: the number of ordered set
/// partitions of a `k`-element set, i.e. the facet count of `Chr` of a
/// `(k-1)`-simplex.
///
/// # Panics
///
/// Panics on overflow (`k > 20` or so); callers never get near that.
pub fn fubini(k: usize) -> u64 {
    // a(n) = sum_{j=1..n} C(n, j) * a(n - j), a(0) = 1.
    let mut a = vec![1u64; k + 1];
    for n in 1..=k {
        let mut total: u64 = 0;
        let mut binom: u64 = 1;
        for j in 1..=n {
            binom = binom * (n - j + 1) as u64 / j as u64;
            total = total
                .checked_add(binom.checked_mul(a[n - j]).expect("fubini overflow"))
                .expect("fubini overflow");
        }
        a[n] = total;
    }
    a[k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fubini_matches_known_values() {
        let expected = [1u64, 1, 3, 13, 75, 541, 4683, 47293];
        for (k, &v) in expected.iter().enumerate() {
            assert_eq!(fubini(k), v, "fubini({k})");
        }
    }

    #[test]
    fn enumeration_count_matches_fubini() {
        for n in 0..=5 {
            let ground = ColorSet::full(n);
            assert_eq!(ordered_set_partitions(ground).len() as u64, fubini(n));
        }
    }

    #[test]
    fn enumeration_is_duplicate_free_and_valid() {
        let ground = ColorSet::full(4);
        let all = ordered_set_partitions(ground);
        for osp in &all {
            assert_eq!(osp.ground(), ground);
            // Blocks disjoint and non-empty is enforced by construction;
            // re-validate through the public constructor.
            assert!(Osp::new(osp.blocks().to_vec()).is_ok());
        }
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn osp_table_is_memoized_and_consistent() {
        let g = ColorSet::full(4);
        let a = osp_table(g);
        let b = osp_table(g);
        assert!(Arc::ptr_eq(&a, &b), "second lookup hits the cache");
        assert_eq!(*a, ordered_set_partitions(g));
    }

    #[test]
    fn views_satisfy_is_properties() {
        // Self-inclusion, containment, immediacy (Section 2 of the paper).
        for osp in ordered_set_partitions(ColorSet::full(4)) {
            let views = osp.views();
            for &(p, v) in &views {
                assert!(v.contains(p), "self-inclusion");
            }
            for &(_, v1) in &views {
                for &(_, v2) in &views {
                    assert!(
                        v1.is_subset_of(v2) || v2.is_subset_of(v1),
                        "containment violated in {osp}"
                    );
                }
            }
            for &(p1, v1) in &views {
                for &(_, v2) in &views {
                    if v2.contains(p1) {
                        assert!(v1.is_subset_of(v2), "immediacy violated in {osp}");
                    }
                }
            }
        }
    }

    #[test]
    fn figure_3a_ordered_run_views() {
        // Figure 3a: run {p2}, {p1}, {p3}.
        let run = Osp::new(vec![
            ColorSet::from_indices([1]),
            ColorSet::from_indices([0]),
            ColorSet::from_indices([2]),
        ])
        .unwrap();
        assert_eq!(
            run.view_of(ProcessId::new(1)),
            Some(ColorSet::from_indices([1]))
        );
        assert_eq!(
            run.view_of(ProcessId::new(0)),
            Some(ColorSet::from_indices([0, 1]))
        );
        assert_eq!(
            run.view_of(ProcessId::new(2)),
            Some(ColorSet::from_indices([0, 1, 2]))
        );
    }

    #[test]
    fn figure_3b_synchronous_run_views() {
        // Figure 3b: run {p1, p2, p3}: everyone sees everyone.
        let run = Osp::synchronous(ColorSet::full(3));
        for i in 0..3 {
            assert_eq!(run.view_of(ProcessId::new(i)), Some(ColorSet::full(3)));
        }
    }

    #[test]
    fn invalid_partitions_rejected() {
        assert_eq!(
            Osp::new(vec![ColorSet::EMPTY]).unwrap_err(),
            OspError::EmptyBlock
        );
        assert_eq!(
            Osp::new(vec![
                ColorSet::from_indices([0]),
                ColorSet::from_indices([0, 1])
            ])
            .unwrap_err(),
            OspError::OverlappingBlocks
        );
    }

    #[test]
    fn view_of_absent_process_is_none() {
        let run = Osp::sequential(ColorSet::from_indices([0, 1]));
        assert_eq!(run.view_of(ProcessId::new(5)), None);
    }

    #[test]
    fn sequential_and_synchronous_shapes() {
        let g = ColorSet::full(3);
        assert_eq!(Osp::sequential(g).num_blocks(), 3);
        assert_eq!(Osp::synchronous(g).num_blocks(), 1);
        assert_eq!(Osp::synchronous(ColorSet::EMPTY).num_blocks(), 0);
    }
}
