//! The standard chromatic subdivision `Chr` and recipe-driven subdivisions.
//!
//! A facet of `Chr σ` corresponds to an ordered set partition ([`Osp`]) of
//! the colors of `σ` (an immediate-snapshot run, Section 2 of the paper);
//! the vertex of color `c` is `(c, face of σ spanned by c's view)`.
//! Subdividing every facet of a complex and gluing along shared faces
//! (vertices are deduplicated by their canonical key `(color, carrier)`)
//! yields `Chr K`. Iterating gives `Chr^m K`, which captures the `m`-round
//! iterated-immediate-snapshot model.
//!
//! A *recipe* is a fixed-length sequence of OSPs describing a facet of
//! `Chr^ℓ σ` relative to `σ`; recipe-driven subdivision
//! ([`Complex::subdivide_patterned`]) generates only the facets whose recipe
//! is allowed, which is exactly the iteration operation on affine tasks
//! (`L^m` of the paper).

use std::collections::HashMap;
use std::sync::Arc;

use crate::color::{ColorSet, ProcessId};
use crate::complex::{Complex, Structure};
use crate::intern::{FacetAccumulator, InternArena};
use crate::osp::{osp_table, Osp};
use crate::parallel::{parallel_map_ranges, subdivision_threads};
use crate::simplex::{Simplex, VertexId};
use crate::symmetry::{
    symmetry_group, symmetry_group_inferred, ChainAction, FacetOrbit, LabelMatching, SymmetryGroup,
};

/// A facet of `Chr^ℓ σ` described relative to `σ`: one ordered set
/// partition of `χ(σ)` per subdivision round.
pub type Recipe = Vec<Osp>;

/// Enumerates all depth-`ℓ` recipes over the color set `ground`:
/// all sequences of `ℓ` ordered set partitions of `ground`.
pub fn all_recipes(ground: ColorSet, depth: usize) -> Vec<Recipe> {
    let osps = osp_table(ground);
    let mut out: Vec<Recipe> = vec![Vec::new()];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(out.len() * osps.len());
        for prefix in &out {
            for osp in osps.iter() {
                let mut r = prefix.clone();
                r.push(osp.clone());
                next.push(r);
            }
        }
        out = next;
    }
    out
}

/// One subdivision round under construction: an interning arena for the
/// round's vertices plus its (order-preserving, deduplicated) facet list.
struct LevelBuilder {
    arena: InternArena,
    facets: FacetAccumulator,
}

impl LevelBuilder {
    fn new() -> Self {
        LevelBuilder {
            arena: InternArena::new(),
            facets: FacetAccumulator::new(),
        }
    }

    fn new_chain(depth: usize) -> Vec<LevelBuilder> {
        (0..depth).map(|_| LevelBuilder::new()).collect()
    }
}

/// Expands one input facet into the level builders: for every allowed
/// recipe, walks the rounds interning the generated vertices and facets.
///
/// Round-0 carriers reference the *input* level's (global) vertex ids;
/// round `r ≥ 1` carriers reference the ids issued by `builders[r - 1]`.
/// Base-carrier data always references the base (level-0) complex, so it is
/// chunk-independent.
fn expand_facet(
    input: &Complex,
    facet: &Simplex,
    recipe_cache: &HashMap<ColorSet, Arc<Vec<Recipe>>>,
    builders: &mut [LevelBuilder],
) {
    let colors = input.colors(facet);
    let recipe_set = &recipe_cache[&colors];
    for recipe in recipe_set.iter() {
        // `current_ids` is the simplex being subdivided at each round, as
        // (color, vertex id, base_carrier, base_colors) per vertex.
        let mut current_ids: Vec<(ProcessId, VertexId, Simplex, ColorSet)> = facet
            .vertices()
            .iter()
            .map(|&v| {
                let d = input.vertex(v);
                (d.color, v, d.base_carrier.clone(), d.base_colors)
            })
            .collect();
        for (round, osp) in recipe.iter().enumerate() {
            assert_eq!(
                osp.ground(),
                colors,
                "recipe OSP ground set must equal the facet's colors"
            );
            let builder = &mut builders[round];
            let mut next_ids = Vec::with_capacity(current_ids.len());
            for &(c, _, _, _) in &current_ids {
                let view = osp.view_of(c).expect("osp covers every color of the facet");
                // Carrier: the face of `current` spanned by `view`.
                let carrier = Simplex::from_vertices(
                    current_ids
                        .iter()
                        .filter(|&&(cc, _, _, _)| view.contains(cc))
                        .map(|&(_, v, _, _)| v),
                );
                let mut base_carrier = Simplex::empty();
                let mut base_colors = ColorSet::EMPTY;
                for &(cc, _, ref bc, bcol) in &current_ids {
                    if view.contains(cc) {
                        base_carrier = base_carrier.union(bc);
                        base_colors = base_colors.union(bcol);
                    }
                }
                let id = builder
                    .arena
                    .intern(c, carrier, base_carrier.clone(), base_colors);
                next_ids.push((c, id, base_carrier, base_colors));
            }
            builder.facets.push(Simplex::from_vertices(
                next_ids.iter().map(|&(_, v, _, _)| v),
            ));
            current_ids = next_ids;
        }
    }
}

/// Rewrites a simplex's vertex ids through a local→global id map.
fn remap(simplex: &Simplex, map: &[VertexId]) -> Simplex {
    Simplex::from_vertices(simplex.vertices().iter().map(|&v| map[v.index()]))
}

/// The push-order trace of one facet's expansion: per recipe, per round,
/// the `(color, issued id)` pairs in intern order. Recording a
/// representative's expansion lets orbit members be *transported* — their
/// vertices derived by id remapping instead of carrier recomputation —
/// while reproducing the exact intern sequence of a direct expansion.
struct RecordedExpansion {
    rounds: Vec<Vec<Vec<(ProcessId, VertexId)>>>,
}

/// [`expand_facet`] with push-order recording (same intern sequence).
fn expand_facet_recorded(
    input: &Complex,
    facet: &Simplex,
    recipe_set: &[Recipe],
    builders: &mut [LevelBuilder],
) -> RecordedExpansion {
    let colors = input.colors(facet);
    let mut recorded = Vec::with_capacity(recipe_set.len());
    for recipe in recipe_set {
        let mut current_ids: Vec<(ProcessId, VertexId, Simplex, ColorSet)> = facet
            .vertices()
            .iter()
            .map(|&v| {
                let d = input.vertex(v);
                (d.color, v, d.base_carrier.clone(), d.base_colors)
            })
            .collect();
        let mut recipe_rounds = Vec::with_capacity(recipe.len());
        for (round, osp) in recipe.iter().enumerate() {
            assert_eq!(osp.ground(), colors, "recipe OSP ground set mismatch");
            let builder = &mut builders[round];
            let mut next_ids = Vec::with_capacity(current_ids.len());
            for &(c, _, _, _) in &current_ids {
                let view = osp.view_of(c).expect("osp covers every color of the facet");
                let carrier = Simplex::from_vertices(
                    current_ids
                        .iter()
                        .filter(|&&(cc, _, _, _)| view.contains(cc))
                        .map(|&(_, v, _, _)| v),
                );
                let mut base_carrier = Simplex::empty();
                let mut base_colors = ColorSet::EMPTY;
                for &(cc, _, ref bc, bcol) in &current_ids {
                    if view.contains(cc) {
                        base_carrier = base_carrier.union(bc);
                        base_colors = base_colors.union(bcol);
                    }
                }
                let id = builder
                    .arena
                    .intern(c, carrier, base_carrier.clone(), base_colors);
                next_ids.push((c, id, base_carrier, base_colors));
            }
            builder.facets.push(Simplex::from_vertices(
                next_ids.iter().map(|&(_, v, _, _)| v),
            ));
            recipe_rounds.push(next_ids.iter().map(|&(c, v, _, _)| (c, v)).collect());
            current_ids = next_ids;
        }
        recorded.push(recipe_rounds);
    }
    RecordedExpansion { rounds: recorded }
}

/// Resolves each of a member's recipes to the representative's recipe
/// index under the inverse permutation, or `None` when some recipe has no
/// counterpart (a non-equivariant recipe function). The result depends
/// only on the (orbit, group element) pair, so callers cache it across
/// the orbit's members instead of re-permuting and re-hashing every
/// recipe per member.
fn resolve_rep_indices(
    facet_recipes: &[Recipe],
    rep_recipe_index: &HashMap<Recipe, usize>,
    action: &ChainAction,
) -> Option<Vec<usize>> {
    let inv = action.perm().inverse();
    facet_recipes
        .iter()
        .map(|recipe| rep_recipe_index.get(&inv.apply_recipe(recipe)).copied())
        .collect()
}

/// Expands an orbit member by transporting its representative's recorded
/// expansion through a chain action: every vertex is derived by remapping
/// the representative's recorded ids (input-level carriers through the
/// action, deeper carriers through the image tables) instead of
/// recomputing views and carrier unions.
///
/// Expansion is color-equivariant, so the interned keys — and therefore
/// ids, tables, and facet order — are exactly those of a direct expansion
/// of the member. `rep_indices` comes from [`resolve_rep_indices`]; a
/// member whose recipes fail to resolve is expanded directly by the
/// caller instead.
///
/// `images[round][rep_id]` caches the image of an issued id under this
/// action's element ([`VertexId::NONE`] = not yet computed). The intern
/// arena is content-addressed, so the image of a recorded id is a pure
/// function of `(recorded vertex data, element)` and can be reused across
/// recipes and members: repeat occurrences — the large majority, since
/// expansions share most vertices between recipes — skip the carrier
/// remapping, the allocations, and the intern probe entirely.
fn transport_facet(
    input: &Complex,
    facet: &Simplex,
    rep_indices: &[usize],
    rep_record: &RecordedExpansion,
    action: &ChainAction,
    images: &mut [Vec<VertexId>],
    builders: &mut [LevelBuilder],
) {
    if rep_indices.is_empty() {
        return;
    }
    let inv = action.perm().inverse();
    let input_map = action.level_map(input.level());
    let base_map = action.level_map(0);
    let perm = action.perm();
    // The member's per-round color order: colors of its sorted vertices
    // (constant across rounds, exactly as in a direct expansion). The
    // representative's round order is equally constant, so the position of
    // each member color's preimage is resolved once, not per vertex.
    let facet_colors: Vec<ProcessId> = facet.vertices().iter().map(|&v| input.color(v)).collect();
    let rep_order = &rep_record.rounds[rep_indices[0]][0];
    let rep_pos: Vec<usize> = facet_colors
        .iter()
        .map(|&c| {
            let rc = inv.apply(c);
            rep_order
                .iter()
                .position(|&(col, _)| col == rc)
                .expect("representative round covers every color")
        })
        .collect();
    let mut issued: Vec<VertexId> = Vec::with_capacity(facet_colors.len());
    for &rep_idx in rep_indices {
        let recipe_rounds = &rep_record.rounds[rep_idx];
        for (round, rep_round) in recipe_rounds.iter().enumerate() {
            let builder = &mut builders[round];
            let (prev_images, cur_images) = images.split_at_mut(round);
            let cur_images = &mut cur_images[0];
            issued.clear();
            for (i, &c) in facet_colors.iter().enumerate() {
                let rep_id = rep_round[rep_pos[i]].1;
                let slot = rep_id.index();
                if cur_images.len() <= slot {
                    cur_images.resize(slot + 1, VertexId::NONE);
                }
                let id = if cur_images[slot] != VertexId::NONE {
                    cur_images[slot]
                } else {
                    // Borrow the recorded vertex only long enough to remap
                    // its data — cloning it would cost two simplex
                    // allocations per vertex on the transport hot path.
                    let (carrier, base_carrier, base_colors) = {
                        let d = builder
                            .arena
                            .vertex(rep_id)
                            .expect("recorded id is interned");
                        let carrier = if round == 0 {
                            remap(&d.carrier, input_map)
                        } else {
                            // Carrier ids come from the previous round of
                            // this recipe, whose images are all recorded.
                            let prev = &prev_images[round - 1];
                            Simplex::from_vertices(d.carrier.vertices().iter().map(|&v| {
                                let img = prev[v.index()];
                                debug_assert!(img != VertexId::NONE);
                                img
                            }))
                        };
                        (
                            carrier,
                            remap(&d.base_carrier, base_map),
                            perm.apply_colors(d.base_colors),
                        )
                    };
                    let id = builder.arena.intern(c, carrier, base_carrier, base_colors);
                    cur_images[slot] = id;
                    id
                };
                issued.push(id);
            }
            builder
                .facets
                .push(Simplex::from_vertices(issued.iter().copied()));
        }
    }
}

/// Merges per-chunk builder chains into one global chain, replaying every
/// chunk's intern and facet sequences *in chunk order*.
///
/// Chunks are contiguous ranges of the input facet list, so replaying them
/// in order reproduces the serial first-occurrence order of every vertex
/// key and facet exactly: the merged tables are byte-identical to a serial
/// build. Cross-chunk duplicates are safe because the base data of a vertex
/// is a function of its canonical key `(color, carrier)`.
fn merge_builder_chains(chunks: Vec<Vec<LevelBuilder>>, depth: usize) -> Vec<LevelBuilder> {
    let mut global = LevelBuilder::new_chain(depth);
    for chain in chunks {
        // `prev_map`: local vertex index at the previous round -> global id.
        let mut prev_map: Vec<VertexId> = Vec::new();
        for (round, local) in chain.into_iter().enumerate() {
            let g = &mut global[round];
            let mut map = Vec::with_capacity(local.arena.len());
            for d in local.arena.vertex_table() {
                // Round-0 carriers already hold input-level (global) ids;
                // deeper carriers hold the previous round's local ids.
                let carrier = if round == 0 {
                    d.carrier.clone()
                } else {
                    remap(&d.carrier, &prev_map)
                };
                map.push(
                    g.arena
                        .intern(d.color, carrier, d.base_carrier.clone(), d.base_colors),
                );
            }
            for f in local.facets.into_facets() {
                g.facets.push(remap(&f, &map));
            }
            prev_map = map;
        }
    }
    global
}

/// Assembles a builder chain into the final complex, threading each level's
/// parent pointer from `input`.
fn assemble_chain(input: &Complex, builders: Vec<LevelBuilder>, depth: usize) -> Complex {
    let mut parent = input.clone();
    let mut result = None;
    for (i, b) in builders.into_iter().enumerate() {
        let (vertices, key_index) = b.arena.into_parts();
        let structure = Arc::new(Structure {
            n: input.num_processes(),
            level: parent.level() + 1,
            parent: Some(parent.clone()),
            vertices,
            key_index,
        });
        let complex = Complex::assemble(structure, b.facets.into_facets());
        parent = complex.clone();
        if i + 1 == depth {
            result = Some(complex);
        }
    }
    result.expect("depth >= 1")
}

impl Complex {
    /// The standard chromatic subdivision `Chr K` of this complex.
    ///
    /// Every facet is replaced by its chromatic subdivision; shared faces
    /// are glued (vertices deduplicated by `(color, carrier)`), so the
    /// result is a genuine subdivision of `K`.
    ///
    /// # Examples
    ///
    /// ```
    /// use act_topology::Complex;
    ///
    /// let chr2 = Complex::standard(3).chromatic_subdivision().chromatic_subdivision();
    /// assert_eq!(chr2.facet_count(), 13 * 13); // Chr² s for n = 3
    /// assert_eq!(chr2.level(), 2);
    /// ```
    pub fn chromatic_subdivision(&self) -> Complex {
        self.subdivide_patterned(1, |colors| all_recipes(colors, 1))
    }

    /// [`Complex::chromatic_subdivision`] with an explicit worker-thread
    /// count (the default uses [`crate::subdivision_threads`]). The result
    /// is identical for every thread count.
    pub fn chromatic_subdivision_threaded(&self, threads: usize) -> Complex {
        self.subdivide_patterned_threaded(1, |colors| all_recipes(colors, 1), threads)
    }

    /// The `m`-fold iterated standard chromatic subdivision `Chr^m K`.
    pub fn iterated_subdivision(&self, m: usize) -> Complex {
        self.iterated_subdivision_threaded(m, subdivision_threads())
    }

    /// [`Complex::iterated_subdivision`] with an explicit worker-thread
    /// count. The result is identical for every thread count.
    pub fn iterated_subdivision_threaded(&self, m: usize, threads: usize) -> Complex {
        let mut c = self.clone();
        for _ in 0..m {
            c = c.chromatic_subdivision_threaded(threads);
        }
        c
    }

    /// Recipe-driven subdivision: for every facet `σ` of this complex,
    /// generates the facets of `Chr^ℓ σ` whose recipe (relative to `σ`)
    /// appears in `recipes(χ(σ))`, then glues shared faces.
    ///
    /// With `recipes = all_recipes(·, 1)` this is `Chr`; with the recipe set
    /// of an affine task `L` it computes one iteration step of `L` applied
    /// to this complex.
    ///
    /// Returns a complex `ℓ` levels deeper. The intermediate levels contain
    /// exactly the simplices generated as carriers along the way.
    ///
    /// # Panics
    ///
    /// Panics if a recipe's ground set does not match the facet's colors or
    /// its length differs from `depth`.
    pub fn subdivide_patterned<F>(&self, depth: usize, recipes: F) -> Complex
    where
        F: Fn(ColorSet) -> Vec<Recipe>,
    {
        self.subdivide_patterned_threaded(depth, recipes, subdivision_threads())
    }

    /// [`Complex::subdivide_patterned`] with an explicit worker-thread
    /// count.
    ///
    /// Input facets are fanned out over contiguous chunks, each chunk
    /// builds private interning arenas, and the per-chunk arenas are merged
    /// in chunk order — reproducing the serial first-occurrence order of
    /// every vertex and facet, so the result is byte-identical for every
    /// thread count (`threads = 1` is the serial build).
    pub fn subdivide_patterned_threaded<F>(
        &self,
        depth: usize,
        recipes: F,
        threads: usize,
    ) -> Complex
    where
        F: Fn(ColorSet) -> Vec<Recipe>,
    {
        assert!(depth >= 1, "subdivision depth must be at least 1");
        let span = act_obs::span("subdivide.patterned");

        // Recipe sets are computed once per distinct facet color set, up
        // front, so worker threads only read the shared cache (and the
        // closure needs no `Sync` bound).
        let mut recipe_cache: HashMap<ColorSet, Arc<Vec<Recipe>>> = HashMap::new();
        for facet in self.facets() {
            let colors = self.colors(facet);
            assert_eq!(
                colors.len(),
                facet.len(),
                "subdivide_patterned requires a chromatic complex"
            );
            recipe_cache.entry(colors).or_insert_with(|| {
                let set = recipes(colors);
                for recipe in &set {
                    assert_eq!(recipe.len(), depth, "recipe depth mismatch");
                }
                Arc::new(set)
            });
        }

        let facets = self.facets();
        let threads = threads.clamp(1, facets.len().max(1));
        let builders = if threads <= 1 {
            let mut chain = LevelBuilder::new_chain(depth);
            for facet in facets {
                expand_facet(self, facet, &recipe_cache, &mut chain);
            }
            chain
        } else {
            // Per-chunk telemetry is emitted from the worker threads
            // (sinks are `Sync`); the global `seq` field totally orders
            // the interleaved events.
            let chunk_chains = parallel_map_ranges(facets.len(), threads, |range| {
                let chunk_span = act_obs::span("subdivide.chunk");
                let chunk_start = range.start;
                let chunk_len = range.len();
                let mut chain = LevelBuilder::new_chain(depth);
                for facet in &facets[range] {
                    expand_facet(self, facet, &recipe_cache, &mut chain);
                }
                if act_obs::enabled() {
                    let interned: usize = chain.iter().map(|b| b.arena.len()).sum();
                    chunk_span
                        .finish()
                        .u64("chunk_start", chunk_start as u64)
                        .u64("facets_in", chunk_len as u64)
                        .u64("interned_vertices", interned as u64)
                        .emit();
                }
                chain
            });
            merge_builder_chains(chunk_chains, depth)
        };

        let result = assemble_chain(self, builders, depth);
        if act_obs::enabled() {
            span.finish()
                .u64("depth", depth as u64)
                .u64("threads", threads as u64)
                .u64("facets_in", facets.len() as u64)
                .u64("facets_out", result.facet_count() as u64)
                .u64("interned_vertices", result.num_vertices() as u64)
                .emit();
        }
        result
    }

    /// [`Complex::subdivide_patterned`] with symmetry-orbit sharing: one
    /// representative facet per color-symmetry orbit is expanded directly;
    /// every other orbit member is *transported* — derived from the
    /// representative's recorded expansion by applying the group element,
    /// skipping all view/carrier recomputation.
    ///
    /// The result is byte-identical to [`Complex::subdivide_patterned`]
    /// (same vertex tables, ids, and facet order): transport reproduces the
    /// exact intern sequence of a direct expansion. Facets whose recipes
    /// are not equivariant under the acting group element fall back to
    /// direct expansion, so the method is total. With a trivial symmetry
    /// group this delegates to the threaded direct build.
    ///
    /// Emits a `subdivision.orbit` span with the orbit census and the
    /// transported/direct split.
    pub fn subdivide_patterned_orbit_shared<F>(&self, depth: usize, recipes: F) -> Complex
    where
        F: Fn(ColorSet) -> Vec<Recipe>,
    {
        assert!(depth >= 1, "subdivision depth must be at least 1");
        let group = symmetry_group_inferred(self);
        if group.order() <= 1 {
            return self.subdivide_patterned_threaded(depth, recipes, subdivision_threads());
        }
        let span = act_obs::span("subdivision.orbit");

        let mut recipe_cache: HashMap<ColorSet, Arc<Vec<Recipe>>> = HashMap::new();
        for facet in self.facets() {
            let colors = self.colors(facet);
            assert_eq!(
                colors.len(),
                facet.len(),
                "subdivide_patterned requires a chromatic complex"
            );
            recipe_cache.entry(colors).or_insert_with(|| {
                let set = recipes(colors);
                for recipe in &set {
                    assert_eq!(recipe.len(), depth, "recipe depth mismatch");
                }
                Arc::new(set)
            });
        }

        let orbits = group.orbits_of_facets();
        let facets = self.facets();
        let mut assignment: Vec<(usize, usize)> = vec![(0, 0); facets.len()];
        for (oi, orbit) in orbits.iter().enumerate() {
            for &(fi, gi) in &orbit.members {
                assignment[fi] = (oi, gi);
            }
        }
        let mut records: Vec<Option<(RecordedExpansion, HashMap<Recipe, usize>)>> =
            (0..orbits.len()).map(|_| None).collect();
        // Recipe resolution depends only on the (orbit, group element)
        // pair, so it is cached across an orbit's members instead of
        // re-permuting and re-hashing every recipe per member.
        let mut resolved: HashMap<(usize, usize), Option<Vec<usize>>> = HashMap::new();
        // Per-element image tables (`images[gi][round][rep_id]`), shared
        // across every orbit: the intern arena is content-addressed, so an
        // issued id's image under a fixed group element never changes.
        let mut images: Vec<Vec<Vec<VertexId>>> = vec![vec![Vec::new(); depth]; group.order()];
        let mut builders = LevelBuilder::new_chain(depth);
        let mut transported = 0u64;
        let mut expanded = 0u64;
        for (fi, facet) in facets.iter().enumerate() {
            let (oi, gi) = assignment[fi];
            let recipe_set = &recipe_cache[&self.colors(facet)];
            if fi == orbits[oi].representative {
                let record = expand_facet_recorded(self, facet, recipe_set, &mut builders);
                let index: HashMap<Recipe, usize> = recipe_set
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (r.clone(), i))
                    .collect();
                records[oi] = Some((record, index));
                expanded += 1;
            } else {
                let (record, index) = records[oi]
                    .as_ref()
                    .expect("orbit representatives have the smallest facet index");
                let rep_indices = resolved
                    .entry((oi, gi))
                    .or_insert_with(|| resolve_rep_indices(recipe_set, index, group.element(gi)));
                match rep_indices {
                    Some(rep_indices) => {
                        transport_facet(
                            self,
                            facet,
                            rep_indices,
                            record,
                            group.element(gi),
                            &mut images[gi],
                            &mut builders,
                        );
                        transported += 1;
                    }
                    None => {
                        expand_facet(self, facet, &recipe_cache, &mut builders);
                        expanded += 1;
                    }
                }
            }
        }
        let result = assemble_chain(self, builders, depth);
        if act_obs::enabled() {
            span.finish()
                .u64("depth", depth as u64)
                .u64("orbits", orbits.len() as u64)
                .u64("group_order", group.order() as u64)
                .u64("facets_in", facets.len() as u64)
                .u64("facets_out", result.facet_count() as u64)
                .u64("transported", transported)
                .u64("expanded_direct", expanded)
                .emit();
        }
        result
    }

    /// The quotiented standard chromatic subdivision: computes the orbit
    /// census of this complex's facets under its color-symmetry group and
    /// expands only one representative per orbit.
    ///
    /// The returned [`QuotientedSubdivision`] holds the partial subdivision
    /// of the representatives (a genuine sub-complex of `Chr K`, with this
    /// complex as parent so carrier/star lookups against the full level
    /// work) together with the orbits; full materialization is opt-in via
    /// [`QuotientedSubdivision::expand`]. The full facet count is available
    /// without expansion as Σ orbit_size × representative-expansion size.
    pub fn chromatic_subdivision_quotiented(&self) -> QuotientedSubdivision {
        let span = act_obs::span("subdivision.orbit");
        let group = symmetry_group(self, LabelMatching::Blind);
        let orbits = group.orbits_of_facets();
        let mut recipe_cache: HashMap<ColorSet, Arc<Vec<Recipe>>> = HashMap::new();
        let mut builders = LevelBuilder::new_chain(1);
        let mut rep_ranges = Vec::with_capacity(orbits.len());
        for orbit in &orbits {
            let facet = &self.facets()[orbit.representative];
            let colors = self.colors(facet);
            assert_eq!(colors.len(), facet.len(), "requires a chromatic complex");
            let recipe_set = recipe_cache
                .entry(colors)
                .or_insert_with(|| Arc::new(all_recipes(colors, 1)));
            let start = builders[0].facets.len();
            let _ = expand_facet_recorded(self, facet, recipe_set, &mut builders);
            rep_ranges.push(start..builders[0].facets.len());
        }
        let representatives = assemble_chain(self, builders, 1);
        if act_obs::enabled() {
            span.finish()
                .u64("depth", 1)
                .u64("orbits", orbits.len() as u64)
                .u64("group_order", group.order() as u64)
                .u64("facets_in", self.facet_count() as u64)
                .u64("facets_out", representatives.facet_count() as u64)
                .u64("transported", 0)
                .u64("expanded_direct", orbits.len() as u64)
                .emit();
        }
        QuotientedSubdivision {
            input: self.clone(),
            group,
            orbits,
            representatives,
            rep_ranges,
        }
    }

    /// Resolves the simplex of this complex described by a recipe relative
    /// to a base facet: round `i` of `recipe` is the ordered set partition
    /// of some color set `C ⊆ χ(base_facet)` describing the `i`-th
    /// immediate snapshot.
    ///
    /// Returns `None` if some described vertex does not exist at the
    /// corresponding level (possible when this complex was built by a
    /// patterned subdivision that never generated it).
    ///
    /// # Panics
    ///
    /// Panics if `recipe`'s length differs from this complex's level, if
    /// the rounds use different ground sets, or if the ground set is not a
    /// subset of the base facet's colors.
    pub fn simplex_for_recipe(&self, base_facet: &Simplex, recipe: &[Osp]) -> Option<Simplex> {
        assert_eq!(
            recipe.len(),
            self.level(),
            "recipe length must equal the level"
        );
        // Collect the level chain: base, level 1, ..., self.
        let mut chain: Vec<Complex> = Vec::with_capacity(self.level() + 1);
        let mut c = self.clone();
        loop {
            chain.push(c.clone());
            match c.parent() {
                Some(p) => c = p.clone(),
                None => break,
            }
        }
        chain.reverse();
        let base = &chain[0];
        let ground = recipe
            .first()
            .map(|o| o.ground())
            .unwrap_or(ColorSet::EMPTY);
        assert!(
            ground.is_subset_of(base.colors(base_facet)),
            "recipe ground set must be contained in the base facet's colors"
        );
        // current: color -> vertex id at the current level.
        let mut current: Vec<(ProcessId, crate::simplex::VertexId)> = base_facet
            .vertices()
            .iter()
            .filter(|&&v| ground.contains(base.color(v)))
            .map(|&v| (base.color(v), v))
            .collect();
        for (round, osp) in recipe.iter().enumerate() {
            assert_eq!(
                osp.ground(),
                ground,
                "recipe rounds use inconsistent ground sets"
            );
            let level = &chain[round + 1];
            let mut next = Vec::with_capacity(current.len());
            for &(color, _) in &current {
                let view = osp.view_of(color).expect("ground covers every color");
                let carrier = Simplex::from_vertices(
                    current
                        .iter()
                        .filter(|(c2, _)| view.contains(*c2))
                        .map(|&(_, v)| v),
                );
                let v = level.find_vertex(color, &carrier)?;
                next.push((color, v));
            }
            current = next;
        }
        Some(Simplex::from_vertices(current.into_iter().map(|(_, v)| v)))
    }

    /// Recovers the recipe round of a facet of this (subdivision) complex:
    /// the ordered set partition of the facet's colors describing it
    /// relative to its carrier in the parent level.
    ///
    /// # Panics
    ///
    /// Panics if called on a level-0 complex or a non-facet simplex whose
    /// carriers do not nest properly.
    pub fn osp_of_facet(&self, facet: &Simplex) -> Osp {
        assert!(
            self.level() > 0,
            "level-0 complexes have no subdivision recipe"
        );
        // Group colors by carrier, ordered by carrier size (carriers of a
        // Chr facet are totally ordered by containment).
        let mut by_carrier: Vec<(usize, ColorSet)> = Vec::new();
        let mut groups: HashMap<Simplex, ColorSet> = HashMap::new();
        for &v in facet.vertices() {
            let d = self.vertex(v);
            groups
                .entry(d.carrier.clone())
                .and_modify(|cs| *cs = cs.with(d.color))
                .or_insert_with(|| ColorSet::singleton(d.color));
        }
        for (carrier, cs) in groups {
            by_carrier.push((carrier.len(), cs));
        }
        by_carrier.sort_by_key(|&(len, _)| len);
        Osp::new(by_carrier.into_iter().map(|(_, cs)| cs).collect())
            .expect("facet carriers induce a valid ordered set partition")
    }

    /// Recovers the full depth-`ℓ` recipe of a facet of `Chr^ℓ` relative to
    /// its carrier facet `ℓ` levels up: element `i` is the OSP of round
    /// `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds this complex's level.
    pub fn recipe_of_facet(&self, facet: &Simplex, depth: usize) -> Recipe {
        assert!(
            depth <= self.level(),
            "recipe depth exceeds subdivision level"
        );
        let mut rounds = Vec::with_capacity(depth);
        let mut complex = self.clone();
        let mut current = facet.clone();
        for _ in 0..depth {
            rounds.push(complex.osp_of_facet(&current));
            let parent = complex.parent().expect("level checked above").clone();
            current = complex.carrier_in_parent(&current);
            complex = parent;
        }
        rounds.reverse();
        rounds
    }
}

/// The result of [`Complex::chromatic_subdivision_quotiented`]: one
/// expanded representative per facet orbit, with the orbit census needed to
/// account for (or lazily regenerate) the rest of `Chr K`.
pub struct QuotientedSubdivision {
    input: Complex,
    group: SymmetryGroup,
    orbits: Vec<FacetOrbit>,
    representatives: Complex,
    rep_ranges: Vec<std::ops::Range<usize>>,
}

/// One orbit's view of the quotiented subdivision: the census entry plus
/// the representative's expansion facets (simplices of
/// [`QuotientedSubdivision::representatives`]).
pub struct OrbitExpansion<'a> {
    /// The orbit census entry (representative index, members, sizes).
    pub orbit: &'a FacetOrbit,
    /// The facets of the representative's chromatic subdivision.
    pub rep_facets: &'a [Simplex],
}

impl QuotientedSubdivision {
    /// The subdivided input complex.
    pub fn input(&self) -> &Complex {
        &self.input
    }

    /// The color-symmetry group the quotient was taken under.
    pub fn group(&self) -> &SymmetryGroup {
        &self.group
    }

    /// The facet orbits of the input complex.
    pub fn orbits(&self) -> &[FacetOrbit] {
        &self.orbits
    }

    /// The partial subdivision containing the representatives' expansions.
    /// Its parent is the *full* input level, so carrier and star lookups
    /// against the ambient complex work unchanged.
    pub fn representatives(&self) -> &Complex {
        &self.representatives
    }

    /// The expansion facets of orbit `i`'s representative.
    pub fn rep_facets(&self, i: usize) -> &[Simplex] {
        &self.representatives.facets()[self.rep_ranges[i].clone()]
    }

    /// Lazy per-orbit iteration: each item pairs an orbit census entry with
    /// its representative's expansion facets. Full materialization stays
    /// opt-in ([`QuotientedSubdivision::expand`]).
    pub fn orbit_expansions(&self) -> impl Iterator<Item = OrbitExpansion<'_>> {
        self.orbits
            .iter()
            .enumerate()
            .map(|(i, orbit)| OrbitExpansion {
                orbit,
                rep_facets: self.rep_facets(i),
            })
    }

    /// The facet count of the full subdivision, from the census alone:
    /// Σ orbit_size × representative-expansion size.
    pub fn total_facet_count(&self) -> usize {
        self.orbits
            .iter()
            .zip(&self.rep_ranges)
            .map(|(o, r)| o.orbit_size() * r.len())
            .sum()
    }

    /// Materializes the full subdivision `Chr K`, byte-identical to
    /// [`Complex::chromatic_subdivision`].
    pub fn expand(&self) -> Complex {
        self.input
            .subdivide_patterned_orbit_shared(1, |colors| all_recipes(colors, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osp::fubini;

    #[test]
    fn chr_facet_counts_match_fubini() {
        for n in 1..=4 {
            let chr = Complex::standard(n).chromatic_subdivision();
            assert_eq!(chr.facet_count() as u64, fubini(n), "n = {n}");
            assert!(chr.is_pure());
            assert!(chr.is_chromatic());
            assert_eq!(chr.dim(), n as isize - 1);
        }
    }

    #[test]
    fn chr_of_triangle_is_figure_1a() {
        // Figure 1a: 13 triangles, 12 vertices, 24 edges.
        let chr = Complex::standard(3).chromatic_subdivision();
        assert_eq!(chr.f_vector(), vec![12, 24, 13]);
    }

    #[test]
    fn chr2_facet_count_is_fubini_squared() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        assert_eq!(chr2.facet_count(), 169);
        assert_eq!(chr2.level(), 2);
        assert!(chr2.is_pure());
        assert!(chr2.is_chromatic());
    }

    #[test]
    fn chr_vertices_have_consistent_carriers() {
        let s = Complex::standard(3);
        let chr = s.chromatic_subdivision();
        for facet in chr.facets() {
            // Carriers of a facet are totally ordered by inclusion
            // (containment property) and satisfy immediacy.
            for &v in facet.vertices() {
                let d = chr.vertex(v);
                assert!(
                    d.base_colors.contains(d.color),
                    "self-inclusion: a process sees itself"
                );
                for &w in facet.vertices() {
                    let dw = chr.vertex(w);
                    assert!(
                        d.carrier.is_face_of(&dw.carrier) || dw.carrier.is_face_of(&d.carrier),
                        "containment"
                    );
                    if dw.base_colors.contains(d.color) {
                        assert!(d.carrier.is_face_of(&dw.carrier), "immediacy");
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_faces_are_shared() {
        // Chr glues subdivided facets along shared faces: Chr of the
        // boundary edge between two triangles appears once.
        let verts = vec![
            (ProcessId::new(0), 0),
            (ProcessId::new(1), 0),
            (ProcessId::new(2), 0),
            (ProcessId::new(2), 1),
        ];
        // Two triangles sharing the {p1, p2} edge.
        let c = Complex::from_labeled_vertices(3, verts, vec![vec![0, 1, 2], vec![0, 1, 3]]);
        let chr = c.chromatic_subdivision();
        assert_eq!(chr.facet_count(), 26);
        // Vertices: 12 per triangle, minus the 4 vertices of the
        // subdivided common edge counted twice.
        assert_eq!(chr.num_vertices(), 20);
    }

    #[test]
    fn osp_roundtrip() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let mut seen = std::collections::BTreeSet::new();
        for facet in chr.facets() {
            let osp = chr.osp_of_facet(facet);
            assert_eq!(osp.ground(), ColorSet::full(3));
            seen.insert(osp);
        }
        assert_eq!(seen.len(), 13, "all 13 OSPs are realized exactly once");
    }

    #[test]
    fn recipe_of_facet_roundtrip() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let mut seen = std::collections::BTreeSet::new();
        for facet in chr2.facets() {
            let recipe = chr2.recipe_of_facet(facet, 2);
            assert_eq!(recipe.len(), 2);
            seen.insert(recipe);
        }
        assert_eq!(seen.len(), 169, "recipes identify facets uniquely");
    }

    #[test]
    fn subdivide_patterned_with_single_recipe() {
        // Only the synchronous run: one facet per facet of the input.
        let s = Complex::standard(3);
        let sub = s.subdivide_patterned(1, |colors| vec![vec![Osp::synchronous(colors)]]);
        assert_eq!(sub.facet_count(), 1);
        // The synchronous facet is the "central" simplex: every vertex has
        // full base colors.
        let f = &sub.facets()[0];
        for &v in f.vertices() {
            assert_eq!(sub.base_colors_of_vertex(v), ColorSet::full(3));
        }
    }

    #[test]
    fn patterned_depth_two_equals_two_single_steps() {
        let s = Complex::standard(2);
        let a = s.subdivide_patterned(2, |c| all_recipes(c, 2));
        let b = s.iterated_subdivision(2);
        assert_eq!(a.facet_count(), b.facet_count());
        assert!(a.same_complex(&b));
    }

    #[test]
    fn simplex_for_recipe_roundtrip() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        let base_facet = Complex::standard(3).facets()[0].clone();
        for facet in chr2.facets() {
            let recipe = chr2.recipe_of_facet(facet, 2);
            let resolved = chr2.simplex_for_recipe(&base_facet, &recipe).unwrap();
            assert_eq!(&resolved, facet);
        }
    }

    #[test]
    fn simplex_for_recipe_partial_participation() {
        let chr = Complex::standard(3).chromatic_subdivision();
        let base_facet = Complex::standard(3).facets()[0].clone();
        let pair = ColorSet::from_indices([0, 2]);
        let run = vec![Osp::sequential(pair)];
        let sx = chr.simplex_for_recipe(&base_facet, &run).unwrap();
        assert_eq!(sx.len(), 2);
        assert_eq!(chr.colors(&sx), pair);
        assert!(chr.contains_simplex(&sx));
        // p1 ran first: its vertex saw only itself.
        for &v in sx.vertices() {
            let seen = chr.base_colors_of_vertex(v);
            if chr.color(v).index() == 0 {
                assert_eq!(seen, ColorSet::from_indices([0]));
            } else {
                assert_eq!(seen, pair);
            }
        }
    }

    #[test]
    fn all_recipes_counts() {
        let g = ColorSet::full(3);
        assert_eq!(all_recipes(g, 1).len(), 13);
        assert_eq!(all_recipes(g, 2).len(), 169);
    }

    #[test]
    fn parallel_subdivision_is_byte_identical_to_serial() {
        // The deterministic merge reproduces the serial build exactly —
        // same vertex tables, same ids, same facet order — for every
        // thread count. `==` compares the interned tables structurally.
        let inputs = [
            Complex::standard(3).chromatic_subdivision(),
            Complex::standard(4).chromatic_subdivision(),
        ];
        for input in &inputs {
            let serial = input.chromatic_subdivision_threaded(1);
            for threads in [2, 3, 5, 8] {
                let parallel = input.chromatic_subdivision_threaded(threads);
                assert_eq!(serial, parallel, "threads = {threads}");
                assert_eq!(serial.facets(), parallel.facets());
            }
        }
    }

    #[test]
    fn parallel_patterned_depth_two_is_byte_identical_to_serial() {
        let s = Complex::standard(3).chromatic_subdivision();
        let serial = s.subdivide_patterned_threaded(2, |c| all_recipes(c, 2), 1);
        let parallel = s.subdivide_patterned_threaded(2, |c| all_recipes(c, 2), 4);
        assert_eq!(serial, parallel);
        // Intermediate levels are merged identically too.
        assert_eq!(serial.parent().unwrap(), parallel.parent().unwrap());
    }

    #[test]
    fn orbit_shared_subdivision_is_byte_identical_to_direct() {
        // Transport reproduces the exact intern sequence, so `==` (which
        // compares vertex tables, ids, and facet lists) holds — the
        // load-bearing invariant for towers, hashes, and persistence.
        let inputs = [
            Complex::standard(3).chromatic_subdivision(),
            Complex::standard(4).chromatic_subdivision(),
            Complex::standard(3).iterated_subdivision(2),
        ];
        for input in &inputs {
            let direct = input.chromatic_subdivision_threaded(1);
            let shared = input.subdivide_patterned_orbit_shared(1, |c| all_recipes(c, 1));
            assert_eq!(direct, shared);
            assert_eq!(direct.facets(), shared.facets());
        }
    }

    #[test]
    fn orbit_shared_depth_two_matches_direct() {
        let s = Complex::standard(3).chromatic_subdivision();
        let direct = s.subdivide_patterned_threaded(2, |c| all_recipes(c, 2), 1);
        let shared = s.subdivide_patterned_orbit_shared(2, |c| all_recipes(c, 2));
        assert_eq!(direct, shared);
        assert_eq!(direct.parent().unwrap(), shared.parent().unwrap());
    }

    #[test]
    fn orbit_shared_on_labeled_rainbow_base() {
        // Rainbow input labels break strict symmetry; the label-blind
        // action still shares expansions, and the result is identical.
        let verts = vec![
            (ProcessId::new(0), 7),
            (ProcessId::new(1), 8),
            (ProcessId::new(2), 9),
        ];
        let base = Complex::from_labeled_vertices(3, verts, vec![vec![0, 1, 2]]);
        let chr = base.chromatic_subdivision();
        let direct = chr.subdivide_patterned_threaded(2, |c| all_recipes(c, 2), 1);
        let shared = chr.subdivide_patterned_orbit_shared(2, |c| all_recipes(c, 2));
        assert_eq!(direct, shared);
    }

    #[test]
    fn quotiented_census_accounts_for_every_facet() {
        for n in 2..=4 {
            let s = Complex::standard(n);
            let q = s.chromatic_subdivision_quotiented();
            assert_eq!(q.total_facet_count() as u64, fubini(n), "n = {n}");
            let chr1 = s.chromatic_subdivision();
            let q2 = chr1.chromatic_subdivision_quotiented();
            assert_eq!(
                q2.total_facet_count(),
                chr1.chromatic_subdivision().facet_count(),
                "Chr² census, n = {n}"
            );
            // The representatives complex is a genuine partial subdivision
            // sharing the full input level as parent.
            assert_eq!(q2.representatives().parent().unwrap(), &chr1);
            let lazy: usize = q2
                .orbit_expansions()
                .map(|e| e.orbit.orbit_size() * e.rep_facets.len())
                .sum();
            assert_eq!(lazy, q2.total_facet_count());
        }
    }

    #[test]
    fn quotient_then_expand_equals_direct() {
        let s = Complex::standard(3);
        let q = s.chromatic_subdivision_quotiented();
        assert_eq!(q.expand(), s.chromatic_subdivision());
    }

    #[test]
    fn carrier_in_base_tracks_participation() {
        let chr2 = Complex::standard(3).iterated_subdivision(2);
        for facet in chr2.facets() {
            // A full facet's carrier is the whole base simplex.
            assert_eq!(chr2.carrier_colors(facet), ColorSet::full(3));
        }
    }
}
